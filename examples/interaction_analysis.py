"""Feature-interaction analysis of a predicted DRC hotspot.

The paper notes that additive explanations must capture "complex feature
interactions" (Sec. III-C).  SHAP *interaction values* (Lundberg et al.
2018, the paper's [9]) make those interactions explicit: this example
explains the strongest predicted hotspot of a design, then decomposes the
attribution of its top features into main effects (diagonal) and pairwise
interactions (off-diagonal).

Run:  python examples/interaction_analysis.py [--design fft_b] [--k 5]
"""

import argparse

import numpy as np

from repro.bench.suite import SUITE_RECIPES
from repro.core import build_suite_dataset, default_cache_path
from repro.core.explain import train_explanation_forest
from repro.features import feature_names
from repro.ml.shap import TreeShapExplainer, top_interactions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="des_perf_1", choices=sorted(SUITE_RECIPES))
    parser.add_argument("--k", type=int, default=5, help="top features to analyse")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    suite, _ = build_suite_dataset(args.scale, cache_path=default_cache_path(args.scale))
    dataset = suite.by_name(args.design)
    # interactions enumerate 2^k coalitions per tree: keep the forest modest
    model = train_explanation_forest(suite, args.design)
    model.estimators_ = model.estimators_[:30]
    scores = model.predict_proba(dataset.X)[:, 1]
    row = int(np.argmax(scores))
    x = dataset.X[row]
    cell = dataset.cell_of_sample(row)
    print(f"strongest predicted hotspot of {args.design}: g-cell {cell} "
          f"(P = {scores[row]:.3f})")

    explainer = TreeShapExplainer(model.trees, dataset.X.shape[1])
    feats, mat = top_interactions(explainer, model.trees, x, k=args.k)
    names = feature_names()

    print(f"\ninteraction matrix over the top {args.k} features "
          "(diagonal = main effect):")
    header = " " * 14 + "".join(f"{names[f][:12]:>13s}" for f in feats)
    print(header)
    for a, fa in enumerate(feats):
        row_txt = f"{names[fa][:12]:<14s}"
        row_txt += "".join(f"{mat[a, b]:>+13.4f}" for b in range(len(feats)))
        print(row_txt)

    off = mat - np.diag(np.diag(mat))
    a, b = np.unravel_index(np.argmax(np.abs(off)), off.shape)
    print(
        f"\nstrongest pairwise interaction: {names[feats[a]]} x "
        f"{names[feats[b]]} = {mat[a, b]:+.4f}"
    )
    print(
        f"interaction share of the restricted attribution: "
        f"{abs(off).sum() / max(abs(mat).sum(), 1e-12):.1%}"
    )


if __name__ == "__main__":
    main()
