"""Designer workflow: pick an operating threshold for hotspot prediction.

The paper stresses that, unlike single-threshold studies, "the designer is
free to adjust the threshold to get different prediction results with the
same model" (Sec. III-B).  This example makes that concrete for one suite
design:

* trains the RF under the paper's protocol,
* prints the full per-design report: metrics, the operating-point table
  over FPR budgets, the ASCII P-R curve and the top predicted hotspots,
* picks thresholds for two intents (the paper's 0.5 % FPR budget, and a
  90 % recall target).

Run:  python examples/threshold_tuning.py [--design mult_b]
"""

import argparse

from repro.analysis import design_report, threshold_for_recall
from repro.bench.suite import SUITE_RECIPES
from repro.core import build_suite_dataset, default_cache_path
from repro.core.explain import train_explanation_forest
from repro.ml.metrics import confusion_at_threshold, operating_point_at_fpr


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="des_perf_1", choices=sorted(SUITE_RECIPES))
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    suite, _ = build_suite_dataset(args.scale, cache_path=default_cache_path(args.scale))
    dataset = suite.by_name(args.design)
    if dataset.num_hotspots == 0:
        raise SystemExit(f"{args.design} has no hotspots; pick another design")

    model = train_explanation_forest(suite, args.design)
    scores = model.predict_proba(dataset.X)[:, 1]

    print(design_report(dataset, scores))

    print("\n-- intent 1: the paper's FPR budget (0.5%) --")
    op = operating_point_at_fpr(dataset.y, scores, 0.005)
    print(f"threshold {op.threshold:.4f}: recall {op.tpr:.3f}, precision {op.precision:.3f}")

    print("\n-- intent 2: catch at least 90% of hotspots --")
    thr = threshold_for_recall(dataset.y, scores, 0.9)
    tp, fp, fn, tn = confusion_at_threshold(dataset.y, scores, thr)
    print(
        f"threshold {thr:.4f}: TP={tp} FP={fp} FN={fn} — the cost of high "
        f"recall is {fp} false alarms ({100 * fp / max(tn + fp, 1):.1f}% FPR)"
    )


if __name__ == "__main__":
    main()
