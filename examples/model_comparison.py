"""Reproduce Table II: compare RF with SVM-RBF, RUSBoost, NN-1 and NN-2.

Runs the paper's leave-one-group-out protocol over the (cached) 14-design
suite and prints the Table II analogue plus the machine-checked qualitative
claims (RF best on average A_prc, most winning designs, SVM the most
expensive predictor, ...).

Run:  python examples/model_comparison.py [--preset fast|full] [--models RF,SVM-RBF]
"""

import argparse

from repro.core import (
    build_suite_dataset,
    default_cache_path,
    format_table2,
    model_zoo,
    run_experiment,
    summarize_shape,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=("fast", "full"), default="fast")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--models", help="comma-separated subset, e.g. RF,SVM-RBF")
    args = parser.parse_args()

    suite, _ = build_suite_dataset(
        args.scale, cache_path=default_cache_path(args.scale), verbose=True
    )
    models = model_zoo(args.preset)
    if args.models:
        wanted = set(args.models.split(","))
        models = [m for m in models if m.name in wanted]

    result = run_experiment(
        suite, models, tune=True, verbose=True
    )
    print("\nTable II analogue — model comparison")
    print(format_table2(result))
    print("\nQualitative shape vs the paper:")
    for key, value in summarize_shape(result).items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
