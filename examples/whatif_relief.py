"""Close the loop: explanation → intervention → re-predicted risk.

The paper's motivation is that early, explained predictions let designers
fix root causes *without* going through detailed routing and DRC each time
(Sec. I).  This example demonstrates the full loop on one predicted
hotspot:

1. explain the prediction with exact SHAP (which congestion drives it),
2. try the natural relief for each top driver (halve the offending load —
   e.g. what a targeted rip-up-and-reroute would achieve),
3. re-score the counterfactual and rank the reliefs by predicted risk drop.

Run:  python examples/whatif_relief.py [--design fft_b]
"""

import argparse

import numpy as np

from repro.analysis import relief_suggestions, what_if
from repro.bench.suite import SUITE_RECIPES
from repro.core import build_suite_dataset, default_cache_path
from repro.core.explain import train_explanation_forest
from repro.features import feature_names
from repro.ml.shap import TreeShapExplainer, build_explanation, force_plot_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="des_perf_1", choices=sorted(SUITE_RECIPES))
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    suite, _ = build_suite_dataset(args.scale, cache_path=default_cache_path(args.scale))
    dataset = suite.by_name(args.design)
    model = train_explanation_forest(suite, args.design)
    probs = model.predict_proba(dataset.X)[:, 1]
    row = int(np.argmax(probs))
    x = dataset.X[row]
    cell = dataset.cell_of_sample(row)

    explainer = TreeShapExplainer(model.trees, dataset.X.shape[1])
    shap_vals = explainer.shap_values_single(x)
    explanation = build_explanation(
        explainer.expected_value, float(probs[row]), shap_vals, x, feature_names()
    )
    print(f"predicted hotspot: g-cell {cell} of {args.design} (P = {probs[row]:.3f})")
    print()
    print(force_plot_text(explanation, top_k=6))

    print("\ncandidate reliefs (halve the offending load), ranked by effect:")
    for suggestion in relief_suggestions(model, x, shap_vals, top_k=5):
        print("  " + suggestion.format_row())

    print("\ncombined relief of the top two drivers:")
    top2 = [s for s in relief_suggestions(model, x, shap_vals, top_k=2)]
    combined: dict[str, float] = {}
    for s in top2:
        name = s.changed_features[0]
        idx = feature_names().index(name)
        combined[name] = x[idx] / 2.0
    result = what_if(model, x, combined)
    print("  " + result.format_row())


if __name__ == "__main__":
    main()
