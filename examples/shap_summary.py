"""Global SHAP summary: what drives hotspot predictions on a design.

The paper explains hotspots one at a time (Fig. 4); aggregating |SHAP|
over the strongest predictions yields the global view — which features,
and which feature families (edge congestion per layer, via congestion per
layer, placement), the model leans on for a given design.

Run:  python examples/shap_summary.py [--design fft_b] [--samples 20]
"""

import argparse

import numpy as np

from repro.analysis import summarize_shap
from repro.bench.suite import SUITE_RECIPES
from repro.core import build_suite_dataset, default_cache_path
from repro.core.explain import train_explanation_forest
from repro.ml.shap import TreeShapExplainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="des_perf_1", choices=sorted(SUITE_RECIPES))
    parser.add_argument("--samples", type=int, default=12,
                        help="how many top predictions to aggregate")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    suite, _ = build_suite_dataset(args.scale, cache_path=default_cache_path(args.scale))
    dataset = suite.by_name(args.design)
    model = train_explanation_forest(suite, args.design)
    scores = model.predict_proba(dataset.X)[:, 1]

    rows = np.argsort(-scores)[: args.samples]
    explainer = TreeShapExplainer(model.trees, dataset.X.shape[1])
    print(
        f"computing exact SHAP for the top {len(rows)} predictions of "
        f"{args.design} ({len(model.trees)} trees)..."
    )
    shap_matrix = explainer.shap_values(dataset.X[rows])

    summary = summarize_shap(shap_matrix)
    print()
    print(summary.format_report(k=15))


if __name__ == "__main__":
    main()
