"""Reproduce Fig. 3 + Fig. 4: explain individual predicted DRC hotspots.

For a chosen suite design (default: the ``des_perf_1`` analogue, the
paper's congested example):

* an RF is trained on the other four design groups (paper protocol),
* the strongest predicted hotspots are selected,
* each prediction is explained with the SHAP tree explainer (Fig. 4 force
  plot as text), shown next to the GR congestion maps around the g-cell
  (Fig. 3) and validated against the actual simulated DRC errors.

Run:  python examples/explain_hotspots.py [--design mult_a] [--num 3]
"""

import argparse

from repro.bench.suite import SUITE_RECIPES
from repro.core import (
    build_suite_dataset,
    default_cache_path,
    explain_hotspots,
    run_flow,
)
from repro.core.explain import explanation_layers_mentioned


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="des_perf_1",
                        choices=sorted(SUITE_RECIPES))
    parser.add_argument("--num", type=int, default=3)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    print("loading the suite dataset (cached after the first run)...")
    suite, _ = build_suite_dataset(
        args.scale, cache_path=default_cache_path(args.scale)
    )
    print(f"re-running the flow for {args.design} to recover congestion maps...")
    flow = run_flow(SUITE_RECIPES[args.design])

    reports = explain_hotspots(suite, flow, num_hotspots=args.num)
    for report in reports:
        print()
        print(report.render())
        layers = explanation_layers_mentioned(report)
        print(f"layers blamed by the explanation: {sorted(layers)}")


if __name__ == "__main__":
    main()
