"""Quickstart: the full paper workflow on two small designs in ~a minute.

1. Generate two synthetic designs and push them through the flow
   (place → global route → DRC simulation → 387 features + labels).
2. Train the Random Forest on design A, predict DRC hotspots of design B
   (cross-design, like the paper's protocol).
3. Report TPR*/Prec*/A_prc and explain the strongest predicted hotspot
   with the SHAP tree explainer.

Run:  python examples/quickstart.py
"""

from repro.bench import DesignRecipe
from repro.core import run_flow
from repro.features import feature_names
from repro.ml import RandomForestClassifier, evaluate_scores
from repro.ml.shap import TreeShapExplainer, build_explanation, force_plot_text


def main() -> None:
    def recipe(name: str, seed: int) -> DesignRecipe:
        return DesignRecipe(
            name=name, grid_nx=18, grid_ny=18, utilization=0.72,
            dense_net_boost=2.2, dense_cluster_frac=0.4, ndr_frac=0.06,
            seed=seed,
        )

    print("== 1. running the flow on three designs ==")
    flow_a = run_flow(recipe("train_chip_1", 1))
    flow_c = run_flow(recipe("train_chip_2", 3))
    flow_b = run_flow(recipe("test_chip", 2))
    for flow in (flow_a, flow_c, flow_b):
        print(
            f"  {flow.design.name}: {flow.stats.num_gcells} g-cells, "
            f"{flow.stats.num_hotspots} DRC hotspots, "
            f"{flow.routing.total_wirelength} g-cell edges of wire"
        )

    print("\n== 2. train RF on the train chips, predict test_chip ==")
    import numpy as np

    X_train = np.vstack([flow_a.X, flow_c.X])
    y_train = np.concatenate([flow_a.y, flow_c.y])
    rf = RandomForestClassifier(n_estimators=80, random_state=0)
    rf.fit(X_train, y_train)
    scores = rf.predict_proba(flow_b.X)[:, 1]
    result = evaluate_scores(flow_b.y, scores, target_fpr=0.005)
    print(
        f"  TPR* = {result.tpr_star:.4f}  Prec* = {result.prec_star:.4f}  "
        f"A_prc = {result.a_prc:.4f}  (A_roc = {result.a_roc:.4f})"
    )

    print("\n== 3. explain the strongest predicted hotspot ==")
    top = int(scores.argmax())
    explainer = TreeShapExplainer(rf.trees, flow_b.X.shape[1])
    shap_values = explainer.shap_values_single(flow_b.X[top])
    explanation = build_explanation(
        base_value=explainer.expected_value,
        prediction=float(scores[top]),
        shap_values=shap_values,
        feature_values=flow_b.X[top],
        feature_names=feature_names(),
    )
    cell = flow_b.dataset.cell_of_sample(top)
    print(f"  g-cell {cell} of {flow_b.design.name}:")
    print(force_plot_text(explanation, top_k=8))
    print(f"\n  ground truth: {flow_b.drc_report.describe_cell(flow_b.grid, cell)}")


if __name__ == "__main__":
    main()
