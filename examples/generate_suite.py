"""Reproduce Table I: run the 14-design suite flow and print its statistics.

The first run executes the complete flow for every design (a couple of
minutes); results are cached under ``.cache/`` so subsequent runs are
instant.

Run:  python examples/generate_suite.py [--scale 0.5]
"""

import argparse

from repro.bench.suite import GROUPS
from repro.core import build_suite_dataset, default_cache_path
from repro.layout.design_stats import format_table1, group_statistics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="uniform grid scale (e.g. 0.5 for a quick run)")
    args = parser.parse_args()

    suite, stats = build_suite_dataset(
        args.scale, cache_path=default_cache_path(args.scale), verbose=True
    )
    by_name = {s.name: s for s in stats}
    rows = [
        (group_statistics(g, [by_name[m] for m in members]), [by_name[m] for m in members])
        for g, members in GROUPS.items()
    ]
    print("\nTable I analogue — synthetic benchmark suite statistics")
    print(format_table1(rows))
    total_pos = sum(d.num_hotspots for d in suite.designs)
    print(
        f"\n{suite.num_samples} samples total, {total_pos} hotspots "
        f"({100 * total_pos / suite.num_samples:.2f}% positive rate)"
    )


if __name__ == "__main__":
    main()
