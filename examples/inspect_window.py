"""Fig. 2 analogue: anatomy of a 3×3 g-cell window and its 387 features.

Runs the flow on one design, picks its busiest g-cell, and prints

* the window cell layout with per-cell placement statistics,
* the 12 window-edge labels with M-layer capacity/load,
* the named non-zero features of the sample, grouped by block.

Run:  python examples/inspect_window.py
"""

import numpy as np

from repro.bench import DesignRecipe
from repro.core import run_flow
from repro.features import feature_index, feature_names
from repro.layout.grid import WINDOW_EDGES, WINDOW_OFFSETS, WINDOW_POSITIONS
from repro.route.congestion import window_edge_cap_load


def main() -> None:
    flow = run_flow(
        DesignRecipe(
            name="window_demo", grid_nx=12, grid_ny=12, utilization=0.68,
            dense_net_boost=2.0, dense_cluster_frac=0.3, seed=5,
        )
    )
    pm = flow.placemaps
    busiest = np.unravel_index(np.argmax(pm.num_pins), pm.num_pins.shape)
    cx, cy = int(busiest[0]), int(busiest[1])
    print(f"design {flow.design.name}: busiest g-cell is ({cx},{cy})")

    print("\nwindow cells (pins / cells / local nets per position):")
    for row in (1, 0, -1):  # print north row first
        cells = []
        for col in (-1, 0, 1):
            pos = next(
                p for p, off in WINDOW_OFFSETS.items() if off == (col, row)
            )
            ix, iy = cx + col, cy + row
            if flow.grid.in_bounds(ix, iy):
                cells.append(
                    f"{pos:>2s}: {pm.num_pins[ix, iy]:>3d}p "
                    f"{pm.num_cells[ix, iy]:>2d}c {pm.num_local_nets[ix, iy]:>2d}l"
                )
            else:
                cells.append(f"{pos:>2s}: (off-die)")
        print("   " + " | ".join(cells))

    print("\nwindow edges on M3 and M4 (capacity/load):")
    for edge in WINDOW_EDGES:
        for m in (3, 4):
            cap, load = window_edge_cap_load(flow.routing.rgrid, (cx, cy), edge, m)
            if cap or load:
                print(f"   edge {edge.label:<3s} M{m}: C={cap:.0f} L={load:.0f} margin={cap - load:+.0f}")

    row_idx = flow.grid.flat_index(cx, cy)
    x = flow.X[row_idx]
    names = feature_names()
    nonzero = [(names[j], x[j]) for j in range(len(names)) if x[j] != 0.0]
    print(f"\nsample row {row_idx}: {len(nonzero)} of 387 features are non-zero")
    print("first 20 non-zero features:")
    for name, value in nonzero[:20]:
        print(f"   {name:<16s} = {value:.3f}")
    print(f"\nlabel: {'DRC hotspot' if flow.y[row_idx] else 'clean'}")


if __name__ == "__main__":
    main()
