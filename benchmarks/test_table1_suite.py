"""E1 — Table I: benchmark-suite statistics.

Regenerates the paper's Table I analogue (per-design and per-group g-cell,
hotspot, macro, cell-count and layout-size statistics) from the mechanistic
flow, prints it, and asserts its qualitative shape:

* strong class imbalance overall (hotspots are a few percent of g-cells);
* at least two designs with zero hotspots (the paper's des_perf_b /
  bridge32_b, excluded from Table II);
* the congested designs (des_perf_1, fft_b analogues) sit at the top of
  the hotspot-rate ranking, the sparse mult_a/fft_a analogues at the bottom.

The timed kernel is the full Fig. 1 flow on the smallest suite design.
"""

from repro.bench.suite import GROUPS, SUITE_RECIPES
from repro.core.pipeline import run_flow
from repro.layout.design_stats import format_table1, group_statistics


def test_table1_statistics(suite, suite_stats, benchmark):
    flow_result = benchmark.pedantic(
        run_flow, args=(SUITE_RECIPES["fft_1"],), rounds=1, iterations=1
    )
    assert flow_result.stats.num_gcells == 196

    by_name = {s.name: s for s in suite_stats}
    rows = [
        (
            group_statistics(g, [by_name[m] for m in members]),
            [by_name[m] for m in members],
        )
        for g, members in GROUPS.items()
    ]
    print("\nTable I analogue — synthetic suite statistics")
    print(format_table1(rows))

    # --- shape assertions ----------------------------------------------------
    assert len(suite_stats) == 14
    total = sum(s.num_gcells for s in suite_stats)
    positives = sum(s.num_hotspots for s in suite_stats)
    rate = positives / total
    print(f"\noverall hotspot rate: {100 * rate:.2f}%")
    assert 0.002 < rate < 0.08, "labels should be rare but present"

    zero_designs = {s.name for s in suite_stats if s.num_hotspots == 0}
    assert len(zero_designs) >= 2, "Table II needs excluded clean designs"
    assert "des_perf_b" in zero_designs or "bridge32_b" in zero_designs

    rates = {s.name: s.hotspot_rate for s in suite_stats}
    ranking = sorted(rates, key=rates.get, reverse=True)
    assert "des_perf_1" in ranking[:3], "des_perf_1 analogue must be hottest"
    assert rates["mult_a"] < 0.01, "mult_a analogue must be nearly clean"

    # macro counts mirror the paper's Table I exactly
    for s in suite_stats:
        assert s.num_macros == SUITE_RECIPES[s.name].num_macros
