"""E5 — Fig. 3: congestion context around real hotspots + actual DRC errors.

The paper's Fig. 3 shows, for three example hotspots, the GR edge
congestion around the g-cell and (for validation) the DRC errors found
after detailed routing.  This bench regenerates that content for the
``des_perf_1`` analogue: it locates actual hotspot g-cells, renders the
M3/M4/M5 congestion maps around them, lists the simulated checker's errors,
and asserts that hotspot neighbourhoods are *more congested* than clean
ones — the physical premise of the whole prediction task.

The timed kernel is the congestion-map rendering.
"""

import numpy as np

from repro.drc.labels import hotspot_cells
from repro.route.congestion import render_layer_congestion, utilization_map


def _neighbourhood_peak_util(rgrid, cell, radius=1):
    """Max utilisation over M2..M5 edges within ``radius`` of the cell."""
    peak = 0.0
    for m in (2, 3, 4, 5):
        util = utilization_map(rgrid, m)
        finite = np.where(np.isfinite(util), util, 2.0)
        x0 = max(cell[0] - radius, 0)
        y0 = max(cell[1] - radius, 0)
        x1 = min(cell[0] + radius + 1, finite.shape[0])
        y1 = min(cell[1] + radius + 1, finite.shape[1])
        block = finite[x0:x1, y0:y1]
        if block.size:
            peak = max(peak, float(block.max()))
    return peak


def test_fig3_hotspot_congestion_context(des_perf_1_flow, benchmark):
    flow = des_perf_1_flow
    hotspots = hotspot_cells(flow.drc_report, flow.grid)
    assert hotspots, "the des_perf_1 analogue must contain hotspots"

    examples = hotspots[:3]
    rendered = benchmark.pedantic(
        lambda: [
            render_layer_congestion(flow.routing.rgrid, m, cell)
            for cell in examples
            for m in (3, 4, 5)
        ],
        rounds=1,
        iterations=1,
    )
    for text in rendered[:3]:
        print()
        print(text)
    for cell in examples:
        print(flow.drc_report.describe_cell(flow.grid, cell))

    # --- validation: hotspots live in congested neighbourhoods ----------------
    rng = np.random.default_rng(0)
    hotspot_set = set(hotspots)
    clean = [
        (ix, iy)
        for ix in range(flow.grid.nx)
        for iy in range(flow.grid.ny)
        if (ix, iy) not in hotspot_set
    ]
    clean_sample = [clean[i] for i in rng.choice(len(clean), 40, replace=False)]

    hot_util = np.mean(
        [_neighbourhood_peak_util(flow.routing.rgrid, c) for c in hotspots]
    )
    clean_util = np.mean(
        [_neighbourhood_peak_util(flow.routing.rgrid, c) for c in clean_sample]
    )
    print(f"\nmean peak utilisation: hotspots {hot_util:.2f} vs clean {clean_util:.2f}")
    assert hot_util > clean_util, "hotspots must sit in more congested areas"


def test_fig3_error_types_match_paper_vocabulary(des_perf_1_flow, benchmark):
    """The checker reports the paper's error vocabulary: shorts, spacing
    (different-net space) and EOL errors, each with layer and box."""
    flow = des_perf_1_flow
    benchmark.pedantic(lambda: flow.drc_report.counts_by_type(), rounds=1, iterations=1)
    kinds = {v.vtype.value for v in flow.drc_report.violations}
    print(f"violation kinds present: {sorted(kinds)}")
    assert "short" in kinds or "spacing" in kinds
    layers = set(flow.drc_report.counts_by_layer())
    assert layers <= {"M2", "M3", "M4", "M5"}
    for v in flow.drc_report.violations[:50]:
        assert v.bbox.area >= 0.0
