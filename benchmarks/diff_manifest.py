"""Cross-check ``run_manifest.json`` against ``BENCH_timing.json``.

``benchmarks/smoke.py`` derives every BENCH timing from a telemetry span, so
the manifest's per-stage timing table and the BENCH document must agree to
rounding.  CI runs this after the bench step; a mismatch means the derived
view drifted from the span tree (double-timed section, renamed span, ...)::

    PYTHONPATH=src python benchmarks/diff_manifest.py run_manifest.json BENCH_timing.json \\
        --train BENCH_train.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from smoke import STAGE_MAP, TRAIN_STAGE_MAP

#: BENCH values are rounded to 3 decimals, stage walls to 6.
TOLERANCE_S = 2e-3


def diff(manifest_path: Path, bench_path: Path, stage_map=STAGE_MAP) -> list[str]:
    manifest = json.loads(manifest_path.read_text())
    bench = json.loads(bench_path.read_text())
    stages = {row["path"]: row for row in manifest.get("stages", [])}
    problems: list[str] = []
    for (section, key), path in stage_map.items():
        try:
            bench_v = bench[section][key]
        except KeyError:
            problems.append(f"BENCH missing {section}.{key}")
            continue
        row = stages.get(path)
        if row is None:
            problems.append(f"manifest missing stage {path!r}")
            continue
        if abs(bench_v - row["wall_s"]) > TOLERANCE_S:
            problems.append(
                f"{section}.{key}={bench_v} but stage {path} wall_s={row['wall_s']}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("manifest", type=Path)
    parser.add_argument("bench", type=Path)
    parser.add_argument("--train", type=Path, default=None,
                        help="also cross-check a BENCH_train.json document")
    args = parser.parse_args(argv)
    problems = diff(args.manifest, args.bench)
    n_checked = len(STAGE_MAP)
    if args.train is not None:
        problems += diff(args.manifest, args.train, stage_map=TRAIN_STAGE_MAP)
        n_checked += len(TRAIN_STAGE_MAP)
    for p in problems:
        print(f"MISMATCH: {p}", file=sys.stderr)
    if not problems:
        print(f"ok: {n_checked} stage timings agree "
              f"(tolerance {TOLERANCE_S}s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
