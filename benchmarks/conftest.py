"""Shared benchmark fixtures: the cached suite and one experiment run.

Heavy artefacts are session-scoped so the whole benchmark suite pays for
the 14-design flow and the 5-model experiment exactly once.  The flow
dataset is cached on disk under ``.cache/`` and reused across invocations.
"""

from __future__ import annotations

import pytest

from repro.bench.suite import SUITE_RECIPES
from repro.core.experiment import run_experiment
from repro.core.models import model_zoo
from repro.core.pipeline import build_suite_dataset, default_cache_path, run_flow


@pytest.fixture(scope="session")
def suite_and_stats():
    """The full 14-design suite at scale 1.0 (disk-cached)."""
    return build_suite_dataset(1.0, cache_path=default_cache_path(1.0))


@pytest.fixture(scope="session")
def suite(suite_and_stats):
    return suite_and_stats[0]


@pytest.fixture(scope="session")
def suite_stats(suite_and_stats):
    return suite_and_stats[1]


@pytest.fixture(scope="session")
def experiment_result(suite):
    """One fast-preset Table II experiment over all five models."""
    return run_experiment(suite, model_zoo("fast"), tune=True)


@pytest.fixture(scope="session")
def des_perf_1_flow():
    """Fresh flow artefacts for the paper's congested example design."""
    return run_flow(SUITE_RECIPES["des_perf_1"])
