"""E6 — Fig. 4: SHAP explanations of individual predicted hotspots.

Reproduces the paper's explanation experiment end to end:

* the RF is trained on the four other groups (paper protocol),
* the strongest predicted hotspots of the ``des_perf_1`` analogue are
  explained with the SHAP tree explainer,
* the Fig. 4 force plots are printed,

and asserts the properties the paper relies on:

* **local accuracy** (Eq. 1): base value + Σ SHAP = f(x), exactly;
* explanations are dominated by congestion features (edge/via C/L/margin),
  as in all three of the paper's examples;
* for an actual hotspot, the layers blamed by the explanation overlap the
  layers of the real (simulated) DRC errors — the paper's Sec. IV-B
  consistency validation;
* the per-sample runtime is of the order the paper reports (1.4 s/sample
  on their 500-tree forest; generously bounded here).

The timed kernel is one `shap_values_single` call on the trained forest.
"""

import numpy as np
import pytest

from repro.core.explain import (
    explain_hotspots,
    explanation_layers_mentioned,
    train_explanation_forest,
)
from repro.ml.shap.tree_explainer import TreeShapExplainer


@pytest.fixture(scope="module")
def reports_and_model(suite, des_perf_1_flow):
    model = train_explanation_forest(suite, "des_perf_1", preset="fast")
    reports = explain_hotspots(
        suite, des_perf_1_flow, model=model, num_hotspots=3
    )
    return reports, model


def test_fig4_shap_explanations(suite, des_perf_1_flow, reports_and_model, benchmark):
    reports, model = reports_and_model
    dataset = suite.by_name("des_perf_1")

    explainer = TreeShapExplainer(model.trees, dataset.X.shape[1])
    x = dataset.X[dataset.sample_index(*reports[0].cell)]
    benchmark.pedantic(explainer.shap_values_single, args=(x,), rounds=1, iterations=1)

    assert len(reports) == 3
    for report in reports:
        print()
        print(report.render(top_k=8))

        # Eq. 1 — local accuracy, to float precision
        assert report.explanation.check_local_accuracy(atol=1e-6)

        # predictions meaningfully above the base rate (paper: 35x for (a))
        assert report.prediction > report.explanation.base_value

        # congestion features dominate the top of the explanation
        top_names = [c.name for c in report.explanation.top(8)]
        congestion = [
            n for n in top_names
            if n[:2] in ("ec", "el", "ed", "vc", "vl", "vd")
        ]
        print(f"congestion features in top-8: {len(congestion)}/8")
        assert len(congestion) >= 4

    # paper's consistency check on a true hotspot
    true_reports = [r for r in reports if r.is_actual_hotspot]
    for report in true_reports:
        actual_layers = {
            v.layer
            for v in des_perf_1_flow.drc_report.violations_in_cell(
                des_perf_1_flow.grid, report.cell
            )
        }
        mentioned = explanation_layers_mentioned(report, k=15)
        expanded = set(mentioned)
        for l in mentioned:
            if l.startswith("V"):
                k = int(l[1:])
                expanded |= {f"M{k}", f"M{k + 1}"}
        print(f"blamed: {sorted(mentioned)} / actual: {sorted(actual_layers)}")
        assert actual_layers & expanded

    # SHAP runtime: same order of magnitude as the paper's 1.4 s/sample
    secs = [r.shap_seconds for r in reports]
    print(f"SHAP runtime per sample: {np.mean(secs):.2f} s")
    assert np.mean(secs) < 30.0


def test_fig4_distinct_hotspots_get_distinct_explanations(reports_and_model, benchmark):
    """Paper Sec. IV-B: hotspots (a) and (b) from the same design get
    'totally different explanations' — attribution is genuinely local."""
    reports, _ = reports_and_model
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len({r.cell for r in reports}) < 2:
        pytest.skip("need two distinct explained cells")
    tops = [tuple(c.name for c in r.explanation.top(5)) for r in reports[:2]]
    assert tops[0] != tops[1]
