"""Benchmark smoke run: timing snapshot written to ``BENCH_timing.json``.

Times the three perf-critical paths introduced with the parallel runtime —
suite build (serial vs. ``--jobs``), experiment grid (serial vs. parallel),
and Tree SHAP (batched vs. per-sample reference) — at a small scale so CI
can track the perf trajectory on every push::

    PYTHONPATH=src python benchmarks/smoke.py --scale 0.5 --jobs 4 --check

``--check`` additionally asserts the acceptance floors: batched SHAP >= 5x
the per-sample loop on a 1000-sample batch (always), and parallel >= 2x
serial for suite+experiment (only on machines with >= 4 CPUs — a 1-core
runner cannot speed anything up, but the numbers are still recorded).  The
per-sample SHAP reference is timed on a subset and extrapolated linearly
(the loop is exactly linear in n); both raw timings are recorded.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.experiment import run_experiment
from repro.core.models import model_zoo
from repro.core.pipeline import build_suite_dataset
from repro.ml.forest import RandomForestClassifier
from repro.ml.shap.tree_explainer import TreeShapExplainer
from repro.runtime import FaultTolerantRunner, ParallelRunner


def _bench_suite(scale: float, jobs: int, tmp: Path) -> dict:
    serial_npz = tmp / "serial.npz"
    t0 = time.perf_counter()
    suite, _ = build_suite_dataset(
        scale, cache_path=serial_npz, runner=FaultTolerantRunner(fail_fast=True)
    )
    serial_s = time.perf_counter() - t0

    parallel_npz = tmp / "parallel.npz"
    t0 = time.perf_counter()
    build_suite_dataset(
        scale, cache_path=parallel_npz, runner=ParallelRunner(jobs, fail_fast=True)
    )
    parallel_s = time.perf_counter() - t0

    identical = (
        hashlib.sha256(serial_npz.read_bytes()).hexdigest()
        == hashlib.sha256(parallel_npz.read_bytes()).hexdigest()
    )
    return {
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "cache_byte_identical": identical,
        "_suite": suite,
    }


def _bench_experiment(suite, jobs: int) -> dict:
    models = [m for m in model_zoo("fast") if m.name in ("RUSBoost", "NN-1", "RF")]
    t0 = time.perf_counter()
    run_experiment(suite, models, tune=False,
                   runner=FaultTolerantRunner(fail_fast=True))
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_experiment(suite, models, tune=False,
                   runner=ParallelRunner(jobs, fail_fast=True))
    parallel_s = time.perf_counter() - t0
    return {
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
    }


def _bench_shap(batch_size: int = 1000, ref_samples: int = 200) -> dict:
    rng = np.random.default_rng(0)
    X = rng.normal(size=(1500, 40))
    y = (X[:, 0] + X[:, 3] * X[:, 5] - X[:, 7] > 0).astype(np.int8)
    rf = RandomForestClassifier(n_estimators=20, max_depth=8, random_state=0)
    rf.fit(X, y)
    explainer = TreeShapExplainer(rf.trees, X.shape[1])
    batch = X[:batch_size]

    t0 = time.perf_counter()
    phi_batch = explainer.shap_values(batch)
    batched_s = time.perf_counter() - t0

    ref = batch[:ref_samples]
    t0 = time.perf_counter()
    phi_ref = np.vstack([explainer.shap_values_single(x) for x in ref])
    ref_s = time.perf_counter() - t0
    single_s_extrapolated = ref_s / ref_samples * batch_size

    return {
        "batch_size": batch_size,
        "batched_s": round(batched_s, 3),
        "single_ref_samples": ref_samples,
        "single_ref_s": round(ref_s, 3),
        "single_s_extrapolated": round(single_s_extrapolated, 3),
        "speedup": round(single_s_extrapolated / batched_s, 1),
        "max_abs_diff_vs_single": float(
            np.abs(phi_batch[:ref_samples] - phi_ref).max()
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("-j", "--jobs", type=int, default=4)
    parser.add_argument("--out", type=Path, default=Path("BENCH_timing.json"))
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance speedup floors")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    doc: dict = {
        "scale": args.scale,
        "jobs": args.jobs,
        "cpu_count": cpus,
        "python": sys.version.split()[0],
    }

    with tempfile.TemporaryDirectory() as td:
        suite_res = _bench_suite(args.scale, args.jobs, Path(td))
    suite = suite_res.pop("_suite")
    doc["suite_build"] = suite_res
    print(f"suite build   : {suite_res}", flush=True)

    doc["experiment"] = _bench_experiment(suite, args.jobs)
    print(f"experiment    : {doc['experiment']}", flush=True)

    doc["tree_shap"] = _bench_shap()
    print(f"tree shap     : {doc['tree_shap']}", flush=True)

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        assert doc["suite_build"]["cache_byte_identical"], "parallel cache differs"
        shap = doc["tree_shap"]
        assert shap["max_abs_diff_vs_single"] <= 1e-10, "batched SHAP drifted"
        assert shap["speedup"] >= 5.0, f"SHAP speedup {shap['speedup']} < 5x"
        if cpus >= 4:
            for key in ("suite_build", "experiment"):
                speedup = doc[key]["speedup"]
                assert speedup >= 2.0, f"{key} speedup {speedup} < 2x"
        else:
            print(f"note: {cpus} CPU(s) — parallel speedup floors not asserted")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
