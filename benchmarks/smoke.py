"""Benchmark smoke run: timing snapshot written to ``BENCH_timing.json``.

Times the three perf-critical paths introduced with the parallel runtime —
suite build (serial vs. ``--jobs``), experiment grid (serial vs. parallel),
and Tree SHAP (batched vs. per-sample reference) — at a small scale so CI
can track the perf trajectory on every push::

    PYTHONPATH=src python benchmarks/smoke.py --scale 0.5 --jobs 4 --check

A second document, ``BENCH_train.json``, micro-benchmarks the histogram
training engine itself: the same forest is grown twice from one shared
:class:`~repro.ml.binning.BinnedDataset` — sibling histogram subtraction
off, then on — and prediction compares the stacked
:class:`~repro.ml.forest.ForestArrays` kernel against the per-tree
traversal loop it replaced.  The histogram build/subtraction counts in that
document are read from the ``ml.hist.*`` telemetry counters, i.e. the same
numbers the run manifest aggregates.

The whole run executes under an active :class:`repro.runtime.Tracer`: every
timed section is a span (``bench/suite_build/serial`` etc.), the numbers in
``BENCH_timing.json`` are *derived* from span wall times, and the full
telemetry — including the flow/router spans collected inside the suite
builds — is aggregated into ``run_manifest.json`` next to the timing file.
``benchmarks/diff_manifest.py`` cross-checks the two documents in CI.

``--check`` additionally asserts the acceptance floors: batched SHAP >= 5x
the per-sample loop on a 1000-sample batch (always), and parallel >= 2x
serial for suite+experiment (only on machines with >= 4 CPUs — a 1-core
runner cannot speed anything up, but the numbers are still recorded).  The
per-sample SHAP reference is timed on a subset and extrapolated linearly
(the loop is exactly linear in n); both raw timings are recorded.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.experiment import run_experiment
from repro.core.models import model_zoo
from repro.core.pipeline import build_suite_dataset
from repro.ml.binning import BinnedDataset
from repro.ml.forest import ForestArrays, RandomForestClassifier
from repro.ml.shap.tree_explainer import TreeShapExplainer
from repro.ml.tree import DecisionTreeClassifier
from repro.runtime import FaultTolerantRunner, ParallelRunner
from repro.runtime.telemetry import (
    Tracer,
    activate,
    build_manifest,
    get_tracer,
    new_run_id,
    write_manifest,
    write_trace,
)


def _bench_suite(scale: float, jobs: int, tmp: Path) -> dict:
    tracer = get_tracer()
    serial_npz = tmp / "serial.npz"
    parallel_npz = tmp / "parallel.npz"
    with tracer.span("suite_build"):
        with tracer.span("serial") as serial_span:
            suite, _ = build_suite_dataset(
                scale, cache_path=serial_npz,
                runner=FaultTolerantRunner(fail_fast=True),
            )
        with tracer.span("parallel", jobs=jobs) as parallel_span:
            build_suite_dataset(
                scale, cache_path=parallel_npz,
                runner=ParallelRunner(jobs, fail_fast=True),
            )

    identical = (
        hashlib.sha256(serial_npz.read_bytes()).hexdigest()
        == hashlib.sha256(parallel_npz.read_bytes()).hexdigest()
    )
    return {
        "serial_s": round(serial_span.wall_s, 3),
        "parallel_s": round(parallel_span.wall_s, 3),
        "speedup": round(serial_span.wall_s / parallel_span.wall_s, 2),
        "cache_byte_identical": identical,
        "_suite": suite,
    }


def _bench_experiment(suite, jobs: int) -> dict:
    tracer = get_tracer()
    models = [m for m in model_zoo("fast") if m.name in ("RUSBoost", "NN-1", "RF")]
    with tracer.span("experiment"):
        with tracer.span("serial") as serial_span:
            run_experiment(suite, models, tune=False,
                           runner=FaultTolerantRunner(fail_fast=True))
        with tracer.span("parallel", jobs=jobs) as parallel_span:
            run_experiment(suite, models, tune=False,
                           runner=ParallelRunner(jobs, fail_fast=True))
    return {
        "serial_s": round(serial_span.wall_s, 3),
        "parallel_s": round(parallel_span.wall_s, 3),
        "speedup": round(serial_span.wall_s / parallel_span.wall_s, 2),
    }


def _bench_shap(batch_size: int = 1000, ref_samples: int = 200) -> dict:
    tracer = get_tracer()
    rng = np.random.default_rng(0)
    X = rng.normal(size=(1500, 40))
    y = (X[:, 0] + X[:, 3] * X[:, 5] - X[:, 7] > 0).astype(np.int8)
    rf = RandomForestClassifier(n_estimators=20, max_depth=8, random_state=0)
    rf.fit(X, y)
    explainer = TreeShapExplainer(rf.trees, X.shape[1])
    batch = X[:batch_size]

    with tracer.span("tree_shap"):
        with tracer.span("batched", batch_size=batch_size) as batched_span:
            phi_batch = explainer.shap_values(batch)
        ref = batch[:ref_samples]
        with tracer.span("single_ref", samples=ref_samples) as single_span:
            phi_ref = np.vstack([explainer.shap_values_single(x) for x in ref])

    batched_s = batched_span.wall_s
    ref_s = single_span.wall_s
    single_s_extrapolated = ref_s / ref_samples * batch_size

    return {
        "batch_size": batch_size,
        "batched_s": round(batched_s, 3),
        "single_ref_samples": ref_samples,
        "single_ref_s": round(ref_s, 3),
        "single_s_extrapolated": round(single_s_extrapolated, 3),
        "speedup": round(single_s_extrapolated / batched_s, 1),
        "max_abs_diff_vs_single": float(
            np.abs(phi_batch[:ref_samples] - phi_ref).max()
        ),
    }


_HIST_COUNTERS = ("ml.hist.builds", "ml.hist.subtractions", "ml.tree.nodes")


def _bench_train(
    n_rows: int = 4000,
    n_features: int = 40,
    n_trees: int = 30,
    n_predict: int = 1000,
) -> dict:
    """Histogram engine micro-benchmark: the BENCH_train.json payload.

    Both fits grow *bit-identical* trees (same pre-spawned per-tree
    generators over the same shared BinnedDataset), so the wall-time gap is
    purely the engine's histogram work; the build/subtraction counts that
    prove it are deltas of the ``ml.hist.*`` tracer counters.
    """
    tracer = get_tracer()
    rng = np.random.default_rng(4)
    X = rng.normal(size=(n_rows, n_features))
    y = (X[:, 0] + X[:, 3] * X[:, 5] - X[:, 7] > 0).astype(np.int8)
    Xte = rng.normal(size=(n_predict, n_features))

    def fit_forest(hist_subtraction: bool) -> list[DecisionTreeClassifier]:
        dataset = BinnedDataset.from_matrix(X)
        trees = []
        for r in np.random.default_rng(0).spawn(n_trees):
            tree = DecisionTreeClassifier(
                random_state=r, hist_subtraction=hist_subtraction
            )
            tree.fit(None, y, binned=dataset)
            trees.append(tree)
        return trees

    def counters() -> dict[str, float]:
        return {k: tracer.counters.get(k, 0) for k in _HIST_COUNTERS}

    with tracer.span("train_predict"):
        c0 = counters()
        with tracer.span("fit_direct", n_trees=n_trees) as direct_span:
            direct = fit_forest(hist_subtraction=False)
        c1 = counters()
        with tracer.span("fit_subtraction", n_trees=n_trees) as sub_span:
            fast = fit_forest(hist_subtraction=True)
        c2 = counters()

        identical = all(
            np.array_equal(a.tree_.children_left, b.tree_.children_left)
            and np.array_equal(a.tree_.feature, b.tree_.feature)
            and np.array_equal(a.tree_.threshold, b.tree_.threshold, equal_nan=True)
            and np.array_equal(a.tree_.value, b.tree_.value)
            for a, b in zip(direct, fast)
        )

        stacked = ForestArrays.from_trees([t.tree_ for t in fast])
        with tracer.span("predict_stacked", rows=n_predict) as stacked_span:
            p_stacked = stacked.predict_proba_positive(Xte)
        with tracer.span("predict_loop", rows=n_predict) as loop_span:
            p_loop = np.mean(
                [t.tree_.predict_proba_positive(Xte) for t in fast], axis=0
            )

    builds_direct = c1["ml.hist.builds"] - c0["ml.hist.builds"]
    builds_sub = c2["ml.hist.builds"] - c1["ml.hist.builds"]
    return {
        "n_rows": n_rows,
        "n_features": n_features,
        "n_trees": n_trees,
        "fit_direct_s": round(direct_span.wall_s, 3),
        "fit_subtraction_s": round(sub_span.wall_s, 3),
        "fit_speedup": round(direct_span.wall_s / sub_span.wall_s, 2),
        "hist_builds_direct": int(builds_direct),
        "hist_builds_subtraction": int(builds_sub),
        "hist_subtractions": int(
            c2["ml.hist.subtractions"] - c1["ml.hist.subtractions"]
        ),
        "builds_saved_pct": round(100.0 * (1.0 - builds_sub / builds_direct), 1),
        "tree_nodes": int(c2["ml.tree.nodes"] - c1["ml.tree.nodes"]),
        "trees_bit_identical": identical,
        "predict_rows": n_predict,
        "predict_stacked_s": round(stacked_span.wall_s, 3),
        "predict_loop_s": round(loop_span.wall_s, 3),
        "predict_speedup": round(loop_span.wall_s / stacked_span.wall_s, 2),
        "predict_max_abs_diff": float(np.abs(p_stacked - p_loop).max()),
    }


#: BENCH_timing.json keys and the manifest stage path each one is derived from.
STAGE_MAP = {
    ("suite_build", "serial_s"): "bench/suite_build/serial",
    ("suite_build", "parallel_s"): "bench/suite_build/parallel",
    ("experiment", "serial_s"): "bench/experiment/serial",
    ("experiment", "parallel_s"): "bench/experiment/parallel",
    ("tree_shap", "batched_s"): "bench/tree_shap/batched",
    ("tree_shap", "single_ref_s"): "bench/tree_shap/single_ref",
}

#: BENCH_train.json keys and the manifest stage path each one is derived from.
TRAIN_STAGE_MAP = {
    ("train", "fit_direct_s"): "bench/train_predict/fit_direct",
    ("train", "fit_subtraction_s"): "bench/train_predict/fit_subtraction",
    ("train", "predict_stacked_s"): "bench/train_predict/predict_stacked",
    ("train", "predict_loop_s"): "bench/train_predict/predict_loop",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("-j", "--jobs", type=int, default=4)
    parser.add_argument("--out", type=Path, default=Path("BENCH_timing.json"))
    parser.add_argument("--train-out", type=Path, default=Path("BENCH_train.json"),
                        help="training-engine micro-benchmark destination")
    parser.add_argument("--manifest", type=Path, default=Path("run_manifest.json"),
                        help="aggregated telemetry manifest destination")
    parser.add_argument("--trace", type=Path, default=None,
                        help="also write the full JSONL span trace here")
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance speedup floors")
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    doc: dict = {
        "scale": args.scale,
        "jobs": args.jobs,
        "cpu_count": cpus,
        "python": sys.version.split()[0],
    }

    tracer = Tracer(enabled=True, run_id=new_run_id())
    with activate(tracer), tracer.span("bench", scale=args.scale, jobs=args.jobs):
        with tempfile.TemporaryDirectory() as td:
            suite_res = _bench_suite(args.scale, args.jobs, Path(td))
        suite = suite_res.pop("_suite")
        doc["suite_build"] = suite_res
        print(f"suite build   : {suite_res}", flush=True)

        doc["experiment"] = _bench_experiment(suite, args.jobs)
        print(f"experiment    : {doc['experiment']}", flush=True)

        doc["tree_shap"] = _bench_shap()
        print(f"tree shap     : {doc['tree_shap']}", flush=True)

        train_doc = {"train": _bench_train()}
        print(f"train engine  : {train_doc['train']}", flush=True)

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    args.train_out.write_text(json.dumps(train_doc, indent=2) + "\n")
    print(f"wrote {args.train_out}")

    manifest = build_manifest(
        tracer, command="bench-smoke", argv=list(argv or sys.argv[1:]),
        config={"scale": args.scale, "jobs": args.jobs, "cpu_count": cpus},
    )
    write_manifest(manifest, args.manifest)
    print(f"wrote {args.manifest}")
    if args.trace is not None:
        write_trace(tracer, args.trace, command="bench-smoke")
        print(f"wrote {args.trace}")

    if args.check:
        assert doc["suite_build"]["cache_byte_identical"], "parallel cache differs"
        shap = doc["tree_shap"]
        assert shap["max_abs_diff_vs_single"] <= 1e-10, "batched SHAP drifted"
        assert shap["speedup"] >= 5.0, f"SHAP speedup {shap['speedup']} < 5x"
        if cpus >= 4:
            for key in ("suite_build", "experiment"):
                speedup = doc[key]["speedup"]
                assert speedup >= 2.0, f"{key} speedup {speedup} < 2x"
        else:
            print(f"note: {cpus} CPU(s) — parallel speedup floors not asserted")
        train = train_doc["train"]
        assert train["trees_bit_identical"], "subtraction changed the trees"
        assert train["hist_subtractions"] > 0, "subtraction path never taken"
        assert train["hist_builds_subtraction"] < train["hist_builds_direct"], (
            "subtraction did not reduce histogram builds"
        )
        assert train["predict_max_abs_diff"] <= 1e-12, "stacked predict drifted"
        # BENCH values are a derived view of the span tree: re-derive them
        # from the manifest stage table and demand agreement.
        stages = {row["path"]: row for row in manifest["stages"]}
        for doc_view, stage_map in ((doc, STAGE_MAP), (train_doc, TRAIN_STAGE_MAP)):
            for (section, key), path in stage_map.items():
                bench_v = doc_view[section][key]
                stage_v = stages[path]["wall_s"]
                assert abs(bench_v - stage_v) <= 2e-3, (
                    f"{section}.{key}={bench_v} != stage {path} wall_s={stage_v}"
                )
        # the manifest's global counters cover at least the bench's own fits
        for name in ("ml.hist.builds", "ml.hist.subtractions"):
            total = manifest["counters"].get(name, 0)
            local = train["hist_builds_direct"] + train["hist_builds_subtraction"]
            if name == "ml.hist.subtractions":
                local = train["hist_subtractions"]
            assert total >= local, f"manifest counter {name} lost bench fits"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
