"""E8 — ablations of the paper's design choices.

The paper argues for several methodology decisions without dedicated
experiments; this bench supplies them:

1. **Design-split vs sample-split (Sec. II).**  Splitting samples of the
   *same* designs into train/test (as [4], [6] did) inflates measured
   quality versus the honest design-grouped split.
2. **A_prc vs A_roc (Sec. III-B).**  Under heavy imbalance, A_roc is
   systematically (and misleadingly) higher than A_prc.
3. **3×3 window vs central cell only (Sec. II-A).**  Neighbourhood
   features carry real signal: dropping them hurts A_prc.
4. **Number of trees (Sec. IV-A).**  More trees do not hurt: quality is
   non-decreasing (within tolerance) from 10 to 120 trees.
"""

import numpy as np
import pytest

from repro.features.names import feature_names
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import auc_roc, average_precision


@pytest.fixture(scope="module")
def split(suite):
    X_train, y_train, _ = suite.stacked(exclude_groups=(3,))
    tests = [
        suite.by_name(n)
        for n in ("des_perf_1", "mult_c")
        if suite.by_name(n).num_hotspots > 0
    ]
    return X_train, y_train, tests


def _mean_aprc(model, tests):
    return float(
        np.mean(
            [average_precision(t.y, model.predict_proba(t.X)[:, 1]) for t in tests]
        )
    )


def test_ablation_design_split_vs_sample_split(suite, benchmark):
    """Sample-level splits leak design identity and inflate quality."""
    target = suite.by_name("des_perf_1")
    X_other, y_other, _ = suite.stacked(exclude_groups=(target.group,))

    def run_both():
        rng = np.random.default_rng(0)
        # honest: train on other groups, test on the whole design
        honest_model = RandomForestClassifier(n_estimators=60, random_state=0)
        honest_model.fit(X_other, y_other)
        honest = average_precision(
            target.y, honest_model.predict_proba(target.X)[:, 1]
        )
        # optimistic: random half of the design itself is visible in training
        idx = rng.permutation(target.num_samples)
        half = target.num_samples // 2
        tr, te = idx[:half], idx[half:]
        X_mix = np.vstack([X_other, target.X[tr]])
        y_mix = np.concatenate([y_other, target.y[tr]])
        leaky_model = RandomForestClassifier(n_estimators=60, random_state=0)
        leaky_model.fit(X_mix, y_mix)
        if target.y[te].sum() == 0:
            pytest.skip("unlucky split: no positives in the held-out half")
        leaky = average_precision(
            target.y[te], leaky_model.predict_proba(target.X[te])[:, 1]
        )
        return honest, leaky

    honest, leaky = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nA_prc honest(design split) = {honest:.4f}, leaky(sample split) = {leaky:.4f}")
    assert leaky > honest, "sample-split evaluation must look optimistic"


def test_ablation_aproc_vs_aprc(split, benchmark):
    """A_roc paints a rosier picture than A_prc on imbalanced data."""
    X_train, y_train, tests = split

    def run():
        model = RandomForestClassifier(n_estimators=60, random_state=0)
        model.fit(X_train, y_train)
        rows = []
        for t in tests:
            s = model.predict_proba(t.X)[:, 1]
            rows.append((t.name, average_precision(t.y, s), auc_roc(t.y, s)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, aprc, aroc in rows:
        print(f"\n{name}: A_prc={aprc:.4f}  A_roc={aroc:.4f}")
        assert aroc > aprc, "under imbalance A_roc reads higher than A_prc"


def test_ablation_window_3x3_vs_1x1(split, benchmark):
    """Neighbour features matter: central-cell-only features lose A_prc."""
    X_train, y_train, tests = split
    names = feature_names()
    central = np.array([i for i, n in enumerate(names) if n.endswith("_o")])
    print(f"\ncentral-cell features: {len(central)} of {len(names)}")

    def run():
        full = RandomForestClassifier(n_estimators=80, random_state=0)
        full.fit(X_train, y_train)
        full_score = _mean_aprc(full, tests)

        small = RandomForestClassifier(n_estimators=80, random_state=0)
        small.fit(X_train[:, central], y_train)
        small_score = float(
            np.mean(
                [
                    average_precision(
                        t.y, small.predict_proba(t.X[:, central])[:, 1]
                    )
                    for t in tests
                ]
            )
        )
        return full_score, small_score

    full_score, small_score = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"A_prc 3x3 window = {full_score:.4f}, central-only = {small_score:.4f}")
    assert full_score > small_score, "the 3x3 window must add signal"


def test_ablation_rf_robust_to_noise_features(split, benchmark):
    """Paper Sec. III-A: 'because of the randomization in choosing the
    features to split, RF is robust in the presence of uninformative and
    redundant features.'  We double the feature count with pure noise and
    shuffled copies; RF's A_prc must barely move."""
    X_train, y_train, tests = split
    rng = np.random.default_rng(0)
    n, f = X_train.shape

    def augment(X, noise_rng):
        noise = noise_rng.normal(size=X.shape)
        shuffled = X[noise_rng.permutation(len(X))]  # redundant-but-useless
        return np.hstack([X, noise, shuffled])

    def run():
        clean = RandomForestClassifier(n_estimators=80, random_state=0)
        clean.fit(X_train, y_train)
        clean_score = _mean_aprc(clean, tests)

        noisy_rng = np.random.default_rng(1)
        X_aug = augment(X_train, noisy_rng)
        noisy = RandomForestClassifier(n_estimators=80, random_state=0)
        noisy.fit(X_aug, y_train)
        noisy_score = float(
            np.mean(
                [
                    average_precision(
                        t.y,
                        noisy.predict_proba(
                            augment(t.X, np.random.default_rng(2))
                        )[:, 1],
                    )
                    for t in tests
                ]
            )
        )
        return clean_score, noisy_score

    clean_score, noisy_score = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nA_prc with 387 features = {clean_score:.4f}, "
        f"with 1161 (2/3 junk) = {noisy_score:.4f}"
    )
    assert noisy_score > 0.6 * clean_score, "RF must shrug off junk features"


def test_ablation_tree_count_sweep(split, benchmark):
    """Paper Sec. IV-A: adding trees 'would not hurt' — quality saturates."""
    X_train, y_train, tests = split

    def run():
        scores = {}
        for n in (10, 40, 120):
            model = RandomForestClassifier(n_estimators=n, random_state=0)
            model.fit(X_train, y_train)
            scores[n] = _mean_aprc(model, tests)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nA_prc by tree count: { {k: round(v, 4) for k, v in scores.items()} }")
    assert scores[120] >= scores[10] - 0.03
    assert scores[40] >= scores[10] - 0.03
