"""Chaos run: the crash-safety matrix exercised end to end, with artifacts.

Runs the suite builder under injected worker faults and asserts the
supervision layer's acceptance bar on a real workload::

    PYTHONPATH=src python benchmarks/chaos.py --scale 0.3 --jobs 2 --check

Three phases, one shared tracer:

1. **kill + hang recovery** — one design's flow SIGKILLs its worker once
   and another hangs past the heartbeat once; both must be re-dispatched on
   a respawned pool and the suite must complete with *zero* failures.
2. **quarantine + resume** — a poison design SIGKILLs its worker on every
   attempt; the run must degrade to a structured ``worker_crash`` failure
   (never abort), leave the shared cache unwritten, and a fault-free resume
   must complete from the surviving checkpoints.  The resumed cache must be
   byte-identical to phase 1's — same scale, so same bytes.
3. **orphan sweep** — a stale atomic-write temp file planted before the
   resume must be gone afterwards and counted on
   ``runtime.cache.orphans_swept``.

Artifacts (uploaded by the CI ``chaos`` job): ``CHAOS_report.json`` (what
happened, per phase), ``CHAOS_failures.json`` (the structured failure log
from the quarantine phase), and ``run_manifest.json`` (aggregated telemetry
— crash/respawn/quarantine counters included, since the parallel runner
zero-registers them).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.core.pipeline import build_suite_dataset
from repro.runtime import FaultTolerantRunner, ParallelRunner, RetryPolicy
from repro.runtime.faults import FaultSpec, inject_faults
from repro.runtime.telemetry import (
    Tracer,
    activate,
    build_manifest,
    get_tracer,
    new_run_id,
    write_manifest,
    write_trace,
)

#: The designs the fault schedule targets (must exist at every scale).
KILL_TARGET = "mult_1"
HANG_TARGET = "fft_a"


def _runner(jobs: int, heartbeat_s: float) -> ParallelRunner:
    return ParallelRunner(
        jobs,
        policy=RetryPolicy(max_retries=1, backoff_base_s=0.1),
        max_pool_respawns=10,
        quarantine_threshold=2,
        heartbeat_s=heartbeat_s,
        respawn_backoff_s=0.1,
    )


def _phase_recovery(scale: float, jobs: int, heartbeat_s: float, tmp: Path) -> dict:
    """One kill and one hang, each fired once: the run must self-heal."""
    tracer = get_tracer()
    cache = tmp / "recovered.npz"
    runner = _runner(jobs, heartbeat_s)
    with tracer.span("chaos_recovery"):
        with inject_faults(
            FaultSpec(stage=f"flow/{KILL_TARGET}", kind="kill", times=1, delay_s=0.3),
            FaultSpec(
                stage=f"flow/{HANG_TARGET}", kind="hang", times=1,
                delay_s=heartbeat_s * 100,
            ),
        ) as plan:
            suite, _ = build_suite_dataset(scale, cache_path=cache, runner=runner)
    assert not runner.failures, (
        f"single kill/hang must be recovered, got {runner.failures.records}"
    )
    assert cache.exists(), "recovered suite must publish its cache"
    fired = sorted(kind for _stage, kind in plan.triggered)
    assert fired == ["hang", "kill"], f"fault schedule misfired: {plan.triggered}"
    return {
        "designs": len(suite.names),
        "faults_fired": plan.triggered,
        "failures": 0,
        "cache_sha256": hashlib.sha256(cache.read_bytes()).hexdigest(),
    }


def _phase_quarantine_resume(
    scale: float, jobs: int, heartbeat_s: float, tmp: Path
) -> tuple[dict, list[dict]]:
    """A poison design: degrade + quarantine, then resume to completion."""
    tracer = get_tracer()
    cache = tmp / "quarantined.npz"
    runner = _runner(jobs, heartbeat_s)
    with tracer.span("chaos_quarantine"):
        with inject_faults(
            FaultSpec(stage=f"flow/{KILL_TARGET}", kind="kill", times=99, delay_s=0.3),
        ):
            suite, _ = build_suite_dataset(scale, cache_path=cache, runner=runner)
    records = [rec.to_dict() for rec in runner.failures.records]
    assert runner.failures.units() == [f"flow/{KILL_TARGET}"], (
        f"exactly the poison design must fail, got {records}"
    )
    assert records[0]["kind"] == "worker_crash", records[0]
    assert KILL_TARGET not in suite.names
    assert not cache.exists(), "degraded suite must not publish the cache"

    # plant a stale atomic-write orphan: the resume's startup sweep eats it
    orphan = cache.parent / f".{cache.name}.tmp-chaos-orphan"
    orphan.write_bytes(b"torn write")
    two_hours_ago = time.time() - 7200
    os.utime(orphan, (two_hours_ago, two_hours_ago))

    with tracer.span("chaos_resume"):
        build_suite_dataset(
            scale, cache_path=cache, runner=FaultTolerantRunner(fail_fast=True)
        )
    assert cache.exists(), "resume must complete the suite"
    assert not orphan.exists(), "startup sweep must remove the stale temp"
    assert not list(cache.parent.glob(".*.tmp*")), "no temp residue after resume"
    return (
        {
            "quarantined": KILL_TARGET,
            "failure_kind": records[0]["kind"],
            "orphan_swept": True,
            "resumed_cache_sha256": hashlib.sha256(cache.read_bytes()).hexdigest(),
        },
        records,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("-j", "--jobs", type=int, default=2)
    parser.add_argument("--heartbeat", type=float, default=30.0,
                        help="hang-detection deadline; must exceed the "
                             "longest honest flow at --scale")
    parser.add_argument("--workdir", type=Path, default=Path("chaos-work"),
                        help="scratch directory for caches and checkpoints")
    parser.add_argument("--out", type=Path, default=Path("CHAOS_report.json"))
    parser.add_argument("--failures-out", type=Path,
                        default=Path("CHAOS_failures.json"))
    parser.add_argument("--manifest", type=Path, default=Path("run_manifest.json"))
    parser.add_argument("--trace", type=Path, default=None,
                        help="also write the full JSONL span trace here")
    parser.add_argument("--check", action="store_true",
                        help="assert the crash-safety acceptance bar")
    args = parser.parse_args(argv)

    args.workdir.mkdir(parents=True, exist_ok=True)
    doc: dict = {
        "scale": args.scale,
        "jobs": args.jobs,
        "heartbeat_s": args.heartbeat,
        "python": sys.version.split()[0],
    }

    tracer = Tracer(enabled=True, run_id=new_run_id())
    with activate(tracer), tracer.span("chaos", scale=args.scale, jobs=args.jobs):
        doc["recovery"] = _phase_recovery(
            args.scale, args.jobs, args.heartbeat, args.workdir
        )
        print(f"recovery   : {doc['recovery']}", flush=True)

        doc["quarantine_resume"], failures = _phase_quarantine_resume(
            args.scale, args.jobs, args.heartbeat, args.workdir
        )
        print(f"quarantine : {doc['quarantine_resume']}", flush=True)

    doc["byte_identical_after_resume"] = (
        doc["recovery"]["cache_sha256"]
        == doc["quarantine_resume"]["resumed_cache_sha256"]
    )
    doc["counters"] = {
        k: tracer.counters.get(k, 0)
        for k in (
            "runner.worker_crashes",
            "runner.pool_respawns",
            "runner.quarantined",
            "runner.signal_shutdowns",
            "runtime.cache.orphans_swept",
        )
    }
    print(f"counters   : {doc['counters']}", flush=True)

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {args.out}")
    args.failures_out.write_text(json.dumps(failures, indent=2) + "\n")
    print(f"wrote {args.failures_out}")

    manifest = build_manifest(
        tracer, command="bench-chaos", argv=list(argv or sys.argv[1:]),
        config={"scale": args.scale, "jobs": args.jobs,
                "heartbeat_s": args.heartbeat},
    )
    write_manifest(manifest, args.manifest)
    print(f"wrote {args.manifest}")
    if args.trace is not None:
        write_trace(tracer, args.trace, command="bench-chaos")
        print(f"wrote {args.trace}")

    if args.check:
        counters = doc["counters"]
        assert doc["byte_identical_after_resume"], (
            "resumed cache differs from the self-healed run's cache"
        )
        # kill in phase 1, hang in phase 1, >= 2 kills in phase 2
        assert counters["runner.worker_crashes"] >= 4, counters
        assert counters["runner.pool_respawns"] >= 4, counters
        assert counters["runner.quarantined"] == 1, counters
        assert counters["runtime.cache.orphans_swept"] >= 1, counters
        assert manifest["counters"]["runner.quarantined"] == 1, (
            "manifest lost the supervision counters"
        )
        assert manifest["failures"], "manifest lost the failure records"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
