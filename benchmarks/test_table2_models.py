"""E2 — Table II: the five-model comparison under the paper's protocol.

Runs (via the session fixture) leave-one-group-out evaluation of SVM-RBF,
RUSBoost, NN-1, NN-2 and RF over the 14-design suite, prints the Table II
analogue and asserts the paper's headline claims:

* RF has the best average A_prc (the paper's main metric) and wins the
  most designs on it;
* RF's advantage over SVM-RBF is at least the paper's reported 21 %;
* SVM-RBF needs by far the most prediction operations per sample
  (paper: 110× RF) and stores the most parameters of the kernel models.

The timed kernel is one final RF fit on the group-0 training set.
"""

import numpy as np

from repro.core.evaluation import format_table2, summarize_shape
from repro.core.models import rf_spec


def test_table2_model_comparison(suite, experiment_result, benchmark):
    X_train, y_train, _ = suite.stacked(exclude_groups=(0,))
    spec = rf_spec("fast")
    benchmark.pedantic(
        lambda: spec.factory().fit(X_train, y_train), rounds=1, iterations=1
    )

    result = experiment_result
    print("\nTable II analogue — model comparison (fast preset)")
    print(format_table2(result))
    shape = summarize_shape(result)
    print("\nqualitative shape:")
    for k, v in shape.items():
        print(f"  {k}: {v}")

    # --- the paper's headline claims ------------------------------------------
    assert shape["rf_best_average_aprc"], "RF must have the best mean A_prc"
    assert shape["rf_most_wins_aprc"], "RF must win the most designs on A_prc"
    assert shape["svm_most_prediction_ops"], "SVM-RBF must cost the most ops"
    assert shape["rf_vs_svm_aprc_gain"] >= 0.21, (
        "paper: RF is at least 21% better than SVM-RBF in average A_prc"
    )

    # every scored design/model cell carries valid metrics
    for s in result.scores:
        assert 0.0 <= s.metrics.a_prc <= 1.0
        assert 0.0 <= s.metrics.tpr_star <= 1.0

    # RF average TPR*: the paper reports ~0.51 at our 0.5% FPR budget; at
    # 10x smaller designs a positive, nontrivial recall is the check
    rf_tpr, rf_prec, rf_aprc = result.averages("RF")
    print(f"\nRF averages: TPR*={rf_tpr:.4f} Prec*={rf_prec:.4f} A_prc={rf_aprc:.4f}")
    assert rf_aprc > 0.3


def test_rf_parameter_count_largest_tree_model(experiment_result, benchmark):
    """Paper: the 500-tree unpruned RF stores the most parameters among the
    tree models; here we assert RF > RUSBoost (its trees are depth-capped)."""
    stats = {s.model: s for s in experiment_result.run_stats}
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert stats["RF"].num_parameters > stats["RUSBoost"].num_parameters
    # NNs are the smallest models, as in Table II
    assert stats["NN-1"].num_parameters < stats["RF"].num_parameters
    assert stats["NN-1"].num_parameters < stats["SVM-RBF"].num_parameters
