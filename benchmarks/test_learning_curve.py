"""E10 — data availability: how much routed training data does RF need?

Data acquisition is the paper's recurring concern (Sec. I): every training
design must be fully detail-routed, which costs hours-to-days per design,
and the paper criticises prior works whose data assumptions are optimistic.
The natural follow-up experiment — not in the paper, enabled by our
mechanistic substrate — is the **learning curve**: test-design A_prc as a
function of the number of *training groups* (i.e. routed designs)
available.

Asserts: more training groups never hurt much (the curve is near-monotone),
and even one group of routed designs yields a usable predictor — the
practical message that early-feedback models can bootstrap from a small
routed history.
"""

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import average_precision


def test_learning_curve_over_training_groups(suite, benchmark):
    test_designs = [
        suite.by_name(n) for n in ("des_perf_1", "mult_c")
    ]  # group 3 held out throughout
    train_groups = [0, 1, 2, 4]

    def run():
        scores: dict[int, float] = {}
        for k in (1, 2, 3, 4):
            keep = set(train_groups[:k])
            exclude = tuple(g for g in (0, 1, 2, 3, 4) if g not in keep)
            X, y, _ = suite.stacked(exclude_groups=exclude)
            if y.sum() == 0:
                continue
            model = RandomForestClassifier(n_estimators=80, random_state=0)
            model.fit(X, y)
            scores[k] = float(
                np.mean(
                    [
                        average_precision(t.y, model.predict_proba(t.X)[:, 1])
                        for t in test_designs
                    ]
                )
            )
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nA_prc vs number of training groups:")
    for k, v in scores.items():
        print(f"  {k} group(s): {v:.4f}")

    ks = sorted(scores)
    assert len(ks) >= 3
    # usable model from a single group of routed designs
    assert scores[ks[0]] > 0.1
    # more data does not substantially hurt (tolerate small non-monotonicity)
    assert scores[ks[-1]] >= scores[ks[0]] - 0.05
