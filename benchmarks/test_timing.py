"""E7 — cost rows of Table II: training time, prediction time, op counts.

The paper's cost story (Table II bottom rows, Sec. IV-A):

* SVM-RBF stores many high-dimensional support vectors and needs ~110×
  the prediction operations of RF;
* RF's per-sample prediction cost is tiny (short average tree paths);
* SHAP explanations cost ~1.4 s/sample and need no detailed routing.

This bench times each model's fit and scoring on one protocol split and
asserts the scale-independent parts of that story.  (The paper's *absolute*
training-time ordering — SVM 7× slower than RF — holds at 100k+ training
samples where kernel methods scale quadratically; at our reduced scale the
subsampled SVM trains fast, which EXPERIMENTS.md discusses.)
"""

import time

import numpy as np
import pytest

from repro.core.models import model_zoo
from repro.ml.complexity import complexity_of
from repro.ml.scaling import StandardScaler


@pytest.fixture(scope="module")
def split(suite):
    X_train, y_train, _ = suite.stacked(exclude_groups=(3,))
    test = suite.by_name("des_perf_1")
    return X_train, y_train, test


@pytest.mark.parametrize("model_name", ["SVM-RBF", "RUSBoost", "NN-1", "NN-2", "RF"])
def test_model_fit_and_predict_cost(split, benchmark, model_name):
    X_train, y_train, test = split
    spec = next(m for m in model_zoo("fast") if m.name == model_name)
    scaler = StandardScaler().fit(X_train) if spec.needs_scaling else None
    X_fit = scaler.transform(X_train) if scaler else X_train
    X_test = scaler.transform(test.X) if scaler else test.X

    model = benchmark.pedantic(
        lambda: spec.factory().fit(X_fit, y_train), rounds=1, iterations=1
    )

    t0 = time.perf_counter()
    scores = model.predict_proba(X_test)[:, 1]
    predict_sec = time.perf_counter() - t0
    report = complexity_of(model, X_fit[:512], model_name)
    print(
        f"\n{model_name}: predict {predict_sec * 1000:.1f} ms/design, "
        f"{report.num_parameters / 1e3:.1f}k params, "
        f"{report.prediction_ops_per_sample / 1e3:.2f}k ops/sample"
    )
    assert np.isfinite(scores).all()
    assert predict_sec < 30.0


def test_cost_story_shape(split, benchmark):
    """SVM ops >> NN ops > RF ops; RF params > NN params (Table II)."""
    X_train, y_train, _ = split
    zoo = {m.name: m for m in model_zoo("fast")}
    scaler = StandardScaler().fit(X_train)
    Xs = scaler.transform(X_train)

    def build_reports():
        reports = {}
        for name in ("SVM-RBF", "NN-1", "RF"):
            spec = zoo[name]
            X_fit = Xs if spec.needs_scaling else X_train
            model = spec.factory().fit(X_fit, y_train)
            reports[name] = complexity_of(model, X_fit[:512], name)
        return reports

    reports = benchmark.pedantic(build_reports, rounds=1, iterations=1)
    ops = {k: v.prediction_ops_per_sample for k, v in reports.items()}
    params = {k: v.num_parameters for k, v in reports.items()}
    print(f"\nops/sample: { {k: round(v) for k, v in ops.items()} }")
    print(f"params:     {params}")
    # paper: SVM needs ~110x the ops of RF; assert a generous 50x here
    assert ops["SVM-RBF"] > 50 * ops["RF"]
    assert ops["SVM-RBF"] > 5 * ops["NN-1"]
    assert params["RF"] > params["NN-1"]
