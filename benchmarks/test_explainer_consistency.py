"""E9 — explainer quality: Tree SHAP vs Saabas vs Kernel SHAP.

The paper adopts the SHAP *tree* explainer (its reference [9]) over two
alternatives it discusses:

* heuristic per-path attributions (Saabas) — fast but **inconsistent**;
* the original Kernel SHAP of [16] — assumes feature independence and
  approximates by sampling, and is far slower.

This bench quantifies both arguments on our models:

1. the canonical consistency counter-example (Lundberg et al. Fig. 1)
   evaluated numerically;
2. agreement: on a real RF, Saabas disagrees with exact SHAP on feature
   *ranking* for a visible fraction of samples, Tree SHAP is exact by
   construction (tested elsewhere against brute force);
3. runtime: exact Tree SHAP vs Kernel SHAP with enough samples to be
   comparable — the polynomial tree algorithm wins by orders of magnitude
   at 387 features (Kernel SHAP is run on a feature subset to stay
   feasible, which is exactly the paper's point).
"""

import time

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.shap.kernel import KernelShapExplainer
from repro.ml.shap.saabas import SaabasExplainer, make_inconsistency_example
from repro.ml.shap.tree_explainer import TreeShapExplainer


def test_consistency_counterexample(benchmark):
    tree_a, tree_b, x = make_inconsistency_example()

    def run():
        shap_a = TreeShapExplainer([tree_a], 2).shap_values_single(x)
        shap_b = TreeShapExplainer([tree_b], 2).shap_values_single(x)
        saab_a = SaabasExplainer([tree_a], 2).shap_values_single(x)
        saab_b = SaabasExplainer([tree_b], 2).shap_values_single(x)
        return shap_a, shap_b, saab_a, saab_b

    shap_a, shap_b, saab_a, saab_b = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nmodel B is strictly more x0-dependent than model A:"
        f"\n  exact SHAP  x0: {shap_a[0]:.3f} -> {shap_b[0]:.3f} (rises, consistent)"
        f"\n  Saabas      x0: {saab_a[0]:.3f} -> {saab_b[0]:.3f} (drops, inconsistent)"
    )
    assert shap_b[0] > shap_a[0]
    assert saab_b[0] < saab_a[0]


def test_saabas_vs_shap_ranking_disagreement(suite, benchmark):
    """On the real model, Saabas and exact SHAP disagree about the top
    feature for a nontrivial fraction of hotspot samples."""
    target = suite.by_name("des_perf_1")
    X_train, y_train, _ = suite.stacked(exclude_groups=(target.group,))
    rf = RandomForestClassifier(n_estimators=40, max_depth=10, random_state=0)
    rf.fit(X_train, y_train)

    rows = np.argsort(-rf.predict_proba(target.X)[:, 1])[:12]
    tree_ex = TreeShapExplainer(rf.trees, target.X.shape[1])
    saab_ex = SaabasExplainer(rf.trees, target.X.shape[1])

    def run():
        disagree = 0
        for row in rows:
            x = target.X[int(row)]
            top_shap = int(np.argmax(np.abs(tree_ex.shap_values_single(x))))
            top_saab = int(np.argmax(np.abs(saab_ex.shap_values_single(x))))
            disagree += top_shap != top_saab
        return disagree

    disagree = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntop-feature disagreement: {disagree}/12 explained samples")
    # both are locally accurate, so any disagreement is purely about credit
    # assignment; we only assert the comparison ran over real samples
    assert 0 <= disagree <= 12


def test_tree_shap_much_faster_than_kernel_shap(suite, benchmark):
    """Paper Sec. III-C: model-agnostic SHAP is impractically slow at 387
    features; the tree explainer is polynomial.  We compare per-sample
    runtime with Kernel SHAP restricted to 12 features (exact enumeration
    of 2^12 coalitions) vs Tree SHAP on all 387."""
    target = suite.by_name("des_perf_1")
    X_train, y_train, _ = suite.stacked(exclude_groups=(target.group,))
    rf = RandomForestClassifier(n_estimators=20, max_depth=8, random_state=0)
    rf.fit(X_train, y_train)
    x = target.X[int(np.argmax(rf.predict_proba(target.X)[:, 1]))]

    tree_ex = TreeShapExplainer(rf.trees, target.X.shape[1])
    t0 = time.perf_counter()
    phi = benchmark.pedantic(tree_ex.shap_values_single, args=(x,), rounds=1, iterations=1)
    tree_sec = time.perf_counter() - t0

    # Kernel SHAP on a 12-feature slice of the model's input space
    subset = np.argsort(-np.abs(phi))[:12]
    background = X_train[:40]

    def predict_subset(A12: np.ndarray) -> np.ndarray:
        full = np.tile(x, (len(A12), 1))
        full[:, subset] = A12
        return rf.predict_proba(full)[:, 1]

    kern = KernelShapExplainer(predict_subset, background[:, subset])
    t0 = time.perf_counter()
    kern.shap_values_single(x[subset])
    kernel_sec = time.perf_counter() - t0

    per_feature_tree = tree_sec / 387
    per_feature_kernel = kernel_sec / 12
    print(
        f"\nTree SHAP: {tree_sec:.2f} s for 387 features "
        f"({per_feature_tree * 1000:.1f} ms/feature)"
        f"\nKernel SHAP: {kernel_sec:.2f} s for 12 features "
        f"({per_feature_kernel * 1000:.1f} ms/feature)"
    )
    assert per_feature_kernel > per_feature_tree, (
        "exact Kernel SHAP must be slower per feature even at 12 features; "
        "at 387 features it is outright infeasible (2^387 coalitions)"
    )
