"""repro — Explainable DRC hotspot prediction with RF and SHAP (DATE 2020).

A full from-scratch reproduction of Zeng, Davoodi & Topaloglu's DATE 2020
paper, including every substrate it depends on:

* :mod:`repro.layout`  — geometry, technology, netlist model, g-cell grid;
* :mod:`repro.bench`   — synthetic ISPD-2015-like benchmark suite;
* :mod:`repro.place`   — force-directed placement + legalisation;
* :mod:`repro.route`   — negotiated-congestion global router;
* :mod:`repro.drc`     — detailed-routing/DRC simulator (label mechanism);
* :mod:`repro.features`— the paper's 387 features;
* :mod:`repro.ml`      — RF, SVM-RBF, RUSBoost, MLPs, metrics, Tree SHAP;
* :mod:`repro.core`    — the paper's workflow: flow, Table II protocol,
  per-hotspot SHAP explanations;
* :mod:`repro.runtime` — fault-tolerant runtime: checkpoints, retries,
  validation guards, fault injection;
* :mod:`repro.analysis`— curves, threshold sweeps, calibration, SHAP
  summaries, what-if interventions, reports.

Quickstart::

    from repro.core import run_flow
    from repro.bench import DesignRecipe

    flow = run_flow(DesignRecipe(name="demo", grid_nx=16, grid_ny=16))
    print(flow.stats.format_row())
"""

__version__ = "1.0.0"

from . import analysis, bench, core, drc, features, layout, ml, place, route, runtime  # noqa: F401

__all__ = [
    "analysis",
    "bench",
    "core",
    "drc",
    "features",
    "layout",
    "ml",
    "place",
    "route",
    "runtime",
    "__version__",
]
