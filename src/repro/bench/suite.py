"""The 14-design benchmark suite mirroring Table I of the paper.

The paper uses 14 ISPD-2015 designs in five groups.  We reproduce the same
names, the same grouping, the same macro counts, and the same *relative*
sizes and congestion levels, scaled down roughly 10× in g-cell count so that
the complete flow (place → global route → DRC simulation → features) over all
14 designs runs in minutes.

Per-design knobs (utilization, locality, dense-cluster boost, NDR fraction)
are chosen so the *simulated* flow produces a hotspot-count spread resembling
Table I: e.g. ``des_perf_1`` and ``fft_b`` are congestion-heavy with many
hotspots, ``mult_a`` and ``fft_a`` are sparse with a handful, and
``des_perf_b`` / ``bridge32_b`` come out clean.  The exact hotspot counts are
an *output* of the mechanistic flow, not inputs — see
``benchmarks/test_table1_suite.py`` for the values the suite actually yields.
"""

from __future__ import annotations

from dataclasses import dataclass

from .generator import DesignRecipe

#: Group structure of Table I.
GROUPS: dict[str, tuple[str, ...]] = {
    "Group 1": ("des_perf_b", "fft_2", "mult_1", "mult_2"),
    "Group 2": ("fft_b", "mult_a"),
    "Group 3": ("mult_b", "bridge32_a"),
    "Group 4": ("des_perf_1", "mult_c"),
    "Group 5": ("des_perf_a", "fft_1", "fft_a", "bridge32_b"),
}

#: Designs Table II excludes because they have zero hotspots (metrics
#: undefined).  In the paper these are des_perf_b and bridge32_b.
ZERO_HOTSPOT_DESIGNS: tuple[str, ...] = ("des_perf_b", "bridge32_b")


def _recipe(**kwargs) -> DesignRecipe:
    return DesignRecipe(**kwargs)


#: Every design recipe, keyed by name, in Table I order.
SUITE_RECIPES: dict[str, DesignRecipe] = {
    # ---- Group 1 -------------------------------------------------------------
    "des_perf_b": _recipe(
        name="des_perf_b", grid_nx=33, grid_ny=33, utilization=0.42,
        num_macros=0, mean_net_degree=2.6, cluster_locality=0.9,
        dense_cluster_frac=0.08, dense_net_boost=1.2, ndr_frac=0.01, seed=101,
    ),
    "fft_2": _recipe(
        name="fft_2", grid_nx=18, grid_ny=18, utilization=0.64,
        num_macros=0, mean_net_degree=2.7, cluster_locality=0.85,
        dense_cluster_frac=0.3, dense_net_boost=2.0, ndr_frac=0.02, seed=102,
    ),
    "mult_1": _recipe(
        name="mult_1", grid_nx=29, grid_ny=29, utilization=0.66,
        num_macros=0, mean_net_degree=2.9, cluster_locality=0.82,
        dense_cluster_frac=0.2, dense_net_boost=1.8, ndr_frac=0.03, seed=103,
    ),
    "mult_2": _recipe(
        name="mult_2", grid_nx=30, grid_ny=30, utilization=0.7,
        num_macros=0, mean_net_degree=2.9, cluster_locality=0.82,
        dense_cluster_frac=0.22, dense_net_boost=1.9, ndr_frac=0.03, seed=104,
    ),
    # ---- Group 2 -------------------------------------------------------------
    "fft_b": _recipe(
        name="fft_b", grid_nx=26, grid_ny=26, utilization=0.58,
        num_macros=6, macro_area_frac=0.12, mean_net_degree=3.1,
        cluster_locality=0.78, dense_cluster_frac=0.3, dense_net_boost=2.0,
        ndr_frac=0.05, seed=105,
    ),
    "mult_a": _recipe(
        name="mult_a", grid_nx=47, grid_ny=47, utilization=0.45,
        num_macros=5, macro_area_frac=0.08, mean_net_degree=2.6,
        cluster_locality=0.9, dense_cluster_frac=0.06, dense_net_boost=1.4,
        ndr_frac=0.01, seed=106,
    ),
    # ---- Group 3 -------------------------------------------------------------
    "mult_b": _recipe(
        name="mult_b", grid_nx=49, grid_ny=49, utilization=0.52,
        num_macros=7, macro_area_frac=0.1, mean_net_degree=2.9,
        cluster_locality=0.8, dense_cluster_frac=0.14, dense_net_boost=1.9,
        ndr_frac=0.03, seed=107,
    ),
    "bridge32_a": _recipe(
        name="bridge32_a", grid_nx=19, grid_ny=19, utilization=0.68,
        num_macros=4, macro_area_frac=0.1, mean_net_degree=2.9,
        cluster_locality=0.8, dense_cluster_frac=0.25, dense_net_boost=1.8,
        ndr_frac=0.04, seed=108,
    ),
    # ---- Group 4 -------------------------------------------------------------
    "des_perf_1": _recipe(
        name="des_perf_1", grid_nx=23, grid_ny=23, utilization=0.71,
        num_macros=0, mean_net_degree=3.2, cluster_locality=0.75,
        dense_cluster_frac=0.35, dense_net_boost=2.1, ndr_frac=0.06, seed=119,
    ),
    "mult_c": _recipe(
        name="mult_c", grid_nx=50, grid_ny=50, utilization=0.43,
        num_macros=7, macro_area_frac=0.1, mean_net_degree=2.7,
        cluster_locality=0.86, dense_cluster_frac=0.1, dense_net_boost=1.7,
        ndr_frac=0.02, seed=120,
    ),
    # ---- Group 5 -------------------------------------------------------------
    "des_perf_a": _recipe(
        name="des_perf_a", grid_nx=34, grid_ny=34, utilization=0.52,
        num_macros=4, macro_area_frac=0.08, mean_net_degree=3.0,
        cluster_locality=0.8, dense_cluster_frac=0.2, dense_net_boost=1.9,
        ndr_frac=0.04, seed=111,
    ),
    "fft_1": _recipe(
        name="fft_1", grid_nx=14, grid_ny=14, utilization=0.65,
        num_macros=0, mean_net_degree=3.0, cluster_locality=0.78,
        dense_cluster_frac=0.3, dense_net_boost=2.0, ndr_frac=0.05, seed=112,
    ),
    "fft_a": _recipe(
        name="fft_a", grid_nx=25, grid_ny=25, utilization=0.42,
        num_macros=6, macro_area_frac=0.12, mean_net_degree=2.6,
        cluster_locality=0.9, dense_cluster_frac=0.06, dense_net_boost=1.3,
        ndr_frac=0.01, seed=113,
    ),
    "bridge32_b": _recipe(
        name="bridge32_b", grid_nx=32, grid_ny=32, utilization=0.38,
        num_macros=6, macro_area_frac=0.1, mean_net_degree=2.5,
        cluster_locality=0.92, dense_cluster_frac=0.05, dense_net_boost=1.1,
        ndr_frac=0.005, seed=114,
    ),
}

#: Table I design order (groups in order, designs in listed order).
SUITE_ORDER: tuple[str, ...] = tuple(
    name for members in GROUPS.values() for name in members
)


@dataclass(frozen=True)
class SuiteScale:
    """Uniform scale overrides for quick runs (tests use a reduced suite)."""

    grid_scale: float = 1.0

    def apply(self, recipe: DesignRecipe) -> DesignRecipe:
        if self.grid_scale == 1.0:
            return recipe
        nx = max(6, round(recipe.grid_nx * self.grid_scale))
        ny = max(6, round(recipe.grid_ny * self.grid_scale))
        macros = recipe.num_macros if min(nx, ny) >= 10 else min(recipe.num_macros, 2)
        return DesignRecipe(
            **{
                **recipe.__dict__,
                "grid_nx": nx,
                "grid_ny": ny,
                "num_macros": macros,
            }
        )


def suite_recipes(scale: float = 1.0) -> list[DesignRecipe]:
    """All 14 recipes in Table I order, optionally scaled down."""
    scaler = SuiteScale(scale)
    return [scaler.apply(SUITE_RECIPES[name]) for name in SUITE_ORDER]


def group_of(design_name: str) -> str:
    """Name of the Table I group containing ``design_name``."""
    for group, members in GROUPS.items():
        if design_name in members:
            return group
    raise KeyError(f"unknown design: {design_name!r}")


def group_index_of(design_name: str) -> int:
    """0-based group index (0..4) of a design — the CV grouping key."""
    for i, members in enumerate(GROUPS.values()):
        if design_name in members:
            return i
    raise KeyError(f"unknown design: {design_name!r}")
