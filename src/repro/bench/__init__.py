"""Benchmark substrate: synthetic ISPD-2015-like designs and the 14-design suite."""

from .generator import DesignGenerator, DesignRecipe, generate_design
from .io import load_artifact, load_design, save_artifact, save_design
from .suite import (
    GROUPS,
    SUITE_ORDER,
    SUITE_RECIPES,
    ZERO_HOTSPOT_DESIGNS,
    group_index_of,
    group_of,
    suite_recipes,
)

__all__ = [
    "DesignGenerator",
    "DesignRecipe",
    "generate_design",
    "load_artifact",
    "load_design",
    "save_artifact",
    "save_design",
    "GROUPS",
    "SUITE_ORDER",
    "SUITE_RECIPES",
    "ZERO_HOTSPOT_DESIGNS",
    "group_index_of",
    "group_of",
    "suite_recipes",
]
