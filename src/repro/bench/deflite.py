"""DEF-lite: a human-readable design exchange format.

A deliberately small, DEF-inspired text format capturing everything the
flow needs — die, macros (with blocked layers), cells (with optional
placement), pins and nets (with NDR / clock flags).  Unlike the pickle
serialisation in :mod:`repro.bench.io`, DEF-lite files are stable across
code versions, diffable, and human-editable, making them the right artefact
for sharing testcases and bug reports.

Example::

    DEFLITE 1
    DESIGN demo
    UNITS 100
    DIEAREA 0 0 7920 7920
    MACRO macro_1 240 480 1200 1440 BLOCKS M1 M2 M3
    CELL c0 40 120 PLACED 100 240
      PIN p0 13 37
      PIN p1 20 80 CLOCK
    CELL c1 60 120 UNPLACED
      PIN p0 30 60
    NET n0 NDR ndr_2w2s PINS c0/p0 c1/p0
    NET clk0 CLOCK PINS c0/p1
    END

Coordinates are DBU integers or decimals; pin offsets are cell-relative.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, TextIO

from ..layout.geometry import Point, Rect
from ..layout.netlist import Design
from ..layout.technology import Technology, make_ispd2015_like_technology

FORMAT_TAG = "DEFLITE"
FORMAT_VERSION = 1


class DefLiteError(ValueError):
    """Raised on malformed DEF-lite input."""


# --------------------------------------------------------------------------- write


def _fmt(x: float) -> str:
    """Compact numeric formatting: integers lose their decimal point."""
    return f"{int(x)}" if float(x).is_integer() else f"{x:g}"


def write_deflite(design: Design, path: str | Path) -> Path:
    """Serialise a design (placed or not) to DEF-lite text."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        _write(design, fh)
    return path


def dumps_deflite(design: Design) -> str:
    """DEF-lite text of a design as a string."""
    import io

    buf = io.StringIO()
    _write(design, buf)
    return buf.getvalue()


def _write(design: Design, fh: TextIO) -> None:
    fh.write(f"{FORMAT_TAG} {FORMAT_VERSION}\n")
    fh.write(f"DESIGN {design.name}\n")
    fh.write(f"UNITS {design.technology.dbu_per_micron}\n")
    d = design.die
    fh.write(
        f"DIEAREA {_fmt(d.xlo)} {_fmt(d.ylo)} {_fmt(d.xhi)} {_fmt(d.yhi)}\n"
    )
    for m in design.macros:
        blocks = " ".join(f"M{i}" for i in m.blocked_metal_indices)
        b = m.bbox
        fh.write(
            f"MACRO {m.name} {_fmt(b.xlo)} {_fmt(b.ylo)} "
            f"{_fmt(b.xhi)} {_fmt(b.yhi)} BLOCKS {blocks}\n"
        )
    for cell in design.cells:
        place = (
            f"PLACED {_fmt(cell.position.x)} {_fmt(cell.position.y)}"
            if cell.position is not None
            else "UNPLACED"
        )
        fixed = " FIXED" if cell.is_fixed else ""
        fh.write(f"CELL {cell.name} {_fmt(cell.width)} {_fmt(cell.height)} {place}{fixed}\n")
        for pin in cell.pins:
            clock = " CLOCK" if pin.is_clock else ""
            fh.write(
                f"  PIN {pin.name} {_fmt(pin.offset.x)} {_fmt(pin.offset.y)}{clock}\n"
            )
    for net in design.nets:
        attrs = ""
        if net.is_clock:
            attrs += " CLOCK"
        if net.ndr is not None:
            attrs += f" NDR {net.ndr}"
        pins = " ".join(f"{p.cell.name}/{p.name}" for p in net.pins)
        fh.write(f"NET {net.name}{attrs} PINS {pins}\n")
    fh.write("END\n")


# --------------------------------------------------------------------------- read


def read_deflite(
    path: str | Path, technology: Technology | None = None
) -> Design:
    """Parse a DEF-lite file back into a :class:`Design`."""
    with open(path) as fh:
        return _parse(fh.read().splitlines(), technology)


def loads_deflite(text: str, technology: Technology | None = None) -> Design:
    """Parse DEF-lite text."""
    return _parse(text.splitlines(), technology)


def _tokens(lines: list[str]) -> Iterator[tuple[int, list[str]]]:
    for lineno, raw in enumerate(lines, 1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield lineno, stripped.split()


def _parse(lines: list[str], technology: Technology | None) -> Design:
    tech = technology or make_ispd2015_like_technology()
    it = _tokens(lines)

    def fail(lineno: int, message: str) -> DefLiteError:
        return DefLiteError(f"line {lineno}: {message}")

    try:
        lineno, header = next(it)
    except StopIteration:
        raise DefLiteError("empty file")
    if header[:1] != [FORMAT_TAG] or len(header) < 2:
        raise fail(lineno, f"expected '{FORMAT_TAG} <version>' header")
    if int(header[1]) != FORMAT_VERSION:
        raise fail(lineno, f"unsupported version {header[1]}")

    design: Design | None = None
    die: Rect | None = None
    name: str | None = None
    current_cell = None
    pin_lookup: dict[str, object] = {}

    for lineno, tok in it:
        kind = tok[0]
        if kind == "DESIGN":
            name = tok[1]
        elif kind == "UNITS":
            pass  # informational; the technology defines DBU
        elif kind == "DIEAREA":
            if name is None:
                raise fail(lineno, "DIEAREA before DESIGN")
            die = Rect(*map(float, tok[1:5]))
            design = Design(name=name, technology=tech, die=die)
        elif kind == "MACRO":
            if design is None:
                raise fail(lineno, "MACRO before DIEAREA")
            bbox = Rect(*map(float, tok[2:6]))
            macro = design.add_macro(tok[1], bbox)
            if "BLOCKS" in tok:
                layer_names = tok[tok.index("BLOCKS") + 1 :]
                macro.blocked_metal_indices = tuple(
                    int(l[1:]) for l in layer_names
                )
        elif kind == "CELL":
            if design is None:
                raise fail(lineno, "CELL before DIEAREA")
            current_cell = design.add_cell(tok[1], float(tok[2]), float(tok[3]))
            if "PLACED" in tok:
                i = tok.index("PLACED")
                current_cell.position = Point(float(tok[i + 1]), float(tok[i + 2]))
            if "FIXED" in tok:
                current_cell.is_fixed = True
        elif kind == "PIN":
            if current_cell is None:
                raise fail(lineno, "PIN outside a CELL")
            pin = current_cell.add_pin(
                tok[1], Point(float(tok[2]), float(tok[3])), is_clock="CLOCK" in tok
            )
            pin_lookup[f"{current_cell.name}/{pin.name}"] = pin
        elif kind == "NET":
            if design is None:
                raise fail(lineno, "NET before DIEAREA")
            is_clock = "CLOCK" in tok
            ndr = None
            if "NDR" in tok:
                ndr = tok[tok.index("NDR") + 1]
            if "PINS" not in tok:
                raise fail(lineno, "NET without PINS")
            net = design.add_net(tok[1], ndr=ndr, is_clock=is_clock)
            for ref in tok[tok.index("PINS") + 1 :]:
                pin = pin_lookup.get(ref)
                if pin is None:
                    raise fail(lineno, f"unknown pin reference {ref!r}")
                net.connect(pin)  # type: ignore[arg-type]
        elif kind == "END":
            break
        else:
            raise fail(lineno, f"unknown record {kind!r}")

    if design is None:
        raise DefLiteError("missing DESIGN/DIEAREA records")
    design.validate()
    return design
