"""Serialization helpers for generated designs and flow artefacts.

Designs contain cyclic references (pin ↔ net) and are moderately large, so we
persist them with :mod:`pickle` at the highest protocol.  Flow artefacts that
are pure arrays (feature matrices, labels, congestion maps) are stored as
compressed ``.npz`` by :mod:`repro.features.dataset` instead.
"""

from __future__ import annotations

import pickle
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ..layout.netlist import Design

#: Bump when the on-disk layout of pickled artefacts changes.
FORMAT_VERSION = 1


@contextmanager
def _deep_recursion(limit: int = 100_000):
    """Pickling a netlist walks its connectivity graph depth-first (cell →
    pin → net → pin → cell → ...), which easily exceeds Python's default
    recursion limit on designs with thousands of connected objects."""
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, limit))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def save_design(design: Design, path: str | Path) -> Path:
    """Pickle a design (placed or not) to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": FORMAT_VERSION, "design": design}
    with _deep_recursion(), open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_design(path: str | Path) -> Design:
    """Load a design pickled by :func:`save_design`."""
    with _deep_recursion(), open(path, "rb") as fh:
        payload = pickle.load(fh)
    _check_version(payload, path)
    return payload["design"]


def save_artifact(obj: Any, path: str | Path) -> Path:
    """Pickle an arbitrary flow artefact (e.g. a FlowResult)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": FORMAT_VERSION, "artifact": obj}
    with _deep_recursion(), open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_artifact(path: str | Path) -> Any:
    """Load an artefact pickled by :func:`save_artifact`."""
    with _deep_recursion(), open(path, "rb") as fh:
        payload = pickle.load(fh)
    _check_version(payload, path)
    return payload["artifact"]


def _check_version(payload: Any, path: str | Path) -> None:
    if not isinstance(payload, dict) or "version" not in payload:
        raise ValueError(f"{path}: not a repro artefact")
    if payload["version"] != FORMAT_VERSION:
        raise ValueError(
            f"{path}: artefact format {payload['version']} != {FORMAT_VERSION}; "
            "regenerate with the current code"
        )
