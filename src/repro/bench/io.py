"""Serialization helpers for generated designs and flow artefacts.

Designs contain cyclic references (pin ↔ net) and are moderately large, so we
persist them with :mod:`pickle` at the highest protocol.  Flow artefacts that
are pure arrays (feature matrices, labels, congestion maps) are stored as
compressed ``.npz`` by :mod:`repro.features.dataset` instead.

Writes are atomic (temp file + ``os.replace``) and loads raise a single
typed :class:`~repro.runtime.errors.CacheCorruptionError` — instead of bare
``EOFError``/``KeyError``/``UnpicklingError`` — on truncated, non-artefact,
or version-mismatched payloads, so callers can uniformly invalidate and
regenerate.
"""

from __future__ import annotations

import io
import os
import pickle
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any

from ..layout.netlist import Design
from ..runtime.errors import CacheCorruptionError

#: Bump when the on-disk layout of pickled artefacts changes.
FORMAT_VERSION = 1


@contextmanager
def _deep_recursion(limit: int = 100_000):
    """Pickling a netlist walks its connectivity graph depth-first (cell →
    pin → net → pin → cell → ...), which easily exceeds Python's default
    recursion limit on designs with thousands of connected objects."""
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, limit))
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def _atomic_dump(payload: dict, path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.BytesIO()
    with _deep_recursion():
        pickle.dump(payload, buf, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    try:
        tmp.write_bytes(buf.getvalue())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_payload(path: Path) -> dict:
    try:
        with _deep_recursion(), open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (EOFError, pickle.UnpicklingError, AttributeError, IndexError) as exc:
        raise CacheCorruptionError(
            f"{path}: truncated or corrupted pickle artefact ({exc})"
        ) from exc
    _check_version(payload, path)
    return payload


def save_design(design: Design, path: str | Path) -> Path:
    """Pickle a design (placed or not) to ``path``; returns the path."""
    path = Path(path)
    _atomic_dump({"version": FORMAT_VERSION, "design": design}, path)
    return path


def load_design(path: str | Path) -> Design:
    """Load a design pickled by :func:`save_design`."""
    payload = _load_payload(Path(path))
    if "design" not in payload:
        raise CacheCorruptionError(f"{path}: artefact holds no design")
    return payload["design"]


def save_artifact(obj: Any, path: str | Path) -> Path:
    """Pickle an arbitrary flow artefact (e.g. a FlowResult)."""
    path = Path(path)
    _atomic_dump({"version": FORMAT_VERSION, "artifact": obj}, path)
    return path


def load_artifact(path: str | Path) -> Any:
    """Load an artefact pickled by :func:`save_artifact`."""
    payload = _load_payload(Path(path))
    if "artifact" not in payload:
        raise CacheCorruptionError(f"{path}: artefact payload missing")
    return payload["artifact"]


def _check_version(payload: Any, path: str | Path) -> None:
    if not isinstance(payload, dict) or "version" not in payload:
        raise CacheCorruptionError(f"{path}: not a repro artefact")
    if payload["version"] != FORMAT_VERSION:
        raise CacheCorruptionError(
            f"{path}: artefact format {payload['version']} != {FORMAT_VERSION}; "
            "regenerate with the current code"
        )
