"""Synthetic design generator — the stand-in for the ISPD 2015 benchmarks.

The paper's dataset is 14 physical designs (65 nm, five routing layers)
pushed through placement, global routing, detailed routing and DRC.  We have
no access to the benchmark .def files or to a commercial router, so this
module *synthesises* designs whose netlist statistics mirror the published
Table I rows at a reduced scale, and the rest of the flow (place, route,
DRC simulation) produces the labels mechanistically.

What makes the synthesis realistic enough for the learning task:

* **Locality.**  Cells are assigned to a spatial cluster hierarchy and nets
  preferentially connect cells of the same cluster (a Rent's-rule-style
  construction).  After placement this yields the non-uniform pin/cell
  density and congestion structure the paper's features measure.
* **Hot modules.**  A few clusters are marked *dense*: they get higher pin
  counts and more multi-pin nets, seeding realistic congestion hotspots.
* **Special nets.**  A configurable fraction of nets carry non-default rules
  (wider wires → more track consumption), and a few high-fanout clock nets
  mark their sinks as clock pins — both paper features.
* **Macros and blockages.**  Fixed macro blocks with routing blockage over
  M1..M4, as in the ISPD-2015 designs with fence regions.

Everything is driven by a :class:`DesignRecipe` and a seed, so the whole
14-design suite is reproducible bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..layout.geometry import Point, Rect
from ..layout.netlist import Design
from ..layout.technology import Technology, make_ispd2015_like_technology


@dataclass(frozen=True)
class DesignRecipe:
    """Parameters controlling one synthetic design.

    The defaults produce a mid-size, moderately congested design; the suite
    module overrides them per named design to mirror Table I.
    """

    name: str
    grid_nx: int = 24
    grid_ny: int = 24
    #: target fraction of placeable area covered by standard cells
    utilization: float = 0.65
    #: number of fixed macro blocks
    num_macros: int = 0
    #: total macro area as a fraction of the die
    macro_area_frac: float = 0.0
    #: mean signal-net degree (2-pin nets dominate; tail is geometric)
    mean_net_degree: float = 2.8
    #: ratio of nets to cells (pins-per-cell follows from this and degree)
    nets_per_cell: float = 0.48
    #: probability that a net stays inside its cluster (locality knob)
    cluster_locality: float = 0.82
    #: edge length of a leaf cluster in g-cells (sets typical net span)
    cluster_size_gcells: int = 3
    #: fraction of clusters marked dense / congestion-prone
    dense_cluster_frac: float = 0.2
    #: multiplier on net count inside dense clusters
    dense_net_boost: float = 1.9
    #: fraction of signal nets carrying a non-default rule
    ndr_frac: float = 0.03
    #: number of high-fanout clock nets
    num_clock_nets: int = 2
    #: sinks per clock net
    clock_fanout: int = 40
    #: RNG seed; the suite gives every design a distinct fixed seed
    seed: int = 0

    def die(self, technology: Technology) -> Rect:
        g = technology.gcell_size
        return Rect(0.0, 0.0, self.grid_nx * g, self.grid_ny * g)


@dataclass
class _Cluster:
    """A leaf of the spatial hierarchy: a region plus its member cells."""

    index: int
    region: Rect
    dense: bool
    cell_ids: list[int] = field(default_factory=list)


class DesignGenerator:
    """Generates a :class:`~repro.layout.netlist.Design` from a recipe."""

    def __init__(self, recipe: DesignRecipe, technology: Technology | None = None):
        self.recipe = recipe
        self.technology = technology or make_ispd2015_like_technology()
        self.rng = np.random.default_rng(recipe.seed)

    # -- public API -------------------------------------------------------------

    def generate(self) -> Design:
        """Build the full unplaced design (cells, macros, nets, blockages)."""
        recipe = self.recipe
        design = Design(
            name=recipe.name,
            technology=self.technology,
            die=recipe.die(self.technology),
        )
        self._add_macros(design)
        clusters = self._build_clusters(design)
        self._add_cells(design, clusters)
        self._add_signal_nets(design, clusters)
        self._add_clock_nets(design)
        design.validate()
        return design

    # -- macros -------------------------------------------------------------------

    def _add_macros(self, design: Design) -> None:
        recipe = self.recipe
        if recipe.num_macros == 0 or recipe.macro_area_frac <= 0.0:
            return
        die = design.die
        g = self.technology.gcell_size
        per_macro_area = recipe.macro_area_frac * die.area / recipe.num_macros
        side = math.sqrt(per_macro_area)
        # Snap macro dimensions to whole g-cells so blockage features are crisp.
        w = max(g, round(side / g) * g)
        h = max(g, round(per_macro_area / w / g) * g)
        placed: list[Rect] = []
        attempts = 0
        while len(placed) < recipe.num_macros and attempts < 200:
            attempts += 1
            max_ix = int((die.width - w) / g)
            max_iy = int((die.height - h) / g)
            if max_ix < 0 or max_iy < 0:
                break
            x = die.xlo + int(self.rng.integers(0, max_ix + 1)) * g
            y = die.ylo + int(self.rng.integers(0, max_iy + 1)) * g
            bbox = Rect(x, y, x + w, y + h)
            # keep macros disjoint with one g-cell of clearance between them
            if any(bbox.expanded(g).overlaps(p) for p in placed):
                continue
            placed.append(bbox)
            design.add_macro(f"macro_{len(placed)}", bbox)

    # -- clusters --------------------------------------------------------------------

    def _build_clusters(self, design: Design) -> list[_Cluster]:
        recipe = self.recipe
        nx = max(2, recipe.grid_nx // recipe.cluster_size_gcells)
        ny = max(2, recipe.grid_ny // recipe.cluster_size_gcells)
        self._cluster_dims = (nx, ny)
        die = design.die
        cw, ch = die.width / nx, die.height / ny
        clusters: list[_Cluster] = []
        num_dense = max(1, round(nx * ny * recipe.dense_cluster_frac))
        dense_ids = set(
            self.rng.choice(
                nx * ny, size=min(num_dense, nx * ny), replace=False
            ).tolist()
        )
        for iy in range(ny):
            for ix in range(nx):
                idx = iy * nx + ix
                region = Rect(
                    die.xlo + ix * cw,
                    die.ylo + iy * ch,
                    die.xlo + (ix + 1) * cw,
                    die.ylo + (iy + 1) * ch,
                )
                clusters.append(_Cluster(idx, region, dense=idx in dense_ids))
        return clusters

    def _cluster_weight(self, cluster: _Cluster, macro_rects: list[Rect]) -> float:
        """Capacity weight of a cluster for cell assignment.

        Regions covered by macros cannot hold cells, so their clusters get
        proportionally fewer of them.
        """
        free = cluster.region.area
        for m in macro_rects:
            free -= cluster.region.overlap_area(m)
        return max(free, 0.0)

    # -- cells ------------------------------------------------------------------------

    def _add_cells(self, design: Design, clusters: list[_Cluster]) -> None:
        recipe = self.recipe
        tech = self.technology
        die = design.die
        macro_rects = [m.bbox for m in design.macros]
        macro_area = sum(
            r.overlap_area(die) for r in macro_rects
        )
        placeable = die.area - macro_area
        # Cell widths in sites: a small library of 1x/2x/3x/4x footprints
        # with a realistic frequency skew toward small cells.
        site = tech.site_width
        widths = np.array([4, 6, 8, 12, 16]) * site
        width_probs = np.array([0.3, 0.3, 0.2, 0.12, 0.08])
        mean_cell_area = float(np.dot(widths, width_probs)) * tech.row_height
        num_cells = max(8, int(recipe.utilization * placeable / mean_cell_area))

        weights = np.array([self._cluster_weight(c, macro_rects) for c in clusters])
        if weights.sum() <= 0:
            raise ValueError(f"design {recipe.name}: no placeable area")
        # Dense clusters attract disproportionally many cells.
        for i, c in enumerate(clusters):
            if c.dense:
                weights[i] *= 1.5
        weights = weights / weights.sum()
        assignment = self.rng.choice(len(clusters), size=num_cells, p=weights)
        chosen_widths = self.rng.choice(widths, size=num_cells, p=width_probs)

        for cid in range(num_cells):
            cluster = clusters[int(assignment[cid])]
            width = float(chosen_widths[cid])
            cell = design.add_cell(f"c{cid}", width, tech.row_height)
            cluster.cell_ids.append(cid)
            n_pins = 2 + int(self.rng.geometric(0.55))
            n_pins = min(n_pins, 6)
            for p in range(n_pins):
                off = Point(
                    float(self.rng.uniform(0.1, 0.9)) * width,
                    float(self.rng.uniform(0.1, 0.9)) * tech.row_height,
                )
                cell.add_pin(f"p{p}", off)

    # -- nets ---------------------------------------------------------------------------

    def _free_pins_by_cell(self, design: Design) -> list[list[int]]:
        """Indices of not-yet-connected pins, per cell."""
        return [
            [i for i, pin in enumerate(cell.pins) if pin.net is None]
            for cell in design.cells
        ]

    def _add_signal_nets(self, design: Design, clusters: list[_Cluster]) -> None:
        recipe = self.recipe
        rng = self.rng
        free = self._free_pins_by_cell(design)
        cells_with_free = [i for i, f in enumerate(free) if f]

        cluster_of_cell = np.empty(design.num_cells, dtype=np.int64)
        for cluster in clusters:
            for cid in cluster.cell_ids:
                cluster_of_cell[cid] = cluster.index

        def pick_cell(pool: list[int]) -> int | None:
            candidates = [c for c in pool if free[c]]
            if not candidates:
                return None
            return int(rng.choice(candidates))

        target_nets = int(design.num_cells * recipe.nets_per_cell)
        net_id = 0
        budget = target_nets * 4  # generation attempts, to guarantee termination
        while net_id < target_nets and budget > 0:
            budget -= 1
            cells_with_free = [i for i in cells_with_free if free[i]]
            if len(cells_with_free) < 2:
                break
            root = int(rng.choice(cells_with_free))
            cluster = clusters[int(cluster_of_cell[root])]
            boost = recipe.dense_net_boost if cluster.dense else 1.0
            # Net degree: 2 + geometric tail, boosted in dense clusters.
            degree = 2 + int(rng.geometric(min(0.95, 1.0 / (recipe.mean_net_degree - 1.0) / boost)) - 1)
            degree = min(degree, 9)

            members = [root]
            for _ in range(degree - 1):
                local = rng.random() < recipe.cluster_locality
                if local:
                    pool = cluster.cell_ids
                else:
                    # Non-local connections follow a distance-decaying
                    # preference over clusters (multi-scale Rent locality):
                    # mostly adjacent clusters, occasionally truly global.
                    # Without this, big dies drown in cross-die nets.
                    pool = clusters[self._pick_nearby_cluster(cluster)].cell_ids
                pick = pick_cell([c for c in pool if c not in members])
                if pick is None:
                    pick = pick_cell([c for c in cells_with_free if c not in members])
                if pick is None:
                    break
                members.append(pick)
            if len(members) < 2:
                continue

            ndr = None
            if rng.random() < recipe.ndr_frac:
                ndr = design.technology.ndr_rules[0].name
            net = design.add_net(f"n{net_id}", ndr=ndr)
            for cid in members:
                pin_idx = free[cid].pop(int(rng.integers(0, len(free[cid]))))
                net.connect(design.cells[cid].pins[pin_idx])
            net_id += 1

    def _pick_nearby_cluster(self, cluster: _Cluster) -> int:
        """A cluster index at geometric-decaying Chebyshev distance.

        Distance 1 (the 8 neighbours) with probability ~0.72, distance 2
        with ~0.2, and so on; clipped to the cluster grid.
        """
        nx, ny = self._cluster_dims
        cx, cy = cluster.index % nx, cluster.index // nx
        radius = int(self.rng.geometric(0.72))
        dx = int(self.rng.integers(-radius, radius + 1))
        dy = int(self.rng.integers(-radius, radius + 1))
        tx = min(max(cx + dx, 0), nx - 1)
        ty = min(max(cy + dy, 0), ny - 1)
        return ty * nx + tx

    def _add_clock_nets(self, design: Design) -> None:
        recipe = self.recipe
        rng = self.rng
        free = self._free_pins_by_cell(design)
        for k in range(recipe.num_clock_nets):
            candidates = [i for i, f in enumerate(free) if f]
            if len(candidates) < 2:
                break
            fanout = min(recipe.clock_fanout, len(candidates))
            members = rng.choice(candidates, size=fanout, replace=False)
            net = design.add_net(f"clk{k}", is_clock=True)
            for cid in members.tolist():
                pin_idx = free[cid].pop(int(rng.integers(0, len(free[cid]))))
                net.connect(design.cells[cid].pins[pin_idx])


def generate_design(
    recipe: DesignRecipe, technology: Technology | None = None
) -> Design:
    """Convenience wrapper: build the design for ``recipe``."""
    return DesignGenerator(recipe, technology).generate()
