"""Placement substrate: force-directed global placement and row legalisation."""

from .legalizer import LegalizationError, legalize
from .placer import ForceDirectedPlacer, PlacerConfig, place_design

__all__ = [
    "LegalizationError",
    "legalize",
    "ForceDirectedPlacer",
    "PlacerConfig",
    "place_design",
]
