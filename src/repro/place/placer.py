"""Force-directed global placement.

Stand-in for Eh?Placer in the paper's flow.  The goal is not to compete with
a production placer but to produce *realistic placed designs*: connected
cells end up near each other (recovering the generator's cluster structure
from the netlist alone), density is non-uniform but bounded, and macros are
kept clear.  Downstream, this yields the pin/cell-density and congestion
distributions the paper's features are built on.

Algorithm (classic Eisenmann/Johannes-style simplified loop):

1. spectral initialisation: cells are embedded with the two Fiedler
   eigenvectors of the netlist's graph Laplacian (star net model) and
   rank-spread over the die — this recovers the global cluster structure
   that local force iterations alone cannot untangle;
2. repeat ``iterations`` times:
   a. *wirelength force* — every cell is pulled toward the centroid of every
      net it belongs to (star net model, vectorised with scatter-adds);
   b. *density force* — cell area is binned on the g-cell grid; cells in
      over-full bins are pushed down the local density gradient;
   c. *macro force* — cells inside a macro (plus a small halo) are pushed
      out toward the nearest macro edge;
3. row legalisation (:mod:`repro.place.legalizer`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.geometry import Point
from ..layout.netlist import Design
from .legalizer import legalize


@dataclass(frozen=True)
class PlacerConfig:
    """Knobs of the global placement loop."""

    iterations: int = 100
    #: pull strength toward net centroids per iteration (0..1)
    wirelength_step: float = 0.45
    #: push strength away from over-dense bins per iteration
    density_step: float = 0.35
    #: density (cell area / bin area) above which spreading kicks in
    target_density: float = 0.8
    #: halo width around macros that cells are pushed out of, in g-cells
    macro_halo_gcells: float = 0.25
    seed: int = 7


class ForceDirectedPlacer:
    """Places all movable cells of a design in-place."""

    def __init__(self, design: Design, config: PlacerConfig | None = None):
        self.design = design
        self.config = config or PlacerConfig()
        self.rng = np.random.default_rng(self.config.seed)

    # -- public API ---------------------------------------------------------------

    def place(self) -> None:
        """Run global placement followed by legalisation."""
        design = self.design
        movable = [c for c in design.cells if not c.is_fixed]
        if not movable:
            return
        cell_index = {id(c): i for i, c in enumerate(movable)}
        nets = self._net_membership(cell_index)
        pos = self._spectral_positions(len(movable), nets)
        areas = np.array([c.area for c in movable])

        for _ in range(self.config.iterations):
            pos += self.config.wirelength_step * self._wirelength_force(pos, nets)
            pos += self.config.density_step * self._density_force(pos, areas)
            pos = self._push_out_of_macros(pos)
            self._clamp(pos)

        for cell, (x, y) in zip(movable, pos):
            # store as lower-left corner; forces worked on centres
            cell.position = Point(x - cell.width / 2.0, y - cell.height / 2.0)
        legalize(design)

    # -- pieces of the loop ----------------------------------------------------------

    def _initial_positions(self, n: int) -> np.ndarray:
        die = self.design.die
        margin = self.design.technology.row_height
        xs = self.rng.uniform(die.xlo + margin, die.xhi - margin, size=n)
        ys = self.rng.uniform(die.ylo + margin, die.yhi - margin, size=n)
        return np.column_stack([xs, ys])

    def _spectral_positions(
        self, n: int, nets: tuple[np.ndarray, np.ndarray, int]
    ) -> np.ndarray:
        """Embed cells with the netlist Laplacian's Fiedler vectors.

        Each net contributes star edges (every member to the net's virtual
        centre folds into member-member weights 1/deg).  The 2nd and 3rd
        smallest eigenvectors give a planar embedding that separates the
        netlist's natural clusters; rank-spreading each axis to a uniform
        distribution fills the die evenly.  Falls back to random positions
        for tiny or degenerate netlists.
        """
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import laplacian
        from scipy.sparse.linalg import eigsh

        cell_ids, net_ids, net_count = nets
        if n < 16 or net_count == 0:
            return self._initial_positions(n)

        # star-model weights: members of a k-pin net get pairwise weight 1/k
        # via the net-expanded bipartite trick (cheap: one edge per pin pair
        # with a common net, approximated by consecutive-member chaining)
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        order = np.argsort(net_ids, kind="stable")
        sorted_nets = net_ids[order]
        sorted_cells = cell_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_nets)) + 1
        for members in np.split(sorted_cells, boundaries):
            if len(members) < 2:
                continue
            # chain + wrap: connects the net with O(k) edges
            rows.append(members)
            cols.append(np.roll(members, 1))
        if not rows:
            return self._initial_positions(n)
        r = np.concatenate(rows)
        c = np.concatenate(cols)
        w = np.ones(len(r))
        # weak ring over all cells: keeps the graph connected (sparse
        # netlists often have isolated components, which makes the Fiedler
        # eigenproblem degenerate and shift-invert Lanczos painfully slow)
        ring = np.arange(n)
        r = np.concatenate([r, ring])
        c = np.concatenate([c, np.roll(ring, 1)])
        w = np.concatenate([w, np.full(n, 0.01)])
        adj = coo_matrix((w, (r, c)), shape=(n, n))
        adj = (adj + adj.T).tocsr()
        lap = laplacian(adj, normed=True)
        try:
            # deterministic Lanczos start: ARPACK otherwise pulls its v0
            # from numpy's *global* RNG, making placement depend on process
            # history
            v0 = self.rng.normal(size=n)
            _, vecs = eigsh(lap, k=3, sigma=-0.05, which="LM", tol=1e-3, v0=v0)
        except Exception:
            return self._initial_positions(n)
        emb = vecs[:, 1:3]

        die = self.design.die
        margin = self.design.technology.row_height
        pos = np.empty((n, 2))
        for axis, (lo, hi) in enumerate(
            [(die.xlo + margin, die.xhi - margin), (die.ylo + margin, die.yhi - margin)]
        ):
            ranks = np.argsort(np.argsort(emb[:, axis], kind="stable"))
            pos[:, axis] = lo + (ranks + 0.5) / n * (hi - lo)
        # tiny jitter so exactly-equal embeddings don't stack
        pos += self.rng.normal(scale=0.1 * margin, size=pos.shape)
        return pos

    def _net_membership(
        self, cell_index: dict[int, int]
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Flattened (cell_id, net_id) incidence arrays for scatter ops."""
        cell_ids: list[int] = []
        net_ids: list[int] = []
        net_count = 0
        for net in self.design.nets:
            members = {
                cell_index[id(pin.cell)]
                for pin in net.pins
                if id(pin.cell) in cell_index
            }
            if len(members) < 2:
                continue
            for m in members:
                cell_ids.append(m)
                net_ids.append(net_count)
            net_count += 1
        return (
            np.asarray(cell_ids, dtype=np.int64),
            np.asarray(net_ids, dtype=np.int64),
            net_count,
        )

    def _wirelength_force(
        self, pos: np.ndarray, nets: tuple[np.ndarray, np.ndarray, int]
    ) -> np.ndarray:
        cell_ids, net_ids, net_count = nets
        if net_count == 0:
            return np.zeros_like(pos)
        sums = np.zeros((net_count, 2))
        counts = np.zeros(net_count)
        np.add.at(sums, net_ids, pos[cell_ids])
        np.add.at(counts, net_ids, 1.0)
        centroids = sums / counts[:, None]

        pull = np.zeros_like(pos)
        degree = np.zeros(len(pos))
        np.add.at(pull, cell_ids, centroids[net_ids] - pos[cell_ids])
        np.add.at(degree, cell_ids, 1.0)
        degree[degree == 0] = 1.0
        return pull / degree[:, None]

    def _density_force(self, pos: np.ndarray, areas: np.ndarray) -> np.ndarray:
        die = self.design.die
        g = self.design.technology.gcell_size
        nx = max(1, int(round(die.width / g)))
        ny = max(1, int(round(die.height / g)))
        ix = np.clip(((pos[:, 0] - die.xlo) / g).astype(int), 0, nx - 1)
        iy = np.clip(((pos[:, 1] - die.ylo) / g).astype(int), 0, ny - 1)

        density = np.zeros((nx, ny))
        np.add.at(density, (ix, iy), areas)
        density /= g * g

        overflow = np.maximum(density - self.config.target_density, 0.0)
        # Push down the overflow gradient: central differences with edge padding.
        padded = np.pad(overflow, 1, mode="edge")
        gx = (padded[2:, 1:-1] - padded[:-2, 1:-1]) / 2.0
        gy = (padded[1:-1, 2:] - padded[1:-1, :-2]) / 2.0

        force = np.zeros_like(pos)
        force[:, 0] = -gx[ix, iy] * g
        force[:, 1] = -gy[ix, iy] * g
        # Tiny jitter breaks ties in completely flat over-dense plateaus.
        force += self.rng.normal(scale=0.02 * g, size=pos.shape) * (
            overflow[ix, iy] > 0
        )[:, None]
        return force

    def _push_out_of_macros(self, pos: np.ndarray) -> np.ndarray:
        halo = self.config.macro_halo_gcells * self.design.technology.gcell_size
        for rect in self.design.placement_blockage_rects():
            r = rect.expanded(halo)
            inside = (
                (pos[:, 0] > r.xlo)
                & (pos[:, 0] < r.xhi)
                & (pos[:, 1] > r.ylo)
                & (pos[:, 1] < r.yhi)
            )
            if not inside.any():
                continue
            sub = pos[inside]
            # distance to each edge; move each point out through the nearest
            d_left = sub[:, 0] - r.xlo
            d_right = r.xhi - sub[:, 0]
            d_bot = sub[:, 1] - r.ylo
            d_top = r.yhi - sub[:, 1]
            dists = np.column_stack([d_left, d_right, d_bot, d_top])
            nearest = np.argmin(dists, axis=1)
            sub[nearest == 0, 0] = r.xlo - 1.0
            sub[nearest == 1, 0] = r.xhi + 1.0
            sub[nearest == 2, 1] = r.ylo - 1.0
            sub[nearest == 3, 1] = r.yhi + 1.0
            pos[inside] = sub
        return pos

    def _clamp(self, pos: np.ndarray) -> None:
        die = self.design.die
        margin = self.design.technology.row_height / 2.0
        np.clip(pos[:, 0], die.xlo + margin, die.xhi - margin, out=pos[:, 0])
        np.clip(pos[:, 1], die.ylo + margin, die.yhi - margin, out=pos[:, 1])


def place_design(design: Design, config: PlacerConfig | None = None) -> None:
    """Place ``design`` in place (global placement + legalisation)."""
    ForceDirectedPlacer(design, config).place()
