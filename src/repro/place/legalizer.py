"""Tetris-style row legalisation.

Takes the (possibly overlapping) global-placement result and snaps every
movable cell onto a placement row and site grid such that:

* no two cells overlap,
* no cell overlaps a macro or placement blockage,
* every cell stays inside the die,
* total displacement from the global-placement position is kept small.

The algorithm is the classic Tetris/abacus-lite greedy: cells are processed
in order of their desired x coordinate; each cell tries a window of rows
around its desired row and takes the feasible spot with the smallest
displacement cost.  Rows are split into free *segments* between blockages,
each with a fill cursor that only moves rightward.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..layout.geometry import Point, Rect
from ..layout.netlist import Design


@dataclass
class _Segment:
    """A free interval of one placement row."""

    xlo: float
    xhi: float
    cursor: float = field(init=False)

    def __post_init__(self) -> None:
        self.cursor = self.xlo

    def free_width(self) -> float:
        return self.xhi - self.cursor

    def try_place(
        self, desired_x: float, width: float, max_gap: float
    ) -> float | None:
        """Feasible x for a cell of ``width`` near ``desired_x``, else None.

        The cursor discipline means cells already placed in this segment
        occupy [xlo, cursor); a new cell may go anywhere in [cursor, xhi-w].
        Because cells are processed in increasing desired x, any gap left
        behind the cursor is lost forever — so the gap is capped at
        ``max_gap`` to keep the packing near-optimal at high utilisation.
        """
        if self.free_width() < width:
            return None
        x = min(max(desired_x, self.cursor), self.xhi - width)
        x = min(x, self.cursor + max_gap)
        return x

    def commit(self, x: float, width: float) -> None:
        if x < self.cursor - 1e-9 or x + width > self.xhi + 1e-9:
            raise ValueError("segment commit outside free range")
        self.cursor = x + width


@dataclass
class _Row:
    y: float
    segments: list[_Segment]


def _build_rows(design: Design) -> list[_Row]:
    tech = design.technology
    die = design.die
    blockages = design.placement_blockage_rects()
    rows: list[_Row] = []
    y = die.ylo
    while y + tech.row_height <= die.yhi + 1e-9:
        row_rect = Rect(die.xlo, y, die.xhi, y + tech.row_height)
        # carve the row into free segments around blockages
        cuts: list[tuple[float, float]] = []
        for b in blockages:
            inter = row_rect.intersection(b)
            if inter is not None and inter.width > 0:
                cuts.append((inter.xlo, inter.xhi))
        cuts.sort()
        segments: list[_Segment] = []
        x = die.xlo
        for cxlo, cxhi in cuts:
            if cxlo > x:
                segments.append(_Segment(x, cxlo))
            x = max(x, cxhi)
        if x < die.xhi:
            segments.append(_Segment(x, die.xhi))
        rows.append(_Row(y=y, segments=segments))
        y += tech.row_height
    return rows


class LegalizationError(RuntimeError):
    """Raised when a cell cannot be placed anywhere (utilisation too high)."""


def legalize(design: Design) -> float:
    """Legalise all movable cells in place; returns total displacement.

    Cells must already have (global-placement) positions.  Fixed cells are
    left untouched and are *not* modelled as obstacles — the generator only
    creates fixed macros, which are.
    """
    tech = design.technology
    rows = _build_rows(design)
    if not rows:
        raise LegalizationError("die shorter than one row")

    movable = [c for c in design.cells if not c.is_fixed]
    for cell in movable:
        if cell.position is None:
            raise ValueError(f"cell {cell.name} not globally placed")
    movable.sort(key=lambda c: c.position.x)  # type: ignore[union-attr]

    total_disp = 0.0
    n_rows = len(rows)
    max_gap = 1.0 * tech.site_width
    for cell in movable:
        desired = cell.position
        assert desired is not None
        desired_row = int(round((desired.y - design.die.ylo) / tech.row_height))
        desired_row = min(max(desired_row, 0), n_rows - 1)

        placed = False
        # widening row search: 0, ±1, ±2, ... until a feasible spot is found
        for radius in range(n_rows):
            candidates = {desired_row - radius, desired_row + radius}
            best: tuple[float, _Segment, float, float] | None = None
            for r in candidates:
                if not 0 <= r < n_rows:
                    continue
                row = rows[r]
                for seg in row.segments:
                    x = seg.try_place(desired.x, cell.width, max_gap)
                    if x is None:
                        continue
                    cost = abs(x - desired.x) + abs(row.y - desired.y)
                    if best is None or cost < best[0]:
                        best = (cost, seg, x, row.y)
            if best is not None:
                cost, seg, x, row_y = best
                x = _snap_to_site(x, seg, cell.width, tech.site_width, design.die.xlo)
                seg.commit(x, cell.width)
                cell.position = Point(x, row_y)
                total_disp += cost
                placed = True
                break
        if not placed:
            raise LegalizationError(
                f"no legal position for cell {cell.name} "
                f"(width {cell.width}); utilisation too high"
            )
    return total_disp


def _snap_to_site(
    x: float, seg: _Segment, width: float, site: float, origin: float
) -> float:
    """Snap x onto the site grid without leaving the segment's free range."""
    snapped = origin + round((x - origin) / site) * site
    if snapped < seg.cursor:
        snapped += site
    if snapped + width > seg.xhi:
        snapped -= site
    if snapped < seg.cursor - 1e-9 or snapped + width > seg.xhi + 1e-9:
        # site grid too coarse for this gap; fall back to the unsnapped spot
        return x
    return snapped
