"""The paper's core workflow: flow pipeline, experiment protocol, explanations."""

from .evaluation import format_table2, summarize_shape
from .experiment import DesignScore, ExperimentResult, ModelRunStats, run_experiment
from .explain import (
    HotspotExplanationReport,
    explain_hotspots,
    explanation_layers_mentioned,
    train_explanation_forest,
)
from .models import ModelSpec, model_zoo, rf_spec
from .pipeline import FlowResult, build_suite_dataset, default_cache_path, run_flow

__all__ = [
    "format_table2",
    "summarize_shape",
    "DesignScore",
    "ExperimentResult",
    "ModelRunStats",
    "run_experiment",
    "HotspotExplanationReport",
    "explain_hotspots",
    "explanation_layers_mentioned",
    "train_explanation_forest",
    "ModelSpec",
    "model_zoo",
    "rf_spec",
    "FlowResult",
    "build_suite_dataset",
    "default_cache_path",
    "run_flow",
]
