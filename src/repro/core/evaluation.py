"""Table II assembly and rendering.

Formats an :class:`~repro.core.experiment.ExperimentResult` as the paper's
Table II: one row per design with (TPR*, Prec*, A_prc) per model, winners
bolded (marked ``*`` in text), followed by averages, winning-design counts
and the complexity/cost rows.
"""

from __future__ import annotations

from .experiment import ExperimentResult


def _fmt(v: float | None, best: bool) -> str:
    if v is None:
        return "   --   "
    s = f"{v:.4f}"
    return f"{s}*" if best else f"{s} "


def format_table2(result: ExperimentResult) -> str:
    """Render the Table II analogue as fixed-width text."""
    models = result.model_order
    header1 = f"{'Design':<12s}"
    header2 = f"{'':<12s}"
    for m in models:
        header1 += f"| {m:^26s} "
        header2 += f"| {'TPR*':>8s} {'Prec*':>8s} {'Aprc':>8s} "
    lines = [header1, header2, "-" * len(header2)]

    for design in result.design_order:
        per_model = {m: result.score_of(design, m) for m in models}
        row = f"{design:<12s}"
        bests = {}
        for attr in ("tpr_star", "prec_star", "a_prc"):
            vals = [getattr(r, attr) for r in per_model.values() if r is not None]
            bests[attr] = max(vals) if vals else None
        for m in models:
            r = per_model[m]
            cells = []
            for attr in ("tpr_star", "prec_star", "a_prc"):
                if r is None:
                    cells.append(_fmt(None, False))
                else:
                    v = getattr(r, attr)
                    cells.append(_fmt(v, bests[attr] is not None and v >= bests[attr] - 1e-12))
            row += "| " + " ".join(cells) + " "
        lines.append(row)

    lines.append("-" * len(header2))
    row = f"{'Average':<12s}"
    avg = {m: result.averages(m) for m in models}
    bests = [max(avg[m][k] for m in models) for k in range(3)]
    for m in models:
        cells = [
            _fmt(avg[m][k], avg[m][k] >= bests[k] - 1e-12) for k in range(3)
        ]
        row += "| " + " ".join(cells) + " "
    lines.append(row)

    row = f"{'# Win. des.':<12s}"
    for m in models:
        w = result.winning_designs(m)
        row += f"| {w[0]:>8d} {w[1]:>8d} {w[2]:>8d}  "
    lines.append(row)

    stats = {s.model: s for s in result.run_stats}
    for label, getter in [
        ("# Param (k)", lambda s: f"{s.num_parameters / 1000.0:.1f}"),
        ("# Pred op(k)", lambda s: f"{s.prediction_ops / 1000.0:.1f}"),
        ("Train (min)", lambda s: f"{s.train_minutes:.2f}"),
        ("Pred (min)", lambda s: f"{s.predict_minutes_per_design:.4f}"),
    ]:
        row = f"{label:<12s}"
        for m in models:
            row += f"| {getter(stats[m]):>26s}  "
        lines.append(row)
    return "\n".join(lines)


def summarize_shape(result: ExperimentResult) -> dict[str, object]:
    """Machine-checkable qualitative claims of the paper's Sec. IV-A.

    Returns a dict the benchmark asserts on:

    * ``rf_best_average_aprc`` — RF has the best mean A_prc;
    * ``rf_most_wins_aprc`` — RF wins the most designs on A_prc;
    * ``svm_most_prediction_ops`` — SVM needs the most ops per prediction;
    * ``svm_slowest_training`` — SVM has the longest training time;
    * ``rf_vs_svm_aprc_gain`` — relative A_prc gain of RF over SVM-RBF.
    """
    models = result.model_order
    avg_aprc = {m: result.averages(m)[2] for m in models}
    wins_aprc = {m: result.winning_designs(m)[2] for m in models}
    stats = {s.model: s for s in result.run_stats}
    rf = "RF"
    svm = "SVM-RBF"
    out: dict[str, object] = {
        "avg_aprc": avg_aprc,
        "wins_aprc": wins_aprc,
        "rf_best_average_aprc": max(avg_aprc, key=avg_aprc.get) == rf,
        "rf_most_wins_aprc": max(wins_aprc, key=wins_aprc.get) == rf,
        "svm_most_prediction_ops": max(
            stats, key=lambda m: stats[m].prediction_ops
        )
        == svm,
        "svm_slowest_training": max(stats, key=lambda m: stats[m].train_minutes)
        == svm,
    }
    if avg_aprc.get(svm, 0) > 0:
        out["rf_vs_svm_aprc_gain"] = avg_aprc[rf] / avg_aprc[svm] - 1.0
    return out
