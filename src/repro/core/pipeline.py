"""The end-to-end flow of the paper's Fig. 1, per design and per suite.

``run_flow`` pushes one design recipe through every stage:

    generate → place (global + legalise) → global route → detailed-routing
    simulation + DRC → labels → 387-feature extraction

and returns a :class:`FlowResult` carrying everything downstream consumers
need: the feature matrix and labels (model training), the loaded routing
grid and placement maps (explanations, Fig. 3 congestion pictures), the DRC
report (validation of explanations), and the Table I statistics row.

``build_suite_dataset`` runs the whole 14-design suite and assembles the
grouped :class:`~repro.features.dataset.SuiteDataset`.  The suite builder is
fault-tolerant, resumable, and parallelisable (see :mod:`repro.runtime`):

* every completed design flow is checkpointed (atomic write + SHA-256
  checksum) under ``<cache>.ckpt/``, so an interrupted run re-runs only the
  designs that never finished;
* the final ``.npz`` cache and its ``.stats.json`` sidecar are written
  atomically, checksummed, and invalidated *as a pair* — a torn or corrupted
  cache is rebuilt (cheaply, from checkpoints) instead of loaded;
* a failing design can degrade the suite (recorded in the runner's failure
  log and skipped, like the paper's footnote-3 designs) instead of killing
  the run, when the caller passes a non-``fail_fast`` runner;
* with a :class:`~repro.runtime.parallel.ParallelRunner`, design flows fan
  out across worker processes.  Workers ship back a picklable
  :class:`FlowPayload`; results are re-ordered to recipe order and all
  checkpoint/cache writes stay in the parent, so a parallel build produces a
  byte-identical cache pair and ``suite_fingerprint`` to a serial one.
"""

from __future__ import annotations

import json
import os
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..bench.generator import DesignRecipe, generate_design
from ..bench.suite import group_index_of, suite_recipes
from ..drc.checker import DRCReport
from ..drc.detailed import DRCSimConfig, simulate_drc
from ..drc.labels import hotspot_labels
from ..features.dataset import DesignDataset, SuiteDataset
from ..features.extractor import extract_features
from ..features.names import NUM_FEATURES
from ..layout.design_stats import DesignStats, design_statistics
from ..layout.grid import GCellGrid
from ..layout.netlist import Design
from ..layout.placemap import PlacementMaps
from ..place.placer import PlacerConfig, place_design
from ..route.router import RouterConfig, RoutingResult, route_design
from ..runtime.checkpoint import (
    CheckpointStore,
    atomic_write_text,
    fsync_dir,
    sha256_of,
    sweep_orphan_temps,
    unique_tmp_suffix,
)
from ..runtime.errors import CacheCorruptionError, StageFailure, ValidationError
from ..runtime.runner import FaultTolerantRunner
from ..runtime.telemetry import TelemetrySnapshot, Tracer, activate, get_tracer
from ..runtime.validation import validate_features

#: Group index assigned to ad-hoc designs outside the named 14-design suite.
#: Negative on purpose: leave-one-group-out never forms a test fold for it
#: (see :func:`repro.core.experiment.run_experiment`).
ADHOC_GROUP = -1

#: Version stamp of the suite cache pair (.npz + .stats.json sidecar).
#: v2: sidecar became ``{"format_version", "npz_sha256", "stats"}`` (the v1
#: sidecar was a bare stats list with no integrity information).
CACHE_FORMAT_VERSION = 2


@dataclass
class FlowResult:
    """Everything the flow produces for one design."""

    design: Design
    grid: GCellGrid
    routing: RoutingResult
    placemaps: PlacementMaps
    drc_report: DRCReport
    stats: DesignStats
    X: np.ndarray
    y: np.ndarray
    stage_seconds: dict[str, float]

    @property
    def dataset(self) -> DesignDataset:
        return DesignDataset(
            name=self.design.name,
            group=_safe_group(self.design.name),
            X=self.X,
            y=self.y,
            grid_nx=self.grid.nx,
            grid_ny=self.grid.ny,
        )


def _safe_group(name: str) -> int:
    try:
        return group_index_of(name)
    except KeyError:
        return ADHOC_GROUP  # sentinel: never a leave-one-group-out test fold


#: The flow's stage names, in execution order (also the span names).
FLOW_STAGES = ("generate", "place", "global_route", "drc_sim", "features")


def run_flow(
    recipe: DesignRecipe,
    placer_config: PlacerConfig | None = None,
    router_config: RouterConfig | None = None,
    drc_config: DRCSimConfig | None = None,
) -> FlowResult:
    """Run the full Fig. 1 flow for one design recipe.

    Every stage is a tracer span.  When the ambient tracer is enabled the
    spans land in its tree (nested under whatever span is open); otherwise a
    throwaway measuring tracer keeps the timings, so ``stage_seconds`` — a
    thin derived view of the span durations — is populated either way.
    """
    tracer = get_tracer()
    if not tracer.enabled:
        tracer = Tracer()  # local measuring tracer; discarded after the flow

    with tracer.span("flow", design=recipe.name) as flow_span:
        with tracer.span("generate"):
            design = generate_design(recipe)

        with tracer.span("place"):
            place_design(design, placer_config)

        grid = GCellGrid.for_design_die(design.die, design.technology)
        with tracer.span("global_route"):
            routing = route_design(design, grid, router_config)

        with tracer.span("drc_sim"):
            placemaps = PlacementMaps(design, grid)
            report = simulate_drc(design, routing.rgrid, placemaps, drc_config)

        with tracer.span("features"):
            X = extract_features(grid, routing.rgrid, placemaps)
            y = hotspot_labels(report, grid)

        stats = design_statistics(design, grid, report.num_hotspots(grid))

    # legacy view of the span durations, kept for existing callers/tests
    times = {c.name: c.wall_s for c in flow_span.children if c.name in FLOW_STAGES}
    return FlowResult(
        design=design,
        grid=grid,
        routing=routing,
        placemaps=placemaps,
        drc_report=report,
        stats=stats,
        X=X,
        y=y,
        stage_seconds=times,
    )


def _run_flow_validated(recipe: DesignRecipe, *args, **kwargs) -> FlowResult:
    """``run_flow`` plus the NaN/Inf/shape guard, as one fault-tolerant unit.

    Validating *inside* the unit means a design whose flow produces a
    non-finite feature matrix is retried/recorded/skipped by the runner like
    any other unit failure, instead of aborting a non-fail-fast suite build.
    """
    result = run_flow(recipe, *args, **kwargs)
    validate_features(result.X, result.y, name=recipe.name,
                      expect_features=NUM_FEATURES)
    return result


@dataclass
class FlowPayload:
    """The picklable slice of a :class:`FlowResult` the suite builder needs.

    Parallel workers return this instead of the full ``FlowResult`` so only
    the dataset, the Table I row, the stage timings, and the worker's
    telemetry snapshot cross the process boundary — not the design netlist,
    routing grid, and placement maps.
    """

    dataset: DesignDataset
    stats: DesignStats
    stage_seconds: dict[str, float]
    telemetry: TelemetrySnapshot | None = None


def _flow_unit_payload(
    recipe: DesignRecipe, collect_telemetry: bool = False
) -> FlowPayload:
    """One suite-builder unit: full validated flow, reduced to its payload.

    With ``collect_telemetry`` the flow runs under a fresh local tracer —
    in a worker process *and* in the serial runner — and ships its span
    subtree/metrics back in the payload.  Both execution modes therefore
    produce the same envelope, which the parent adopts in recipe order, so
    serial and parallel manifests are semantically identical.
    """
    local = Tracer() if collect_telemetry else None
    with activate(local) if local is not None else nullcontext():
        result = _run_flow_validated(recipe)
    return FlowPayload(
        dataset=result.dataset,
        stats=result.stats,
        stage_seconds=result.stage_seconds,
        telemetry=local.snapshot() if local is not None else None,
    )


#: JSON sidecar fields persisted next to the dataset cache for Table I.
_STATS_FIELDS = (
    "name",
    "num_gcells",
    "num_hotspots",
    "num_macros",
    "num_cells",
    "layout_width_um",
    "layout_height_um",
)


def _stats_to_dict(s: DesignStats) -> dict:
    return {f: getattr(s, f) for f in _STATS_FIELDS}


# -- per-design checkpoints ---------------------------------------------------------


def checkpoint_dir_for(cache_path: str | Path) -> Path:
    """Checkpoint store directory paired with a suite cache file."""
    return Path(cache_path).with_suffix(".ckpt")


def _save_design_checkpoint(
    store: CheckpointStore, result: FlowResult | FlowPayload
) -> None:
    d = result.dataset
    store.save_arrays(
        f"{d.name}.npz",
        X=d.X.astype(np.float32),  # compact on disk, like the suite cache
        y=d.y.astype(np.int8),
        meta=np.array(
            json.dumps(
                {
                    "group": d.group,
                    "grid_nx": d.grid_nx,
                    "grid_ny": d.grid_ny,
                    "stats": _stats_to_dict(result.stats),
                }
            )
        ),
    )


def _load_design_checkpoint(
    store: CheckpointStore, name: str
) -> tuple[DesignDataset, DesignStats]:
    """Load one design's checkpoint; raises CacheCorruptionError when unsound."""
    arrays = store.load_arrays(f"{name}.npz")
    try:
        meta = json.loads(str(arrays["meta"][()]))
        dataset = DesignDataset(
            name=name,
            group=int(meta["group"]),
            X=arrays["X"].astype(np.float64),
            y=arrays["y"].astype(np.int8),
            grid_nx=int(meta["grid_nx"]),
            grid_ny=int(meta["grid_ny"]),
        )
        stats = DesignStats(**meta["stats"])
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise CacheCorruptionError(f"{name}: malformed checkpoint payload") from exc
    validate_features(dataset.X, dataset.y, name=name, expect_features=NUM_FEATURES)
    return dataset, stats


# -- suite cache pair (.npz + .stats.json) ------------------------------------------


def _invalidate_cache_pair(cache_path: Path, sidecar: Path) -> None:
    get_tracer().counter("cache.suite.invalidated")
    cache_path.unlink(missing_ok=True)
    sidecar.unlink(missing_ok=True)


def _load_suite_cache(
    cache_path: Path, sidecar: Path
) -> tuple[SuiteDataset, list[DesignStats]] | None:
    """Load a cache pair if both halves exist and pass integrity checks.

    Any torn, legacy-format, or corrupted state invalidates the *pair*
    (both files removed) and returns ``None`` so the caller rebuilds.  A
    transient read error (``OSError``) also returns ``None`` but leaves the
    pair on disk — an NFS hiccup must not destroy a valid, expensive cache.
    """
    if not (cache_path.exists() and sidecar.exists()):
        if cache_path.exists() or sidecar.exists():
            _invalidate_cache_pair(cache_path, sidecar)  # half a pair is no pair
        return None
    try:
        doc = json.loads(sidecar.read_text())
        if (
            not isinstance(doc, dict)
            or doc.get("format_version") != CACHE_FORMAT_VERSION
        ):
            raise CacheCorruptionError(f"{sidecar}: legacy or unknown cache format")
        if sha256_of(cache_path) != doc.get("npz_sha256"):
            raise CacheCorruptionError(f"{cache_path}: checksum mismatch")
        suite = SuiteDataset.load(cache_path)
        for d in suite.designs:
            validate_features(d.X, d.y, name=d.name, expect_features=NUM_FEATURES)
        stats = [DesignStats(**row) for row in doc["stats"]]
    except OSError:
        return None  # transient I/O failure: rebuild this run, keep the pair
    except (
        CacheCorruptionError,
        ValidationError,
        ValueError,
        KeyError,
        TypeError,
        json.JSONDecodeError,
    ):
        _invalidate_cache_pair(cache_path, sidecar)
        return None
    return suite, stats


def _write_suite_cache(
    cache_path: Path, sidecar: Path, suite: SuiteDataset, stats: list[DesignStats]
) -> None:
    """Atomically write the cache pair: npz first, then the checksummed sidecar."""
    cache_path.parent.mkdir(parents=True, exist_ok=True)
    # temp name keeps the .npz suffix — np.savez appends one otherwise;
    # pid alone is not collision-free (threads / re-entrant writers share one)
    tmp = cache_path.with_name(f".{cache_path.stem}.tmp{unique_tmp_suffix()}.npz")
    try:
        suite.save(tmp)
        os.replace(tmp, cache_path)
        fsync_dir(cache_path.parent)  # durable across power loss, not just crashes
    finally:
        tmp.unlink(missing_ok=True)
    atomic_write_text(
        sidecar,
        json.dumps(
            {
                "format_version": CACHE_FORMAT_VERSION,
                "npz_sha256": sha256_of(cache_path),
                "stats": [_stats_to_dict(s) for s in stats],
            }
        ),
    )


# -- the resumable suite builder ----------------------------------------------------


def build_suite_dataset(
    scale: float = 1.0,
    cache_path: str | Path | None = None,
    verbose: bool = False,
    *,
    runner: FaultTolerantRunner | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
) -> tuple[SuiteDataset, list[DesignStats]]:
    """Run (or load, or resume) the complete 14-design suite.

    When ``cache_path`` is given and holds a valid cache pair, the dataset
    and stats are loaded with checksum verification.  Otherwise designs run
    as independent units under ``runner`` (default: fail-fast, no retries,
    serial; a :class:`~repro.runtime.parallel.ParallelRunner` fans them out
    across worker processes).  Each finished design is checkpointed — always
    from the parent process — under ``checkpoint_dir`` (default:
    ``<cache_path>.ckpt``) so a re-invocation after an interrupt re-runs only
    the unfinished flows.  With a non-fail-fast runner, a permanently failing
    design is recorded in ``runner.failures`` and skipped; the degraded suite
    is returned but the shared cache pair is only written when all designs
    succeeded.  Results are assembled in recipe order regardless of worker
    completion order, so serial and parallel builds are byte-identical.
    """
    tracer = get_tracer()
    # zero-register the builder's counters so every manifest reports them
    for key in ("cache.suite.hits", "cache.suite.misses",
                "cache.suite.invalidated", "checkpoint.resume_skips",
                "runtime.cache.orphans_swept"):
        tracer.counter(key, 0)
    sidecar: Path | None = None
    if cache_path is not None:
        cache_path = Path(cache_path)
        sidecar = cache_path.with_suffix(".stats.json")
        # reclaim temp files a killed writer left next to the cache pair
        sweep_orphan_temps(cache_path.parent)
        cached = _load_suite_cache(cache_path, sidecar)
        if cached is not None:
            tracer.counter("cache.suite.hits")
            return cached
        tracer.counter("cache.suite.misses")

    if runner is None:
        runner = FaultTolerantRunner(fail_fast=True, verbose=verbose)
    if checkpoint_dir is None and cache_path is not None:
        checkpoint_dir = checkpoint_dir_for(cache_path)
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None

    recipes = suite_recipes(scale)
    done: dict[str, tuple[DesignDataset, DesignStats]] = {}
    flow_telemetry: dict[str, TelemetrySnapshot] = {}
    pending: list[DesignRecipe] = []
    for recipe in recipes:
        key = f"{recipe.name}.npz"
        if store is not None and resume and store.has(key):
            try:
                done[recipe.name] = _load_design_checkpoint(store, recipe.name)
                tracer.counter("checkpoint.resume_skips")
                if verbose:
                    print(f"  {recipe.name:<12s} resumed from checkpoint", flush=True)
                continue
            except (CacheCorruptionError, ValidationError) as exc:
                store.invalidate(key)
                if verbose:
                    print(f"  {recipe.name:<12s} checkpoint invalid ({exc}); re-running",
                          flush=True)
        pending.append(recipe)

    def _flow_done(unit: str, outcome) -> None:
        # runs in the parent as each unit completes (any completion order):
        # the single-writer invariant of the checkpoint store holds even
        # when the unit bodies ran in worker processes
        if not outcome.ok:
            return  # recorded in runner.failures; degrade the suite
        payload: FlowPayload = outcome.value
        done[unit] = (payload.dataset, payload.stats)
        if payload.telemetry is not None:
            flow_telemetry[unit] = payload.telemetry
        if store is not None:
            _save_design_checkpoint(store, payload)
        if verbose:
            print(
                f"  {unit:<12s} {payload.stats.num_gcells:>6d} g-cells "
                f"{payload.stats.num_hotspots:>5d} hotspots "
                f"({sum(payload.stage_seconds.values()):.1f}s)",
                flush=True,
            )

    runner.run_units(
        "flow",
        [
            (r.name, _flow_unit_payload, (r,),
             {"collect_telemetry": tracer.enabled})
            for r in pending
        ],
        on_result=_flow_done,
    )

    # re-assemble in recipe order so a parallel build is byte-identical —
    # and adopt worker telemetry in the same order, so serial and parallel
    # runs produce semantically identical span trees
    for r in recipes:
        if r.name in flow_telemetry:
            tracer.adopt(flow_telemetry[r.name])
    datasets = [done[r.name][0] for r in recipes if r.name in done]
    stats = [done[r.name][1] for r in recipes if r.name in done]

    if not datasets:
        raise StageFailure("flow", "suite", 1, "every design in the suite failed")

    suite = SuiteDataset(datasets)
    complete = not runner.failures
    if cache_path is not None and sidecar is not None and complete:
        _write_suite_cache(cache_path, sidecar, suite, stats)
    return suite, stats


#: Where this package's source tree lives; ``<root>/src/repro/core/pipeline.py``
#: in a checkout, ``site-packages/repro/core/pipeline.py`` when installed.
_SOURCE_ROOT = Path(__file__).resolve().parents[3]


def default_cache_root() -> Path:
    """Root directory for suite caches and their checkpoint stores.

    Resolution order:

    1. ``$DRCSHAP_CACHE_DIR`` when set — the explicit override;
    2. ``<checkout>/.cache`` when running from a source/editable checkout
       (detected by the repo's ``pyproject.toml`` next to ``src/``);
    3. a per-user cache dir (``$XDG_CACHE_HOME/drcshap`` or
       ``~/.cache/drcshap``) otherwise — an installed package must never
       write into its own install tree (site-packages is often read-only
       and always shared).
    """
    env = os.environ.get("DRCSHAP_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    if (_SOURCE_ROOT / "pyproject.toml").is_file():
        return _SOURCE_ROOT / ".cache"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "drcshap"


def default_cache_path(scale: float = 1.0) -> Path:
    """Canonical cache location for a suite at the given scale."""
    tag = f"suite_scale{scale:g}".replace(".", "p")
    return default_cache_root() / f"{tag}.npz"
