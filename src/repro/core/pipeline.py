"""The end-to-end flow of the paper's Fig. 1, per design and per suite.

``run_flow`` pushes one design recipe through every stage:

    generate → place (global + legalise) → global route → detailed-routing
    simulation + DRC → labels → 387-feature extraction

and returns a :class:`FlowResult` carrying everything downstream consumers
need: the feature matrix and labels (model training), the loaded routing
grid and placement maps (explanations, Fig. 3 congestion pictures), the DRC
report (validation of explanations), and the Table I statistics row.

``build_suite_dataset`` runs the whole 14-design suite and assembles the
grouped :class:`~repro.features.dataset.SuiteDataset`, with an ``.npz``
cache so repeated benchmark runs skip the flow.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..bench.generator import DesignRecipe, generate_design
from ..bench.suite import group_index_of, suite_recipes
from ..drc.checker import DRCReport
from ..drc.detailed import DRCSimConfig, simulate_drc
from ..drc.labels import hotspot_labels
from ..features.dataset import DesignDataset, SuiteDataset
from ..features.extractor import extract_features
from ..layout.design_stats import DesignStats, design_statistics
from ..layout.grid import GCellGrid
from ..layout.netlist import Design
from ..layout.placemap import PlacementMaps
from ..place.placer import PlacerConfig, place_design
from ..route.router import RouterConfig, RoutingResult, route_design


@dataclass
class FlowResult:
    """Everything the flow produces for one design."""

    design: Design
    grid: GCellGrid
    routing: RoutingResult
    placemaps: PlacementMaps
    drc_report: DRCReport
    stats: DesignStats
    X: np.ndarray
    y: np.ndarray
    stage_seconds: dict[str, float]

    @property
    def dataset(self) -> DesignDataset:
        return DesignDataset(
            name=self.design.name,
            group=_safe_group(self.design.name),
            X=self.X,
            y=self.y,
            grid_nx=self.grid.nx,
            grid_ny=self.grid.ny,
        )


def _safe_group(name: str) -> int:
    try:
        return group_index_of(name)
    except KeyError:
        return 0  # ad-hoc designs outside the named suite


def run_flow(
    recipe: DesignRecipe,
    placer_config: PlacerConfig | None = None,
    router_config: RouterConfig | None = None,
    drc_config: DRCSimConfig | None = None,
) -> FlowResult:
    """Run the full Fig. 1 flow for one design recipe."""
    times: dict[str, float] = {}

    t0 = time.perf_counter()
    design = generate_design(recipe)
    times["generate"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    place_design(design, placer_config)
    times["place"] = time.perf_counter() - t0

    grid = GCellGrid.for_design_die(design.die, design.technology)
    t0 = time.perf_counter()
    routing = route_design(design, grid, router_config)
    times["global_route"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    placemaps = PlacementMaps(design, grid)
    report = simulate_drc(design, routing.rgrid, placemaps, drc_config)
    times["drc_sim"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    X = extract_features(grid, routing.rgrid, placemaps)
    y = hotspot_labels(report, grid)
    times["features"] = time.perf_counter() - t0

    stats = design_statistics(design, grid, report.num_hotspots(grid))
    return FlowResult(
        design=design,
        grid=grid,
        routing=routing,
        placemaps=placemaps,
        drc_report=report,
        stats=stats,
        X=X,
        y=y,
        stage_seconds=times,
    )


#: JSON sidecar fields persisted next to the dataset cache for Table I.
_STATS_FIELDS = (
    "name",
    "num_gcells",
    "num_hotspots",
    "num_macros",
    "num_cells",
    "layout_width_um",
    "layout_height_um",
)


def build_suite_dataset(
    scale: float = 1.0,
    cache_path: str | Path | None = None,
    verbose: bool = False,
) -> tuple[SuiteDataset, list[DesignStats]]:
    """Run (or load) the complete 14-design suite.

    When ``cache_path`` is given and exists, the dataset and stats sidecar
    are loaded instead of re-running the flow; otherwise the flow runs and
    the cache is written.
    """
    if cache_path is not None:
        cache_path = Path(cache_path)
        sidecar = cache_path.with_suffix(".stats.json")
        if cache_path.exists() and sidecar.exists():
            suite = SuiteDataset.load(cache_path)
            stats = [
                DesignStats(**row) for row in json.loads(sidecar.read_text())
            ]
            return suite, stats

    datasets: list[DesignDataset] = []
    stats: list[DesignStats] = []
    for recipe in suite_recipes(scale):
        result = run_flow(recipe)
        datasets.append(result.dataset)
        stats.append(result.stats)
        if verbose:
            print(
                f"  {recipe.name:<12s} {result.stats.num_gcells:>6d} g-cells "
                f"{result.stats.num_hotspots:>5d} hotspots "
                f"({sum(result.stage_seconds.values()):.1f}s)",
                flush=True,
            )

    suite = SuiteDataset(datasets)
    if cache_path is not None:
        suite.save(cache_path)
        sidecar = Path(cache_path).with_suffix(".stats.json")
        sidecar.write_text(
            json.dumps([{f: getattr(s, f) for f in _STATS_FIELDS} for s in stats])
        )
    return suite, stats


def default_cache_path(scale: float = 1.0) -> Path:
    """Canonical cache location for a suite at the given scale."""
    root = Path(__file__).resolve().parents[3] / ".cache"
    tag = f"suite_scale{scale:g}".replace(".", "p")
    return root / f"{tag}.npz"
