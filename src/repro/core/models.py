"""The model zoo of Table II and its hyper-parameter grids.

Five models, exactly the paper's comparison set:

* ``SVM-RBF`` — kernel SVM, the model of [2], [3], [5];
* ``RUSBoost`` — undersampling boosting of [4];
* ``NN-1`` — one hidden layer of 40 (architecture of [6], width per the
  paper's cross-validation);
* ``NN-2`` — hidden layers (40, 10);
* ``RF`` — the paper's proposal (500 unpruned trees in the paper).

Two presets control cost: ``full`` mirrors the paper's settings; ``fast``
shrinks ensembles/epochs/SVM-subsample so the whole Table II regenerates in
minutes.  The grids are deliberately small — the paper reports "extensive"
search, but on the scaled-down dataset broad grids only add runtime, not
ordering changes (the ablation bench sweeps wider ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from ..ml.boosting import RUSBoostClassifier
from ..ml.forest import RandomForestClassifier
from ..ml.nn import MLPClassifier
from ..ml.svm import SVMClassifier


@dataclass(frozen=True)
class ModelSpec:
    """One Table II column: how to build and tune a model.

    ``factory`` must be picklable (a module-level callable or a
    ``functools.partial`` over one): specs cross the process boundary when
    (model, group) units run under a
    :class:`~repro.runtime.parallel.ParallelRunner`.
    """

    name: str
    factory: Callable[..., Any]
    param_grid: dict[str, list[Any]] = field(default_factory=dict)
    #: whether inputs must be standardised (SVM, NNs)
    needs_scaling: bool = False
    #: whether the estimator accepts a shared BinnedDataset via
    #: ``fit(..., binned=...)`` — lets the experiment driver quantise each
    #: training split exactly once for grid search + final refit
    supports_binned: bool = False


# Module-level builders bound with functools.partial rather than closures:
# closures cannot be pickled, and model specs ride to worker processes.


def _make_svm(C: float = 10.0, *, svm_cap: int, svm_iter: int,
              random_state: int, **kw) -> SVMClassifier:
    return SVMClassifier(
        C=C,
        gamma="scale",
        max_train_samples=svm_cap,
        max_iter=svm_iter,
        random_state=random_state,
        **kw,
    )


def _make_rus(max_depth: int = 8, *, rus_rounds: int,
              random_state: int, **kw) -> RUSBoostClassifier:
    return RUSBoostClassifier(
        n_estimators=rus_rounds,
        max_depth=max_depth,
        random_state=random_state,
        **kw,
    )


def _make_nn(learning_rate: float = 1e-3, *, hidden_layers: tuple[int, ...],
             nn_epochs: int, random_state: int, **kw) -> MLPClassifier:
    return MLPClassifier(
        hidden_layers=hidden_layers,
        epochs=nn_epochs,
        learning_rate=learning_rate,
        random_state=random_state,
        **kw,
    )


def _make_rf(min_samples_leaf: int = 1, *, rf_trees: int, full: bool,
             random_state: int, n_jobs: int = 1, **kw) -> RandomForestClassifier:
    return RandomForestClassifier(
        n_estimators=rf_trees,
        min_samples_leaf=min_samples_leaf,
        max_features="sqrt",
        max_samples=None if full else 0.7,
        random_state=random_state,
        n_jobs=n_jobs,
        **kw,
    )


def model_zoo(
    preset: str = "fast", random_state: int = 0, n_jobs: int = 1
) -> list[ModelSpec]:
    """The five Table II models under the given cost preset.

    ``n_jobs`` is forwarded to the Random Forest's parallel tree growth; it
    changes wall-clock only, never results (per-tree generators are
    pre-spawned from the seed).  Under a ``--jobs`` flow pool the forest
    detects it is already inside a worker and grows serially.
    """
    if preset not in ("fast", "full"):
        raise ValueError(f"unknown preset {preset!r}")
    full = preset == "full"

    rf_trees = 500 if full else 120
    rus_rounds = 100 if full else 40
    nn_epochs = 60 if full else 25
    svm_cap = 6000 if full else 2500
    svm_iter = 300_000 if full else 60_000

    return [
        ModelSpec(
            "SVM-RBF",
            partial(_make_svm, svm_cap=svm_cap, svm_iter=svm_iter,
                    random_state=random_state),
            param_grid={"C": [1.0, 10.0]},
            needs_scaling=True,
        ),
        ModelSpec(
            "RUSBoost",
            partial(_make_rus, rus_rounds=rus_rounds, random_state=random_state),
            param_grid={"max_depth": [6, 10]} if full else {},
            supports_binned=True,
        ),
        ModelSpec(
            "NN-1",
            partial(_make_nn, hidden_layers=(40,), nn_epochs=nn_epochs,
                    random_state=random_state),
            needs_scaling=True,
        ),
        ModelSpec(
            "NN-2",
            partial(_make_nn, hidden_layers=(40, 10), nn_epochs=nn_epochs,
                    random_state=random_state),
            needs_scaling=True,
        ),
        ModelSpec(
            "RF",
            partial(_make_rf, rf_trees=rf_trees, full=full,
                    random_state=random_state, n_jobs=n_jobs),
            param_grid={"min_samples_leaf": [1, 4]} if full else {},
            supports_binned=True,
        ),
    ]


def rf_spec(
    preset: str = "fast", random_state: int = 0, n_jobs: int = 1
) -> ModelSpec:
    """Just the RF column (used by the explanation workflow)."""
    return next(
        m for m in model_zoo(preset, random_state, n_jobs) if m.name == "RF"
    )
