"""Individual hotspot explanation — the paper's Sec. IV-B workflow.

Given a design under test, this module reproduces the full Fig. 3 + Fig. 4
experience in text form:

1. train the RF on the other groups (same protocol as Table II),
2. pick the strongest predicted DRC hotspots of the design,
3. compute each prediction's SHAP values with the tree explainer,
4. render a force plot (Fig. 4), the surrounding GR congestion per layer
   (Fig. 3's colored maps), and — for validation — the *actual* DRC errors
   the simulated detailed router produced at that g-cell, which are not
   available at prediction time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..features.dataset import SuiteDataset
from ..features.names import feature_names
from ..ml.forest import RandomForestClassifier
from ..ml.shap.plots import Explanation, build_explanation, force_plot_text
from ..ml.shap.tree_explainer import TreeShapExplainer
from ..route.congestion import render_layer_congestion
from .models import rf_spec
from .pipeline import FlowResult


@dataclass
class HotspotExplanationReport:
    """One explained hotspot: prediction, SHAP, context, ground truth."""

    design: str
    cell: tuple[int, int]
    prediction: float
    is_actual_hotspot: bool
    explanation: Explanation
    congestion_views: dict[str, str]  # layer name -> ASCII view
    actual_errors: str
    shap_seconds: float

    def render(self, top_k: int = 8) -> str:
        lines = [
            f"=== {self.design} g-cell {self.cell} — "
            f"P(hotspot) = {self.prediction:.3f} "
            f"({'actual hotspot' if self.is_actual_hotspot else 'no actual error'}) ===",
            "",
            "SHAP explanation (Fig. 4 analogue):",
            force_plot_text(self.explanation, top_k=top_k),
            "",
            "GR congestion context (Fig. 3 analogue):",
        ]
        for layer, view in self.congestion_views.items():
            lines.append(view)
            lines.append("")
        lines.append(f"Actual DRC errors (ground truth): {self.actual_errors}")
        lines.append(f"(SHAP runtime: {self.shap_seconds:.2f} s/sample)")
        return "\n".join(lines)


def train_explanation_forest(
    suite: SuiteDataset,
    design_name: str,
    preset: str = "fast",
    random_state: int = 0,
    n_jobs: int = 1,
) -> RandomForestClassifier:
    """Fit the RF on everything outside the design's group (paper protocol)."""
    target = suite.by_name(design_name)
    X_train, y_train, _ = suite.stacked(exclude_groups=(target.group,))
    spec = rf_spec(preset, random_state, n_jobs)
    model = spec.factory()
    model.fit(X_train, y_train)
    return model


def explain_hotspots(
    suite: SuiteDataset,
    flow: FlowResult,
    model: RandomForestClassifier | None = None,
    num_hotspots: int = 3,
    layers: tuple[int, ...] = (3, 4, 5),
    preset: str = "fast",
    n_jobs: int = 1,
) -> list[HotspotExplanationReport]:
    """Explain the top predicted hotspots of a design.

    ``flow`` must be the design's :class:`~repro.core.pipeline.FlowResult`
    (it carries the congestion maps and the ground-truth DRC report).
    """
    design_name = flow.design.name
    if model is None:
        model = train_explanation_forest(suite, design_name, preset,
                                         n_jobs=n_jobs)
    dataset = suite.by_name(design_name)

    probs = model.predict_proba(dataset.X)[:, 1]
    explainer = TreeShapExplainer(model.trees, dataset.X.shape[1])
    names = feature_names()

    top_rows = np.argsort(-probs)[:num_hotspots]
    reports: list[HotspotExplanationReport] = []
    for row in top_rows:
        cell = dataset.cell_of_sample(int(row))
        x = dataset.X[int(row)]
        t0 = time.perf_counter()
        shap_vals = explainer.shap_values_single(x)
        shap_seconds = time.perf_counter() - t0
        explanation = build_explanation(
            base_value=explainer.expected_value,
            prediction=float(probs[row]),
            shap_values=shap_vals,
            feature_values=x,
            feature_names=names,
        )
        views = {
            f"M{m}": render_layer_congestion(flow.routing.rgrid, m, cell)
            for m in layers
        }
        reports.append(
            HotspotExplanationReport(
                design=design_name,
                cell=cell,
                prediction=float(probs[row]),
                is_actual_hotspot=bool(dataset.y[int(row)] == 1),
                explanation=explanation,
                congestion_views=views,
                actual_errors=flow.drc_report.describe_cell(flow.grid, cell),
                shap_seconds=shap_seconds,
            )
        )
    return reports


def explanation_layers_mentioned(report: HotspotExplanationReport, k: int = 10) -> set[str]:
    """Metal/via layers named by the top-k SHAP features.

    Used to validate explanations against the actual violations (the
    paper's consistency check in Sec. IV-B): the layers the explanation
    blames should overlap the layers where errors actually occurred.
    """
    layers: set[str] = set()
    for c in report.explanation.top(k):
        stem = c.name.split("_")[0]
        if len(stem) >= 4 and stem[0] in "ev" and stem[1] in "cld":
            layers.add(stem[2:])
    return layers
