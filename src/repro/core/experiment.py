"""The paper's experiment protocol: leave-one-group-out over the suite.

For every one of the 5 groups (Table I):

1. the group's designs form the **test set** — none of their samples are
   visible during training or tuning;
2. hyper-parameters (if a model has a grid) are chosen by 4-fold grouped CV
   over the remaining 4 groups, scored by A_prc;
3. the model is refitted on all 4 training groups;
4. each test design is scored individually (TPR*, Prec*, A_prc at
   FPR* = 0.5 %); designs with zero hotspots are skipped, like the paper's
   footnote 3.

Designs carrying the ad-hoc sentinel group (< 0, see
:data:`repro.core.pipeline.ADHOC_GROUP`) never form a test fold and are kept
out of training stacks, so stray designs cannot leak into the protocol.

Each (model, group) pair is one *unit* of the fault-tolerant runtime: it is
retried/skipped per the runner's policy, validated (NaN/Inf/shape guards)
before fit and predict, and — when a ``checkpoint_dir`` is given — its
scores are checkpointed so an interrupted grid resumes where it stopped.
Every unit checkpoint embeds a SHA-256 fingerprint of the suite contents and
the protocol knobs (:func:`suite_fingerprint`), so checkpoints produced
against a different suite — e.g. one degraded by a failed design flow — are
rejected and recomputed on resume instead of silently reused.

The result object carries everything Table II reports: per-design metric
rows, per-model averages and winning-design counts, #parameters,
#prediction operations, and training/prediction CPU time.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..features.dataset import SuiteDataset
from ..ml.binning import BinnedDataset
from ..ml.complexity import complexity_of
from ..ml.metrics import EvaluationResult, evaluate_scores
from ..ml.model_selection import grid_search, positive_scores
from ..ml.scaling import StandardScaler
from ..runtime.checkpoint import CheckpointStore
from ..runtime.errors import CacheCorruptionError
from ..runtime.runner import FaultTolerantRunner
from ..runtime.telemetry import TelemetrySnapshot, Tracer, activate, get_tracer
from ..runtime.validation import validate_features
from .models import ModelSpec


@dataclass
class DesignScore:
    """One (model, design) cell block of Table II."""

    design: str
    model: str
    metrics: EvaluationResult


@dataclass
class ModelRunStats:
    """Per-model cost numbers of Table II's bottom rows."""

    model: str
    num_parameters: float = 0.0  # averaged over the 5 group models
    prediction_ops: float = 0.0
    train_minutes: float = 0.0  # per model (average over groups)
    predict_minutes_per_design: float = 0.0
    best_params_per_group: dict[int, dict[str, Any]] = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Everything needed to print Table II."""

    scores: list[DesignScore]
    run_stats: list[ModelRunStats]
    design_order: list[str]
    model_order: list[str]
    target_fpr: float

    def _score_index(self) -> dict[tuple[str, str], EvaluationResult]:
        """Lazy (design, model) → metrics index; first entry wins on
        duplicates, matching the linear scan this replaced.  Rebuilt if the
        scores list grew (callers may construct the result incrementally)."""
        cache = self.__dict__.get("_index_cache")
        if cache is None or self.__dict__.get("_index_len") != len(self.scores):
            cache = {}
            for s in self.scores:
                cache.setdefault((s.design, s.model), s.metrics)
            self.__dict__["_index_cache"] = cache
            self.__dict__["_index_len"] = len(self.scores)
        return cache

    def score_of(self, design: str, model: str) -> EvaluationResult | None:
        return self._score_index().get((design, model))

    # -- aggregates -----------------------------------------------------------------

    def averages(self, model: str) -> tuple[float, float, float]:
        """(mean TPR*, mean Prec*, mean A_prc) over scored designs."""
        rows = [s.metrics for s in self.scores if s.model == model]
        if not rows:
            return (0.0, 0.0, 0.0)
        return (
            float(np.mean([r.tpr_star for r in rows])),
            float(np.mean([r.prec_star for r in rows])),
            float(np.mean([r.a_prc for r in rows])),
        )

    def winning_designs(self, model: str) -> tuple[int, int, int]:
        """How many designs this model wins per metric (ties count for all)."""
        wins = [0, 0, 0]
        for design in self.design_order:
            per_model: dict[str, EvaluationResult] = {}
            for m in self.model_order:
                r = self.score_of(design, m)
                if r is not None:
                    per_model[m] = r
            if model not in per_model:
                continue
            for k, attr in enumerate(("tpr_star", "prec_star", "a_prc")):
                best = max(getattr(r, attr) for r in per_model.values())
                if getattr(per_model[model], attr) >= best - 1e-12:
                    wins[k] += 1
        return tuple(wins)  # type: ignore[return-value]


@dataclass
class GroupUnitResult:
    """Output of one (model, group) unit — everything the aggregation needs.

    ``telemetry`` carries the worker's span subtree/metrics back to the
    parent; it is runtime-only and deliberately excluded from the JSON
    checkpoint (a resumed unit has no fresh telemetry to replay).
    """

    group: int
    params: dict[str, Any]
    train_minutes: float
    predict_minutes: float
    num_parameters: float
    prediction_ops: float
    n_pred_designs: int
    scores: list[DesignScore]
    telemetry: TelemetrySnapshot | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "group": self.group,
            "params": self.params,
            "train_minutes": self.train_minutes,
            "predict_minutes": self.predict_minutes,
            "num_parameters": self.num_parameters,
            "prediction_ops": self.prediction_ops,
            "n_pred_designs": self.n_pred_designs,
            "scores": [
                {"design": s.design, "model": s.model, **_metrics_to_json(s.metrics)}
                for s in self.scores
            ],
        }

    @staticmethod
    def from_json(doc: dict[str, Any]) -> "GroupUnitResult":
        try:
            return GroupUnitResult(
                group=int(doc["group"]),
                params=dict(doc["params"]),
                train_minutes=float(doc["train_minutes"]),
                predict_minutes=float(doc["predict_minutes"]),
                num_parameters=float(doc["num_parameters"]),
                prediction_ops=float(doc["prediction_ops"]),
                n_pred_designs=int(doc["n_pred_designs"]),
                scores=[
                    DesignScore(
                        design=row["design"],
                        model=row["model"],
                        metrics=_metrics_from_json(row),
                    )
                    for row in doc["scores"]
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheCorruptionError("malformed experiment checkpoint") from exc


_METRIC_FIELDS = (
    "tpr_star", "prec_star", "a_prc", "a_roc", "num_samples", "num_positives",
)


def _metrics_to_json(m: EvaluationResult) -> dict[str, Any]:
    return {f: getattr(m, f) for f in _METRIC_FIELDS}


def _metrics_from_json(row: dict[str, Any]) -> EvaluationResult:
    return EvaluationResult(
        tpr_star=float(row["tpr_star"]),
        prec_star=float(row["prec_star"]),
        a_prc=float(row["a_prc"]),
        a_roc=float(row["a_roc"]),
        num_samples=int(row["num_samples"]),
        num_positives=int(row["num_positives"]),
    )


def suite_fingerprint(
    suite: SuiteDataset, target_fpr: float, tune: bool
) -> str:
    """SHA-256 over the suite's exact contents plus the protocol knobs.

    Embedded in every (model, group) checkpoint and checked on resume: a
    checkpoint trained on a *different* suite — fewer designs because a flow
    failed that run, different features, different ``target_fpr``/``tune`` —
    fingerprints differently and is recomputed instead of silently reused.
    """
    h = hashlib.sha256()
    h.update(f"target_fpr={target_fpr!r};tune={bool(tune)}".encode())
    for d in suite.designs:
        h.update(f"|{d.name};g{d.group};{d.grid_nx}x{d.grid_ny};".encode())
        # hash the float32 disk projection: the suite cache and the design
        # checkpoints store X as float32, so a freshly flowed suite and its
        # cache-loaded round-trip must fingerprint identically
        h.update(np.ascontiguousarray(d.X, dtype=np.float32).tobytes())
        h.update(np.ascontiguousarray(d.y, dtype=np.int8).tobytes())
    return h.hexdigest()


def _fit_and_score_group(
    suite: SuiteDataset,
    spec: ModelSpec,
    g: int,
    target_fpr: float,
    tune: bool,
    verbose: bool,
) -> GroupUnitResult | None:
    """Train/tune on everything but group ``g`` and score its designs.

    Returns ``None`` when the training stack holds no positives (the unit is
    skipped, not failed).
    """
    tracer = get_tracer()
    adhoc = tuple({d.group for d in suite.designs if d.group < 0})
    X_train, y_train, train_groups = suite.stacked(exclude_groups=(g, *adhoc))
    test_designs = [d for d in suite.designs if d.group == g]
    if y_train.sum() == 0:
        return None
    validate_features(X_train, y_train, name=f"{spec.name}/train-g{g}")

    scaler: StandardScaler | None = None
    if spec.needs_scaling:
        scaler = StandardScaler().fit(X_train)
        X_fit = scaler.transform(X_train)
    else:
        X_fit = X_train

    params: dict[str, Any] = {}
    t0 = time.process_time()
    with tracer.span("train"):
        # one quantisation pass per experiment split: every grid-search
        # fold row-slices this dataset and the final refit reuses it, so
        # ml.binning.fits stays at one per (binned model, group)
        binned = BinnedDataset.from_matrix(X_fit) if spec.supports_binned else None
        if tune and spec.param_grid:
            search = grid_search(spec.factory, spec.param_grid, X_fit, y_train,
                                 train_groups, binned=binned)
            params = search.best_params
        model = spec.factory(**params)
        if binned is not None:
            model.fit(X_fit, y_train, binned=binned)
        else:
            model.fit(X_fit, y_train)
    train_minutes = (time.process_time() - t0) / 60.0

    # complexity on this group's model (averaged at the end);
    # custom estimators without a complexity model count as zero
    num_parameters = prediction_ops = 0.0
    X_ref = X_fit[: min(len(X_fit), 2048)]
    try:
        report = complexity_of(model, X_ref, spec.name)
    except TypeError:
        report = None
    if report is not None:
        num_parameters = report.num_parameters
        prediction_ops = report.prediction_ops_per_sample

    scores: list[DesignScore] = []
    predict_minutes = 0.0
    n_pred_designs = 0
    for d in test_designs:
        if d.num_hotspots == 0 or d.num_hotspots == d.num_samples:
            continue  # metrics undefined (paper footnote 3)
        validate_features(d.X, d.y, name=f"{spec.name}/test-{d.name}")
        X_test = scaler.transform(d.X) if scaler is not None else d.X
        t0 = time.process_time()
        with tracer.span("score", design=d.name):
            s = positive_scores(model, X_test)
        predict_minutes += (time.process_time() - t0) / 60.0
        tracer.counter("experiment.designs_scored")
        n_pred_designs += 1
        scores.append(
            DesignScore(
                design=d.name,
                model=spec.name,
                metrics=evaluate_scores(d.y, s, target_fpr),
            )
        )
        if verbose:
            m = scores[-1].metrics
            print(
                f"  {spec.name:<9s} {d.name:<12s} TPR*={m.tpr_star:.4f} "
                f"Prec*={m.prec_star:.4f} A_prc={m.a_prc:.4f}",
                flush=True,
            )

    return GroupUnitResult(
        group=g,
        params=params,
        train_minutes=train_minutes,
        predict_minutes=predict_minutes,
        num_parameters=num_parameters,
        prediction_ops=prediction_ops,
        n_pred_designs=n_pred_designs,
        scores=scores,
    )


def _experiment_unit(
    suite: SuiteDataset,
    spec: ModelSpec,
    g: int,
    target_fpr: float,
    tune: bool,
    verbose: bool,
    collect_telemetry: bool = False,
) -> GroupUnitResult | None:
    """One runnable (model, group) unit, with optional telemetry collection.

    Mirrors the suite builder's ``_flow_unit_payload``: with telemetry on,
    the unit body runs under a fresh local tracer — identically in a worker
    process and in the serial runner — and its snapshot rides back inside
    the :class:`GroupUnitResult` envelope for the parent to adopt in sorted
    group order.
    """
    local = Tracer() if collect_telemetry else None
    with activate(local) if local is not None else nullcontext():
        span = (
            local.span("experiment_unit", model=spec.name, group=g)
            if local is not None
            else nullcontext()
        )
        with span:
            unit = _fit_and_score_group(suite, spec, g, target_fpr, tune, verbose)
    if unit is not None and local is not None:
        unit.telemetry = local.snapshot()
    return unit


def run_experiment(
    suite: SuiteDataset,
    models: list[ModelSpec],
    target_fpr: float = 0.005,
    tune: bool = True,
    verbose: bool = False,
    *,
    runner: FaultTolerantRunner | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = True,
) -> ExperimentResult:
    """Run the full leave-one-group-out protocol for every model.

    Every (model, group) pair runs as one fault-tolerant unit under
    ``runner`` (default: fail-fast, serial; a
    :class:`~repro.runtime.parallel.ParallelRunner` fans a model's group
    units out across worker processes).  With a non-fail-fast runner a
    failing unit is recorded in ``runner.failures`` and its group is skipped
    for that model, degrading Table II instead of aborting it.  With a
    ``checkpoint_dir``, finished units are checkpointed — always from the
    parent process — and a re-invocation resumes from them, but only when
    the stored suite fingerprint matches the suite being run, so units
    trained on a degraded or otherwise different suite are recomputed rather
    than reused.

    Per-unit CPU times (``train_minutes``, ``predict_minutes``) are measured
    with ``time.process_time()`` *inside* the unit body and shipped back in
    the :class:`GroupUnitResult`: a worker's CPU time is invisible to the
    parent's process clock, so measuring in the parent would report ~0 for
    parallel runs.  Aggregation iterates groups in sorted order, so a
    parallel run's Table II is identical to a serial one.

    A graceful-shutdown signal propagates out of ``runner.run_units`` as
    :class:`~repro.runtime.errors.ShutdownRequested` *between* units: every
    unit that completed before the signal has already been checkpointed by
    the parent-side ``on_result`` callback, so re-running with ``resume=True``
    recomputes only the units the signal cut off.
    """
    tracer = get_tracer()
    # zero-register so every manifest reports the grid's counters, even for
    # a fully resumed (all-checkpoint) run
    for key in ("experiment.designs_scored", "checkpoint.resume_skips"):
        tracer.counter(key, 0)
    if runner is None:
        runner = FaultTolerantRunner(fail_fast=True, verbose=verbose)
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    fingerprint = (
        suite_fingerprint(suite, target_fpr, tune) if store is not None else None
    )

    # ad-hoc sentinel groups (< 0) never form a test fold
    groups_present = sorted({d.group for d in suite.designs if d.group >= 0})
    scores: list[DesignScore] = []
    run_stats: list[ModelRunStats] = []

    for spec in models:
        stats = ModelRunStats(model=spec.name)
        n_models = 0
        n_pred_designs = 0
        unit_results: dict[int, GroupUnitResult] = {}
        pending: list[int] = []
        for g in groups_present:
            key = f"{spec.name}__g{g}.json"
            if store is not None and resume and store.has(key):
                try:
                    doc = store.load_json(key)
                    if (
                        not isinstance(doc, dict)
                        or doc.get("suite_fingerprint") != fingerprint
                    ):
                        raise CacheCorruptionError(
                            f"{key}: checkpoint was produced against a "
                            "different suite or protocol (stale fingerprint)"
                        )
                    unit_results[g] = GroupUnitResult.from_json(doc.get("unit", {}))
                    tracer.counter("checkpoint.resume_skips")
                    continue
                except CacheCorruptionError:
                    store.invalidate(key)
            pending.append(g)

        def _unit_done(
            unit_name: str,
            outcome,
            *,
            _results: dict[int, GroupUnitResult] = unit_results,
            _model: str = spec.name,
        ) -> None:
            # parent-side: checkpoint writes never happen in a worker
            if not outcome.ok:
                return  # recorded in runner.failures; degrade Table II
            unit: GroupUnitResult | None = outcome.value
            if unit is None:
                return  # no positives in the training stack
            _results[unit.group] = unit
            if store is not None:
                store.save_json(
                    f"{_model}__g{unit.group}.json",
                    {"suite_fingerprint": fingerprint, "unit": unit.to_json()},
                )

        runner.run_units(
            "experiment",
            [
                (
                    f"{spec.name}__g{g}",
                    _experiment_unit,
                    (suite, spec, g, target_fpr, tune, verbose),
                    {"collect_telemetry": tracer.enabled},
                )
                for g in pending
            ],
            on_result=_unit_done,
        )

        for g in groups_present:  # sorted: aggregation order is deterministic
            unit = unit_results.get(g)
            if unit is None:
                continue
            tracer.adopt(unit.telemetry)
            stats.train_minutes += unit.train_minutes
            stats.predict_minutes_per_design += unit.predict_minutes
            stats.best_params_per_group[g] = unit.params
            stats.num_parameters += unit.num_parameters
            stats.prediction_ops += unit.prediction_ops
            n_models += 1
            n_pred_designs += unit.n_pred_designs
            scores.extend(unit.scores)

        if n_models:
            stats.num_parameters /= n_models
            stats.prediction_ops /= n_models
            stats.train_minutes /= n_models
        if n_pred_designs:
            stats.predict_minutes_per_design /= n_pred_designs
        run_stats.append(stats)

    return ExperimentResult(
        scores=scores,
        run_stats=run_stats,
        design_order=[
            d.name
            for d in suite.designs
            if d.group >= 0 and 0 < d.num_hotspots < d.num_samples
        ],
        model_order=[m.name for m in models],
        target_fpr=target_fpr,
    )
