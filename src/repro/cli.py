"""Command-line interface: ``drcshap <command>``.

Commands
--------

``suite``      Run the 14-design flow and print the Table I analogue.
``table2``     Run the leave-one-group-out model comparison (Table II).
``explain``    Train RF and explain the top predicted hotspots of a design
               (Fig. 3 + Fig. 4 analogues).
``report``     Full prediction report for one design (metrics, threshold
               sweep, P-R curve, top predicted hotspots).
``flow``       Run the flow on one ad-hoc design and print its statistics.
``features``   List the 387 canonical feature names.

``trace``      Inspect a JSONL trace or ``run_manifest.json`` written by
               ``--trace``: span tree, slowest spans, metric totals.

All heavy commands accept ``--cache`` (default on) so the 14-design flow
runs only once per scale, the resilience flags ``--resume/--no-resume``,
``--max-retries``, ``--retry-backoff``, ``--timeout`` and ``--fail-fast``
(see :mod:`repro.runtime`), and ``-j/--jobs N`` to fan design flows and
(model, group) experiment units out across N worker processes (default 1 =
serial; results are bit-identical either way).  Checkpoint directories are
derived from the *default* cache location, not the ``--cache`` flag, so
``--no-cache`` runs still resume from checkpoints.

Every command also accepts the telemetry flags ``--trace PATH`` (write a
JSONL span trace to PATH plus an aggregated manifest next to it) and
``--no-telemetry`` (force telemetry off).  Without ``--trace``, telemetry
stays disabled and no sink file is ever created.

The heavy commands run under two-stage signal handling: the first
SIGTERM/SIGINT stops dispatching new units, drains and checkpoints what is
in flight, flushes the telemetry sinks, and exits with the resumable code
4 — rerunning with ``--resume`` (the default) continues exactly where the
run stopped.  A second signal hard-exits immediately.  Worker supervision
flags ``--max-pool-respawns``, ``--quarantine-threshold`` and
``--heartbeat`` control how ``--jobs N`` runs survive SIGKILLed or hung
worker processes (see :mod:`repro.runtime.parallel`).

Exit codes: 0 success, 1 runtime error, 2 usage error, 3 completed but
degraded (some units failed and were skipped; the failure log is printed
to stderr), 4 interrupted by a shutdown signal but resumable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext
from pathlib import Path

from .bench.generator import DesignRecipe
from .bench.suite import GROUPS, group_of
from .core.evaluation import format_table2, summarize_shape
from .core.experiment import run_experiment
from .core.explain import explain_hotspots
from .core.models import model_zoo
from .core.pipeline import (
    build_suite_dataset,
    checkpoint_dir_for,
    default_cache_path,
    run_flow,
)
from .features.names import describe_feature, feature_names
from .layout.design_stats import format_table1, group_statistics
from .runtime import (
    FaultTolerantRunner,
    ParallelRunner,
    ReproRuntimeError,
    RetryPolicy,
    ShutdownRequested,
    graceful_shutdown,
)
from .runtime.telemetry import (
    Tracer,
    activate,
    build_manifest,
    format_metrics,
    format_span_tree,
    format_top_spans,
    load_trace,
    manifest_path_for,
    new_run_id,
    write_manifest,
    write_trace,
)

#: Exit code when a run finished but some units failed and were skipped.
EXIT_DEGRADED = 3

#: Exit code when a shutdown signal interrupted the run after a clean flush:
#: checkpoints and telemetry sinks are valid, and ``--resume`` continues
#: exactly where the run stopped.
EXIT_INTERRUPTED = 4


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (worker counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: an integer >= 0 (retry budgets)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float > 0 (heartbeat windows)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _trace_path(text: str) -> Path:
    """argparse type: a trace destination whose parent dir exists and is writable."""
    path = Path(text)
    parent = path.parent
    if not parent.is_dir():
        raise argparse.ArgumentTypeError(f"trace directory {parent} does not exist")
    if not os.access(parent, os.W_OK):
        raise argparse.ArgumentTypeError(f"trace directory {parent} is not writable")
    return path


def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", type=_trace_path, default=None, metavar="PATH",
                   help="write a JSONL span trace to PATH and an aggregated "
                        "run manifest next to it (.manifest.json)")
    p.add_argument("--no-telemetry", dest="telemetry", action="store_false",
                   help="force telemetry off even when --trace is given")


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("-j", "--jobs", type=_positive_int, default=1, metavar="N",
                   help="worker processes for design flows and experiment "
                        "units (default 1 = serial; same results either way)")
    p.add_argument("--no-resume", dest="resume", action="store_false",
                   help="ignore existing checkpoints; recompute every unit")
    p.add_argument("--max-retries", type=_nonneg_int, default=0, metavar="N",
                   help="retry budget per unit (default 0)")
    p.add_argument("--retry-backoff", type=float, default=1.0, metavar="SEC",
                   help="base of the exponential retry backoff (default 1s)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="wall-clock budget per unit attempt (default none)")
    p.add_argument("--fail-fast", action="store_true",
                   help="abort on the first permanently failed unit instead "
                        "of recording + skipping it")
    p.add_argument("--max-pool-respawns", type=_nonneg_int, default=3,
                   metavar="N",
                   help="how many worker-pool breakages (SIGKILLed/hung "
                        "workers) to survive per stage before aborting "
                        "(default 3; parallel runs only)")
    p.add_argument("--quarantine-threshold", type=_positive_int, default=2,
                   metavar="N",
                   help="crashes charged to one unit before it is "
                        "quarantined as a worker_crash failure instead of "
                        "re-dispatched (default 2; parallel runs only)")
    p.add_argument("--heartbeat", type=_positive_float, default=None, metavar="SEC",
                   help="declare a worker hung (kill + respawn the pool) "
                        "when a unit attempt completes nothing for SEC "
                        "seconds (default off; parallel runs only)")


def _runner_from_args(args: argparse.Namespace) -> FaultTolerantRunner:
    policy = RetryPolicy(
        max_retries=args.max_retries,
        backoff_base_s=args.retry_backoff if args.max_retries else 0.0,
        timeout_s=args.timeout,
    )
    jobs = getattr(args, "jobs", 1)
    if jobs > 1:
        return ParallelRunner(
            jobs, policy, fail_fast=args.fail_fast, verbose=True,
            max_pool_respawns=getattr(args, "max_pool_respawns", 3),
            quarantine_threshold=getattr(args, "quarantine_threshold", 2),
            heartbeat_s=getattr(args, "heartbeat", None),
        )
    return FaultTolerantRunner(policy, fail_fast=args.fail_fast, verbose=True)


def _suite_checkpoint_dir(scale: float):
    """Suite checkpoint dir, independent of ``--cache``.

    Deriving it from the *default* cache path (rather than the possibly
    ``None`` ``--cache`` value) keeps ``--resume`` meaningful under
    ``--no-cache`` instead of silently no-opping.
    """
    return checkpoint_dir_for(default_cache_path(scale))


def _report_failures(runner: FaultTolerantRunner) -> int:
    """Print the failure log to stderr; exit degraded if anything failed."""
    if runner.failures:
        print(f"\nwarning: degraded run — {runner.failures.summary()}",
              file=sys.stderr)
        return EXIT_DEGRADED
    return 0


def _suite(args: argparse.Namespace) -> int:
    cache = default_cache_path(args.scale) if args.cache else None
    runner = _runner_from_args(args)
    suite, stats = build_suite_dataset(
        args.scale, cache_path=cache, verbose=True,
        runner=runner, resume=args.resume,
        checkpoint_dir=_suite_checkpoint_dir(args.scale),
    )
    by_name = {s.name: s for s in stats}
    rows = []
    for group_name, members in GROUPS.items():
        member_stats = [by_name[m] for m in members if m in by_name]
        rows.append((group_statistics(group_name, member_stats), member_stats))
    print(format_table1(rows))
    print(f"\nTotal samples: {suite.num_samples}")
    return _report_failures(runner)


def _table2(args: argparse.Namespace) -> int:
    cache = default_cache_path(args.scale) if args.cache else None
    runner = _runner_from_args(args)
    suite, _ = build_suite_dataset(
        args.scale, cache_path=cache, runner=runner, resume=args.resume,
        checkpoint_dir=_suite_checkpoint_dir(args.scale),
    )
    # --jobs feeds both layers: >1 parallelises (model, group) units via the
    # runner, and the RF grows trees in parallel whenever it is *not* already
    # inside a unit worker (the forest detects nesting and stays serial)
    models = model_zoo(args.preset, n_jobs=args.jobs)
    if args.models:
        wanted = set(args.models.split(","))
        models = [m for m in models if m.name in wanted]
        if not models:
            print(f"no models match {args.models!r}", file=sys.stderr)
            return 2
    # derived from the default cache location, not --cache, so that
    # --no-cache --resume still resumes (it used to silently no-op)
    ckpt = default_cache_path(args.scale).with_suffix(f".table2-{args.preset}.ckpt")
    result = run_experiment(
        suite, models, tune=True, verbose=True,
        runner=runner, checkpoint_dir=ckpt, resume=args.resume,
    )
    print()
    print(format_table2(result))
    print()
    for k, v in summarize_shape(result).items():
        print(f"{k}: {v}")
    return _report_failures(runner)


def _explain(args: argparse.Namespace) -> int:
    group_of(args.design)  # validate the name early
    cache = default_cache_path(args.scale) if args.cache else None
    runner = _runner_from_args(args)
    suite, _ = build_suite_dataset(
        args.scale, cache_path=cache, runner=runner, resume=args.resume,
        checkpoint_dir=_suite_checkpoint_dir(args.scale),
    )
    from .bench.suite import SUITE_RECIPES

    outcome = runner.run_unit(
        "explain", args.design, run_flow, SUITE_RECIPES[args.design]
    )
    if not outcome.ok:
        return _report_failures(runner) or 1
    reports = explain_hotspots(
        suite, outcome.value, num_hotspots=args.num, preset=args.preset,
        n_jobs=args.jobs,
    )
    for report in reports:
        print(report.render())
        print()
    return _report_failures(runner)


def _report(args: argparse.Namespace) -> int:
    from .analysis import design_report
    from .core.explain import train_explanation_forest

    cache = default_cache_path(args.scale) if args.cache else None
    runner = _runner_from_args(args)
    suite, _ = build_suite_dataset(
        args.scale, cache_path=cache, runner=runner, resume=args.resume,
        checkpoint_dir=_suite_checkpoint_dir(args.scale),
    )
    dataset = suite.by_name(args.design)
    outcome = runner.run_unit(
        "report", args.design, train_explanation_forest,
        suite, args.design, preset=args.preset, n_jobs=args.jobs,
    )
    if not outcome.ok:
        return _report_failures(runner) or 1
    scores = outcome.value.predict_proba(dataset.X)[:, 1]
    print(design_report(dataset, scores, top_k=args.top))
    return _report_failures(runner)


def _flow(args: argparse.Namespace) -> int:
    recipe = DesignRecipe(
        name=args.name,
        grid_nx=args.grid,
        grid_ny=args.grid,
        utilization=args.utilization,
        num_macros=args.macros,
        macro_area_frac=0.08 if args.macros else 0.0,
        seed=args.seed,
    )
    result = run_flow(recipe)
    from .route.report import routing_report

    print(result.stats.format_row())
    print()
    print(routing_report(result.routing, recipe.name))
    print()
    print(f"violations : {result.drc_report.num_violations} "
          f"({result.stats.num_hotspots} hotspot g-cells)")
    for stage, sec in result.stage_seconds.items():
        print(f"  {stage:<12s} {sec:6.2f} s")
    return 0


def _features(args: argparse.Namespace) -> int:
    for name in feature_names():
        if args.verbose:
            print(f"{name:<16s} {describe_feature(name)}")
        else:
            print(name)
    return 0


def _render_manifest(manifest: dict) -> str:
    """Human view of a ``run_manifest.json`` document."""
    lines = [
        f"run      : {manifest.get('run_id', '?')}",
        f"command  : {manifest.get('command', '?')}",
        f"versions : " + " ".join(
            f"{k}={v}" for k, v in (manifest.get("versions") or {}).items()
        ),
        "",
        f"{'stage':<40s} {'count':>6s} {'wall_s':>9s} {'self_s':>9s} {'cpu_s':>9s}",
    ]
    for row in manifest.get("stages", []):
        lines.append(
            f"{row['path']:<40s} {row['count']:>6d} {row['wall_s']:>9.3f} "
            f"{row['self_s']:>9.3f} {row['cpu_s']:>9.3f}"
        )
    lines.append("")
    lines.append(format_metrics(manifest.get("counters", {}),
                                manifest.get("gauges", {})))
    failures = manifest.get("failures", [])
    if failures:
        lines.append("")
        lines.append(f"failures : {len(failures)} "
                     f"({', '.join(sorted({str(f.get('unit_id')) for f in failures}))})")
    return "\n".join(lines)


def _trace_cmd(args: argparse.Namespace) -> int:
    """Inspect a trace file or manifest written by ``--trace``."""
    path = Path(args.path)
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    # A manifest is a single JSON object with a "stages" table; anything else
    # is treated as a JSONL trace.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "stages" in doc:
        print(_render_manifest(doc))
        return 0
    try:
        # lenient: a killed process tears at most the trailing line(s); drop
        # them with a warning instead of refusing the whole trace
        trace = load_trace(path, strict=False)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if trace.dropped:
        print(
            f"warning: skipped {trace.dropped} truncated/corrupt trace "
            f"line(s) in {path}",
            file=sys.stderr,
        )
    meta = trace.meta
    print(f"run      : {meta.get('run_id', '?')}")
    print(f"command  : {meta.get('command', '?')}")
    print()
    print(format_span_tree(trace.roots))
    print()
    print(format_top_spans(trace.roots, args.top))
    print()
    print(format_metrics(trace.counters, trace.gauges))
    if trace.failures:
        print()
        print(f"failures : {len(trace.failures)}")
        for rec in trace.failures:
            print(f"  {rec.get('kind', '?')}:{rec.get('unit_id', '?')} "
                  f"{rec.get('error_type', '')}: {rec.get('message', '')}")
    return 0


def _write_telemetry(tracer: Tracer, args: argparse.Namespace,
                     argv: list[str]) -> None:
    """Persist the run's trace + manifest sinks next to ``--trace PATH``."""
    trace_path = args.trace
    config = {
        k: (str(v) if isinstance(v, Path) else v)
        for k, v in sorted(vars(args).items())
        if k != "func"
    }
    write_trace(tracer, trace_path, args.command, argv)
    manifest = build_manifest(tracer, args.command, argv, config)
    manifest_path = write_manifest(manifest, manifest_path_for(trace_path))
    print(f"telemetry: trace {trace_path}  manifest {manifest_path}",
          file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="drcshap",
        description="Explainable DRC hotspot prediction (DATE 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("suite", help="run the 14-design flow; print Table I")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--no-cache", dest="cache", action="store_false")
    _add_resilience_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=_suite)

    p = sub.add_parser("table2", help="model comparison (Table II)")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--preset", choices=("fast", "full"), default="fast")
    p.add_argument("--models", help="comma-separated subset, e.g. RF,SVM-RBF")
    p.add_argument("--no-cache", dest="cache", action="store_false")
    _add_resilience_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=_table2)

    p = sub.add_parser("explain", help="explain hotspots of one design")
    p.add_argument("design", help="suite design name, e.g. des_perf_1")
    p.add_argument("--num", type=int, default=3)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--preset", choices=("fast", "full"), default="fast")
    p.add_argument("--no-cache", dest="cache", action="store_false")
    _add_resilience_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=_explain)

    p = sub.add_parser("report", help="full prediction report for one design")
    p.add_argument("design", help="suite design name, e.g. mult_b")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--preset", choices=("fast", "full"), default="fast")
    p.add_argument("--no-cache", dest="cache", action="store_false")
    _add_resilience_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(func=_report)

    p = sub.add_parser("flow", help="run the flow on one ad-hoc design")
    p.add_argument("--name", default="adhoc")
    p.add_argument("--grid", type=int, default=20)
    p.add_argument("--utilization", type=float, default=0.65)
    p.add_argument("--macros", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    _add_telemetry_flags(p)
    p.set_defaults(func=_flow)

    p = sub.add_parser("features", help="list the 387 feature names")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_telemetry_flags(p)
    p.set_defaults(func=_features)

    p = sub.add_parser(
        "trace", help="inspect a --trace JSONL file or run manifest"
    )
    p.add_argument("path", help="trace .jsonl or run manifest .json file")
    p.add_argument("--top", type=_positive_int, default=5, metavar="N",
                   help="how many slowest spans to list (default 5)")
    p.set_defaults(func=_trace_cmd)

    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    telemetry_on = (trace_path is not None
                    and getattr(args, "telemetry", True)
                    and args.command != "trace")
    # two-stage SIGTERM/SIGINT handling guards every resumable command:
    # first signal drains + flushes (exit 4, --resume continues), second
    # hard-exits.  Commands without resilience flags finish too fast to need
    # it, and `trace` is read-only.
    supervised = hasattr(args, "resume")
    if not telemetry_on:
        try:
            with graceful_shutdown() if supervised else nullcontext():
                return args.func(args)
        except ShutdownRequested as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            return EXIT_INTERRUPTED
        except ReproRuntimeError as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1

    tracer = Tracer(enabled=True, run_id=new_run_id())
    argv_list = list(argv) if argv is not None else sys.argv[1:]
    try:
        with activate(tracer), tracer.span(args.command):
            with graceful_shutdown() if supervised else nullcontext():
                code = args.func(args)
    except ShutdownRequested as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        code = EXIT_INTERRUPTED
    except ReproRuntimeError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        code = 1
    # Sinks are written for success, degraded, interrupted and error exits
    # alike — a KeyboardInterrupt outside the supervised block propagates
    # before reaching here by design.
    _write_telemetry(tracer, args, argv_list)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
