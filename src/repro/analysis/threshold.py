"""Threshold exploration: the designer-facing knob the paper emphasises.

"In practice, the designer is free to adjust the threshold to get
different prediction results with the same model" (Sec. III-B).  This
module turns a scored design into an operating-point table across
false-positive-rate budgets, and picks thresholds for common intents
(a recall target, an FPR budget, a max-F1 compromise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.metrics import OperatingPoint, operating_point_at_fpr, pr_curve


@dataclass(frozen=True)
class ThresholdSweep:
    """Operating points at several FPR budgets for one scored design."""

    budgets: tuple[float, ...]
    points: tuple[OperatingPoint, ...]

    def format_table(self) -> str:
        header = (
            f"{'FPR budget':>10s} {'threshold':>10s} {'TPR*':>8s} "
            f"{'Prec*':>8s} {'TP':>5s} {'FP':>5s} {'FN':>5s}"
        )
        lines = [header, "-" * len(header)]
        for budget, op in zip(self.budgets, self.points):
            lines.append(
                f"{budget:>10.4f} {op.threshold:>10.4f} {op.tpr:>8.4f} "
                f"{op.precision:>8.4f} {op.tp:>5d} {op.fp:>5d} {op.fn:>5d}"
            )
        return "\n".join(lines)


def sweep_thresholds(
    y_true: np.ndarray,
    scores: np.ndarray,
    budgets: tuple[float, ...] = (0.001, 0.0025, 0.005, 0.01, 0.02, 0.05),
) -> ThresholdSweep:
    """Operating points at each FPR budget (paper default 0.5% included)."""
    points = tuple(
        operating_point_at_fpr(y_true, scores, budget) for budget in budgets
    )
    return ThresholdSweep(budgets=tuple(budgets), points=points)


def threshold_for_recall(
    y_true: np.ndarray, scores: np.ndarray, min_recall: float
) -> float:
    """Loosest threshold reaching at least ``min_recall``.

    Raises ``ValueError`` when no threshold achieves the target (can only
    happen for min_recall > 1 or empty positives).
    """
    precision, recall, thresholds = pr_curve(y_true, scores)
    ok = np.flatnonzero(recall >= min_recall)
    if not ok.size:
        raise ValueError(f"no threshold reaches recall {min_recall}")
    return float(thresholds[ok[0]])


def best_f1_threshold(y_true: np.ndarray, scores: np.ndarray) -> tuple[float, float]:
    """(threshold, F1) maximising F1 over all distinct thresholds."""
    precision, recall, thresholds = pr_curve(y_true, scores)
    with np.errstate(divide="ignore", invalid="ignore"):
        f1 = np.where(
            precision + recall > 0,
            2 * precision * recall / (precision + recall),
            0.0,
        )
    best = int(np.argmax(f1))
    return float(thresholds[best]), float(f1[best])
