"""What-if analysis: act on an explanation before detailed routing.

The point of early DRC feedback (paper Sec. I) is that the designer can
*do something*: reroute globally around a hot edge, spread cells to thin
out pins, free tracks by demoting an NDR net.  This module closes that
loop at the model level: given a sample and an intervention on named
features, it rebuilds a physically consistent feature vector and reports
how the predicted hotspot probability responds.

Consistency handling: the congestion features come in (capacity, load,
margin) triples; intervening on one member updates the margin (``ed*`` /
``vd*``) so the counterfactual stays on the C−L manifold the model was
trained on.  Neighbouring-window copies of the same physical quantity are
NOT updated (an intervention on the central cell's own features only),
which matches the local edits a designer would actually try.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.names import feature_index


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of one intervention."""

    baseline_probability: float
    new_probability: float
    changed_features: tuple[str, ...]

    @property
    def delta(self) -> float:
        return self.new_probability - self.baseline_probability

    def format_row(self) -> str:
        names = ", ".join(self.changed_features)
        return (
            f"{names:<40s} P {self.baseline_probability:.4f} -> "
            f"{self.new_probability:.4f} ({self.delta:+.4f})"
        )


def _triple_stems(name: str) -> tuple[str, str, str] | None:
    """(capacity, load, margin) names of a congestion feature, else None."""
    stem, _, suffix = name.partition("_")
    if len(stem) >= 3 and stem[0] in "ev" and stem[1] in "cld":
        family = stem[0]  # 'e' or 'v'
        layer = stem[2:]
        return (
            f"{family}c{layer}_{suffix}",
            f"{family}l{layer}_{suffix}",
            f"{family}d{layer}_{suffix}",
        )
    return None


def apply_intervention(
    x: np.ndarray, interventions: dict[str, float]
) -> tuple[np.ndarray, tuple[str, ...]]:
    """Return a counterfactual copy of ``x`` with features set by name.

    Congestion triples are kept consistent: setting a load recomputes the
    margin; setting a margin recomputes the load (capacity is hardware and
    only changes when set explicitly).
    """
    idx = feature_index()
    out = np.array(x, dtype=np.float64, copy=True)
    changed: list[str] = []
    for name, value in interventions.items():
        if name not in idx:
            raise KeyError(f"unknown feature {name!r}")
        out[idx[name]] = float(value)
        changed.append(name)
        triple = _triple_stems(name)
        if triple is None:
            continue
        cap_n, load_n, margin_n = triple
        cap, load = out[idx[cap_n]], out[idx[load_n]]
        if name == margin_n:
            # margin was set: infer the load that realises it
            out[idx[load_n]] = cap - float(value)
            changed.append(load_n)
        else:
            out[idx[margin_n]] = cap - out[idx[load_n]]
            if margin_n not in changed:
                changed.append(margin_n)
    return out, tuple(changed)


def what_if(
    model,
    x: np.ndarray,
    interventions: dict[str, float],
) -> WhatIfResult:
    """Re-score a sample under an intervention (model: predict_proba)."""
    baseline = float(model.predict_proba(np.atleast_2d(x))[0, 1])
    counterfactual, changed = apply_intervention(x, interventions)
    new = float(model.predict_proba(counterfactual[None, :])[0, 1])
    return WhatIfResult(
        baseline_probability=baseline,
        new_probability=new,
        changed_features=changed,
    )


def relief_suggestions(
    model,
    x: np.ndarray,
    shap_values: np.ndarray,
    top_k: int = 5,
) -> list[WhatIfResult]:
    """Candidate single-feature reliefs ranked by achieved probability drop.

    For each of the ``top_k`` highest positive-SHAP features, tries the
    natural relief: loads drop to half, margins return to half the
    capacity, counts drop to half — then reports the re-scored probability.
    """
    idx = feature_index()
    names = list(idx)
    order = np.argsort(-shap_values)[: top_k * 3]
    results: list[WhatIfResult] = []
    tried: set[str] = set()  # dedupe by physical quantity (one per triple)
    for j in order:
        if shap_values[j] <= 0:
            continue
        name = names[j]
        triple = _triple_stems(name)
        if triple is not None:
            cap_n, load_n, _ = triple
            if load_n in tried:
                continue
            tried.add(load_n)
            cap = x[idx[cap_n]]
            relief = {load_n: min(x[idx[load_n]], cap) / 2.0}
        else:
            if name in tried:
                continue
            tried.add(name)
            relief = {name: x[idx[name]] / 2.0}
        results.append(what_if(model, x, relief))
        if len(results) >= top_k:
            break
    results.sort(key=lambda r: r.delta)
    return results
