"""Text rendering and export of ROC / precision-recall curves.

The paper's central methodological point (Sec. III-B) is that DRC hotspot
predictors should be judged by *curves*, not single operating points.
These helpers render the P-R and ROC curves of a scored design as compact
ASCII plots (terminals are this repo's display surface) and export the
curve points for external plotting.
"""

from __future__ import annotations

import numpy as np

from ..ml.metrics import auc_roc, average_precision, pr_curve, roc_curve


def _ascii_plot(
    xs: np.ndarray,
    ys: np.ndarray,
    width: int = 61,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A dot-matrix plot of a curve over the unit square."""
    canvas = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        cx = min(int(round(x * (width - 1))), width - 1)
        cy = min(int(round(y * (height - 1))), height - 1)
        canvas[height - 1 - cy][cx] = "*"
    lines = ["1.0 +" + "".join(canvas[0])]
    for row in canvas[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 +" + "".join(canvas[-1]))
    lines.append("     " + "0" + "-" * (width - 2) + "1")
    lines.append(f"     {y_label} vs {x_label}")
    return "\n".join(lines)


def render_pr_curve(y_true: np.ndarray, scores: np.ndarray) -> str:
    """ASCII P-R curve with its area (the paper's A_prc)."""
    precision, recall, _ = pr_curve(y_true, scores)
    ap = average_precision(y_true, scores)
    plot = _ascii_plot(recall, precision, x_label="recall", y_label="precision")
    return f"P-R curve (A_prc = {ap:.4f})\n{plot}"


def render_roc_curve(y_true: np.ndarray, scores: np.ndarray) -> str:
    """ASCII ROC curve with its area."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    auc = auc_roc(y_true, scores)
    plot = _ascii_plot(fpr, tpr, x_label="FPR", y_label="TPR")
    return f"ROC curve (A_roc = {auc:.4f})\n{plot}"


def export_pr_points(y_true: np.ndarray, scores: np.ndarray) -> str:
    """The P-R curve as CSV text (threshold, recall, precision)."""
    precision, recall, thresholds = pr_curve(y_true, scores)
    lines = ["threshold,recall,precision"]
    lines += [
        f"{t:.6g},{r:.6g},{p:.6g}"
        for t, r, p in zip(thresholds, recall, precision)
    ]
    return "\n".join(lines)


def export_roc_points(y_true: np.ndarray, scores: np.ndarray) -> str:
    """The ROC curve as CSV text (threshold, fpr, tpr)."""
    fpr, tpr, thresholds = roc_curve(y_true, scores)
    lines = ["threshold,fpr,tpr"]
    lines += [
        f"{t:.6g},{f:.6g},{r:.6g}" for t, f, r in zip(thresholds, fpr, tpr)
    ]
    return "\n".join(lines)
