"""Analysis toolkit: curves, threshold sweeps, SHAP summaries, reports."""

from .calibration import CalibrationReport, ReliabilityBin, calibration_report
from .curves import (
    export_pr_points,
    export_roc_points,
    render_pr_curve,
    render_roc_curve,
)
from .report import design_report
from .shap_summary import ShapSummary, summarize_shap
from .whatif import WhatIfResult, apply_intervention, relief_suggestions, what_if
from .threshold import (
    ThresholdSweep,
    best_f1_threshold,
    sweep_thresholds,
    threshold_for_recall,
)

__all__ = [
    "CalibrationReport",
    "ReliabilityBin",
    "calibration_report",
    "export_pr_points",
    "export_roc_points",
    "render_pr_curve",
    "render_roc_curve",
    "design_report",
    "ShapSummary",
    "summarize_shap",
    "ThresholdSweep",
    "best_f1_threshold",
    "sweep_thresholds",
    "threshold_for_recall",
    "WhatIfResult",
    "apply_intervention",
    "relief_suggestions",
    "what_if",
]
