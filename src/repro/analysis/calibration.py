"""Probability calibration analysis for hotspot predictors.

The RF output "is the probability that the sample is a DRC hotspot"
(paper Sec. IV-B) and designers act on thresholds of it, so how well those
probabilities are *calibrated* matters.  This module provides

* a binned reliability table (predicted probability vs observed hotspot
  frequency per bin),
* the Brier score and its decomposition-free reference values,
* expected calibration error (ECE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ReliabilityBin:
    lo: float
    hi: float
    count: int
    mean_predicted: float
    observed_rate: float


@dataclass(frozen=True)
class CalibrationReport:
    bins: tuple[ReliabilityBin, ...]
    brier_score: float
    expected_calibration_error: float
    base_rate: float

    def format_table(self) -> str:
        header = (
            f"{'bin':>12s} {'n':>6s} {'mean pred':>10s} {'observed':>10s} {'gap':>8s}"
        )
        lines = [header, "-" * len(header)]
        for b in self.bins:
            if b.count == 0:
                continue
            gap = b.mean_predicted - b.observed_rate
            lines.append(
                f"[{b.lo:.2f},{b.hi:.2f}) {b.count:>6d} {b.mean_predicted:>10.4f} "
                f"{b.observed_rate:>10.4f} {gap:>+8.4f}"
            )
        lines.append(
            f"Brier {self.brier_score:.5f}   ECE {self.expected_calibration_error:.5f}"
            f"   base rate {self.base_rate:.5f}"
        )
        return "\n".join(lines)


def calibration_report(
    y_true: np.ndarray, probabilities: np.ndarray, n_bins: int = 10
) -> CalibrationReport:
    """Reliability analysis of predicted probabilities."""
    y = np.asarray(y_true).astype(np.float64).ravel()
    p = np.asarray(probabilities, dtype=np.float64).ravel()
    if y.shape != p.shape:
        raise ValueError("shape mismatch")
    if ((p < 0) | (p > 1)).any():
        raise ValueError("probabilities must lie in [0, 1]")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: list[ReliabilityBin] = []
    ece = 0.0
    n = len(y)
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (p >= lo) & (p < hi) if hi < 1.0 else (p >= lo) & (p <= hi)
        count = int(mask.sum())
        if count:
            mean_pred = float(p[mask].mean())
            observed = float(y[mask].mean())
            ece += count / n * abs(mean_pred - observed)
        else:
            mean_pred = observed = 0.0
        bins.append(
            ReliabilityBin(
                lo=float(lo), hi=float(hi), count=count,
                mean_predicted=mean_pred, observed_rate=observed,
            )
        )
    return CalibrationReport(
        bins=tuple(bins),
        brier_score=float(np.mean((p - y) ** 2)),
        expected_calibration_error=float(ece),
        base_rate=float(y.mean()),
    )
