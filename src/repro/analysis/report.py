"""Per-design prediction reports: the designer's early-feedback artefact.

The paper's pitch is early feedback: predict and root-cause DRC hotspots
*before* detailed routing.  :func:`design_report` assembles that feedback
for one design into a single text document: suite statistics, predictive
metrics (if ground truth is available), the operating-point table, the
P-R curve, and the top predicted hotspot locations.
"""

from __future__ import annotations

import numpy as np

from ..features.dataset import DesignDataset
from ..ml.metrics import evaluate_scores
from .calibration import calibration_report
from .curves import render_pr_curve
from .threshold import sweep_thresholds


def design_report(
    dataset: DesignDataset,
    scores: np.ndarray,
    top_k: int = 10,
    target_fpr: float = 0.005,
) -> str:
    """Full text report for one scored design."""
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.shape != (dataset.num_samples,):
        raise ValueError("scores length mismatches the dataset")

    lines = [
        f"DRC hotspot prediction report — design {dataset.name}",
        "=" * 60,
        f"samples (g-cells): {dataset.num_samples}"
        f"  grid: {dataset.grid_nx}x{dataset.grid_ny}"
        f"  actual hotspots: {dataset.num_hotspots}",
        "",
    ]

    has_metrics = 0 < dataset.num_hotspots < dataset.num_samples
    if has_metrics:
        result = evaluate_scores(dataset.y, scores, target_fpr)
        lines += [
            f"TPR* = {result.tpr_star:.4f}   Prec* = {result.prec_star:.4f}   "
            f"A_prc = {result.a_prc:.4f}   A_roc = {result.a_roc:.4f}",
            "",
            "operating points by FPR budget:",
            sweep_thresholds(dataset.y, scores).format_table(),
            "",
            render_pr_curve(dataset.y, scores),
            "",
        ]
        if ((scores >= 0) & (scores <= 1)).all():
            lines += [
                "probability calibration:",
                calibration_report(dataset.y, scores).format_table(),
                "",
            ]
    else:
        lines += ["(metrics undefined: design has no / only hotspots)", ""]

    lines.append(f"top {top_k} predicted hotspot g-cells:")
    order = np.argsort(-scores)[:top_k]
    for rank, row in enumerate(order, 1):
        cell = dataset.cell_of_sample(int(row))
        truth = "HIT " if dataset.y[row] == 1 else "miss"
        lines.append(
            f"  {rank:>2d}. g-cell {str(cell):<10s} P = {scores[row]:.4f}  [{truth}]"
        )
    return "\n".join(lines)
