"""Global SHAP summaries: aggregate per-sample attributions over a design.

The paper explains hotspots one at a time; aggregating |SHAP| over many
samples yields the *global* picture practitioners expect from the shap
package's summary plots: which features (and which feature groups — edge
congestion per layer, via congestion per layer, placement) drive the
model's hotspot predictions on a given design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features.names import feature_names


@dataclass(frozen=True)
class ShapSummary:
    """Mean-|SHAP| statistics over a sample set."""

    names: tuple[str, ...]
    mean_abs: np.ndarray  # (num_features,)
    mean_signed: np.ndarray  # (num_features,)

    def top_features(self, k: int = 15) -> list[tuple[str, float, float]]:
        """(name, mean |SHAP|, mean signed SHAP), strongest first."""
        order = np.argsort(-self.mean_abs)[:k]
        return [
            (self.names[i], float(self.mean_abs[i]), float(self.mean_signed[i]))
            for i in order
        ]

    def by_group(self) -> dict[str, float]:
        """Total mean-|SHAP| mass per feature family.

        Families: ``placement``, ``edge_M2`` .. ``edge_M5``, ``via_V1`` ..
        ``via_V4`` (M1 edges are structurally zero and grouped under
        ``edge_M1`` for completeness).
        """
        groups: dict[str, float] = {}
        for name, value in zip(self.names, self.mean_abs):
            stem = name.split("_")[0]
            if stem[:2] in ("ec", "el", "ed"):
                key = f"edge_{stem[2:]}"
            elif stem[:2] in ("vc", "vl", "vd"):
                key = f"via_{stem[2:]}"
            else:
                key = "placement"
            groups[key] = groups.get(key, 0.0) + float(value)
        return groups

    def format_report(self, k: int = 12) -> str:
        lines = ["global SHAP summary (mean |SHAP| per feature)"]
        for name, mean_abs, mean_signed in self.top_features(k):
            lines.append(f"  {name:<16s} {mean_abs:>9.5f}  (signed {mean_signed:>+9.5f})")
        lines.append("by feature family:")
        for key, value in sorted(self.by_group().items(), key=lambda t: -t[1]):
            lines.append(f"  {key:<12s} {value:>9.5f}")
        return "\n".join(lines)


def summarize_shap(shap_matrix: np.ndarray) -> ShapSummary:
    """Summary over a (n_samples, 387) SHAP matrix."""
    shap_matrix = np.atleast_2d(np.asarray(shap_matrix, dtype=np.float64))
    names = feature_names()
    if shap_matrix.shape[1] != len(names):
        raise ValueError(
            f"expected {len(names)} SHAP columns, got {shap_matrix.shape[1]}"
        )
    return ShapSummary(
        names=names,
        mean_abs=np.abs(shap_matrix).mean(axis=0),
        mean_signed=shap_matrix.mean(axis=0),
    )
