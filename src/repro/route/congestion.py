"""Congestion-map views: per-window-edge lookups and text rendering.

The feature extractor needs, for every sample window, the capacity and load
of each of the 12 window edges *on each metal layer* and of each of the 9
window cells *on each via layer*.  This module maps window-relative edges
(:data:`repro.layout.grid.WINDOW_EDGES`) onto the global arrays of a loaded
:class:`~repro.route.graph.RoutingGrid`.

Conventions:

* A window edge of orientation ``H`` (vertical boundary) only carries wires
  on *horizontal* metal layers; on vertical layers its capacity and load are
  reported as 0 (and vice versa).  The paper extracts all 12 edges on all
  five layers — 180 congestion-edge features — so the direction-mismatched
  ones are legitimately all-zero, which RF tolerates by design (Sec. III-A).
* Edges or cells padded outside the die report (0, 0).

Also provided: :func:`render_layer_congestion`, an ASCII rendition of a
layer's edge congestion around a g-cell — our stand-in for the colored
congestion plots of Fig. 3.
"""

from __future__ import annotations

import numpy as np

from ..layout.grid import GCellGrid, WindowEdge
from .graph import RoutingGrid


def window_edge_cap_load(
    rgrid: RoutingGrid,
    center: tuple[int, int],
    edge: WindowEdge,
    metal_index: int,
) -> tuple[float, float]:
    """(capacity, load) of a window edge on one metal layer.

    Returns (0, 0) for direction-mismatched layers and padded edges.
    """
    layer = rgrid.tech.metal(metal_index)
    layer_dir = "H" if layer.is_horizontal else "V"
    if layer_dir != edge.orientation:
        return (0.0, 0.0)

    ix, iy = center
    grid = rgrid.grid
    ax, ay = ix + edge.cell_a[0], iy + edge.cell_a[1]
    bx, by = ix + edge.cell_b[0], iy + edge.cell_b[1]
    if not (grid.in_bounds(ax, ay) and grid.in_bounds(bx, by)):
        return (0.0, 0.0)

    if edge.orientation == "H":  # horizontal wires, edge between (ax,ay)-(ax+1,ay)
        e = (min(ax, bx), ay)
        cap = rgrid.metal_cap[metal_index]
        load = rgrid.metal_load[metal_index]
    else:  # vertical wires, edge between (ax,ay)-(ax,ay+1)
        e = (ax, min(ay, by))
        cap = rgrid.metal_cap[metal_index]
        load = rgrid.metal_load[metal_index]
    return (float(cap[e]), float(load[e]))


def window_cell_via_cap_load(
    rgrid: RoutingGrid,
    center: tuple[int, int],
    offset: tuple[int, int],
    via_index: int,
) -> tuple[float, float]:
    """(capacity, load) of the via layer in one window cell; (0,0) if padded."""
    ix, iy = center[0] + offset[0], center[1] + offset[1]
    if not rgrid.grid.in_bounds(ix, iy):
        return (0.0, 0.0)
    return (
        float(rgrid.via_cap[via_index][ix, iy]),
        float(rgrid.via_load[via_index][ix, iy]),
    )


def utilization_map(rgrid: RoutingGrid, metal_index: int) -> np.ndarray:
    """Per-edge utilisation (load/cap, inf where cap==0 and load>0)."""
    cap = rgrid.metal_cap[metal_index].astype(float)
    load = rgrid.metal_load[metal_index]
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(
            cap > 0, load / np.maximum(cap, 1e-12), np.where(load > 0, np.inf, 0.0)
        )
    return util


_LEVELS = " .:-=+*#%@"  # low → high utilisation


def _util_char(util: float) -> str:
    if not np.isfinite(util):
        return "X"
    idx = min(int(util * (len(_LEVELS) - 1)), len(_LEVELS) - 1)
    return _LEVELS[max(idx, 0)]


def render_layer_congestion(
    rgrid: RoutingGrid,
    metal_index: int,
    center: tuple[int, int],
    radius: int = 2,
) -> str:
    """ASCII congestion picture of one layer around a g-cell (Fig. 3 analog).

    G-cells are drawn as ``[ ]`` boxes; the character between boxes encodes
    the utilisation of the edge separating them (``@`` ≈ full, ``X`` =
    blocked-but-used).  Only edges of the layer's routing direction exist.
    """
    grid: GCellGrid = rgrid.grid
    util = utilization_map(rgrid, metal_index)
    layer = rgrid.tech.metal(metal_index)
    cx, cy = center
    lines = [f"{layer.name} edge congestion around g-cell ({cx},{cy})"]
    for iy in range(cy + radius, cy - radius - 1, -1):  # top row first
        row_cells = []
        row_edges = []
        for ix in range(cx - radius, cx + radius + 1):
            mark = "o" if (ix, iy) == (cx, cy) else " "
            row_cells.append(f"[{mark}]" if grid.in_bounds(ix, iy) else "   ")
            if layer.is_horizontal and grid.in_bounds(ix, iy) and grid.in_bounds(ix + 1, iy):
                row_cells.append(_util_char(float(util[ix, iy])))
            elif ix < cx + radius:
                row_cells.append(" ")
            if not layer.is_horizontal and grid.in_bounds(ix, iy) and grid.in_bounds(ix, iy - 1):
                row_edges.append(f" {_util_char(float(util[ix, iy - 1]))}  ")
            else:
                row_edges.append("    ")
        lines.append("".join(row_cells))
        if iy > cy - radius and not layer.is_horizontal:
            lines.append("".join(row_edges))
        elif iy > cy - radius:
            lines.append("")
    return "\n".join(lines)
