"""A* maze routing on the 2-D g-cell grid.

Used by the negotiated-congestion loop for segments that stay overflowed
after pattern routing.  The search runs over g-cells with 4-connected moves;
the move cost is the current per-edge cost (wirelength + congestion penalty
+ history), and the admissible heuristic is the remaining Manhattan distance
scaled by the cheapest edge cost in the grid.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..runtime.telemetry import get_tracer


def route_maze(
    a: tuple[int, int],
    b: tuple[int, int],
    cost_h: np.ndarray,
    cost_v: np.ndarray,
) -> tuple[list[tuple[int, int]], float]:
    """Cheapest 4-connected path from ``a`` to ``b``.

    Returns ``(path, cost)``.  All edges have finite (possibly huge) cost,
    so a path always exists on a connected grid.
    """
    nx = cost_v.shape[0]
    ny = cost_h.shape[1]
    if not (0 <= a[0] < nx and 0 <= a[1] < ny and 0 <= b[0] < nx and 0 <= b[1] < ny):
        raise ValueError(f"maze endpoints {a}->{b} outside {nx}x{ny} grid")
    if a == b:
        return [a], 0.0

    INF = float("inf")
    g_cost = np.full((nx, ny), INF)
    g_cost[a] = 0.0
    parent: dict[tuple[int, int], tuple[int, int]] = {}
    # admissible heuristic: remaining Manhattan distance times the cheapest
    # edge anywhere (production costs are >= 1, but stay correct for any)
    min_edge = float(min(cost_h.min() if cost_h.size else 0.0,
                         cost_v.min() if cost_v.size else 0.0))
    min_edge = max(min_edge, 0.0)
    # heap entries: (f, g, cell); stale entries skipped via g comparison
    heap: list[tuple[float, float, tuple[int, int]]] = [
        (min_edge * (abs(a[0] - b[0]) + abs(a[1] - b[1])), 0.0, a)
    ]

    expansions = 0
    while heap:
        f, g, cell = heapq.heappop(heap)
        if g > g_cost[cell]:
            continue
        expansions += 1
        if cell == b:
            break
        x, y = cell
        # neighbours: (next cell, edge cost)
        if x + 1 < nx:
            _relax(g_cost, parent, heap, b, cell, (x + 1, y), g + cost_h[x, y], min_edge)
        if x - 1 >= 0:
            _relax(g_cost, parent, heap, b, cell, (x - 1, y), g + cost_h[x - 1, y], min_edge)
        if y + 1 < ny:
            _relax(g_cost, parent, heap, b, cell, (x, y + 1), g + cost_v[x, y], min_edge)
        if y - 1 >= 0:
            _relax(g_cost, parent, heap, b, cell, (x, y - 1), g + cost_v[x, y - 1], min_edge)

    tracer = get_tracer()
    tracer.counter("router.maze.routes")
    tracer.counter("router.maze.expansions", expansions)
    if g_cost[b] == INF:
        raise RuntimeError(f"maze route failed {a} -> {b}")
    path = [b]
    while path[-1] != a:
        path.append(parent[path[-1]])
    path.reverse()
    return path, float(g_cost[b])


def _relax(
    g_cost: np.ndarray,
    parent: dict[tuple[int, int], tuple[int, int]],
    heap: list[tuple[float, float, tuple[int, int]]],
    target: tuple[int, int],
    cur: tuple[int, int],
    nxt: tuple[int, int],
    new_g: float,
    min_edge: float,
) -> None:
    if new_g < g_cost[nxt]:
        g_cost[nxt] = new_g
        parent[nxt] = cur
        h = min_edge * (abs(nxt[0] - target[0]) + abs(nxt[1] - target[1]))
        heapq.heappush(heap, (new_g + h, new_g, nxt))
