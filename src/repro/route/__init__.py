"""Global-routing substrate: routing grid, pattern/maze routing, negotiation."""

from .congestion import (
    render_layer_congestion,
    utilization_map,
    window_cell_via_cap_load,
    window_edge_cap_load,
)
from .graph import BLOCKED_EDGE_COST, RoutingGrid
from .maze import route_maze
from .patterns import route_pattern
from .report import LayerUtilization, layer_utilizations, routing_report
from .router import (
    GlobalRouter,
    RouterConfig,
    RoutedSegment,
    RoutingResult,
    local_net_counts,
    route_design,
)
from .steiner import decompose_net, is_local, mst_segments, net_gcells

__all__ = [
    "LayerUtilization",
    "layer_utilizations",
    "routing_report",
    "render_layer_congestion",
    "utilization_map",
    "window_cell_via_cap_load",
    "window_edge_cap_load",
    "BLOCKED_EDGE_COST",
    "RoutingGrid",
    "route_maze",
    "route_pattern",
    "GlobalRouter",
    "RouterConfig",
    "RoutedSegment",
    "RoutingResult",
    "local_net_counts",
    "route_design",
    "decompose_net",
    "is_local",
    "mst_segments",
    "net_gcells",
]
