"""The 3-D global-routing grid: per-layer edge capacities and loads.

Global routing abstracts the die as a grid of g-cells.  Wires cross g-cell
boundaries on metal-layer *tracks*; each boundary edge of each layer has a
capacity ``C`` (max wires across) and a load ``L`` (wires already across).
Vias connecting layers consume via sites inside g-cells, counted per via
layer.  These C/L/(C−L) quantities per layer are exactly the congestion
features of the paper (Sec. II-A).

Conventions (used consistently by the router, features and plots):

* a **horizontal edge** ``(ix, iy)`` connects g-cells ``(ix, iy)`` and
  ``(ix+1, iy)`` — it is a *vertical boundary segment* crossed by wires of
  horizontal layers; arrays have shape ``(nx-1, ny)``;
* a **vertical edge** ``(ix, iy)`` connects ``(ix, iy)`` and ``(ix, iy+1)``
  — a *horizontal boundary* crossed by vertical-layer wires; shape
  ``(nx, ny-1)``;
* via arrays have shape ``(nx, ny)``.

The router works on the **2-D aggregated** view (capacity summed over the
layers of each direction) and a later layer-assignment step distributes the
2-D loads over individual layers; this mirrors standard GR practice and is
why the grid keeps both representations.
"""

from __future__ import annotations

import numpy as np

from ..layout.geometry import Rect
from ..layout.grid import GCellGrid
from ..layout.netlist import Design
from ..layout.technology import Technology

#: Soft-blockage cost: routing across a fully blocked edge is strongly
#: discouraged but kept finite so every net remains routable.
BLOCKED_EDGE_COST = 1.0e6


class RoutingGrid:
    """Capacity/load bookkeeping for one design's global routing."""

    def __init__(self, design: Design, grid: GCellGrid | None = None):
        self.design = design
        self.tech: Technology = design.technology
        self.grid = grid or GCellGrid.for_design_die(design.die, self.tech)
        nx, ny = self.grid.nx, self.grid.ny

        #: metal layers available to GR, split by direction
        self.h_layers = [
            m for m in self.tech.gr_metal_indices if self.tech.metal(m).is_horizontal
        ]
        self.v_layers = [
            m
            for m in self.tech.gr_metal_indices
            if not self.tech.metal(m).is_horizontal
        ]

        # per-layer capacities and loads
        self.metal_cap: dict[int, np.ndarray] = {}
        self.metal_load: dict[int, np.ndarray] = {}
        for m in range(1, self.tech.num_metal_layers + 1):
            layer = self.tech.metal(m)
            shape = (nx - 1, ny) if layer.is_horizontal else (nx, ny - 1)
            base = self.tech.edge_capacity(m) if m in self.tech.gr_metal_indices else 0
            self.metal_cap[m] = np.full(shape, base, dtype=np.int32)
            self.metal_load[m] = np.zeros(shape, dtype=np.float64)

        self.via_cap: dict[int, np.ndarray] = {}
        self.via_load: dict[int, np.ndarray] = {}
        for v in range(1, self.tech.num_via_layers + 1):
            self.via_cap[v] = np.full(
                (nx, ny), self.tech.via_capacity(v), dtype=np.int32
            )
            self.via_load[v] = np.zeros((nx, ny), dtype=np.float64)

        self._apply_blockages()

        # 2-D aggregates over GR layers (what the maze router sees)
        self.cap2d_h = sum(
            (self.metal_cap[m] for m in self.h_layers), np.zeros((nx - 1, ny))
        ).astype(np.float64)
        self.cap2d_v = sum(
            (self.metal_cap[m] for m in self.v_layers), np.zeros((nx, ny - 1))
        ).astype(np.float64)
        self.load2d_h = np.zeros((nx - 1, ny), dtype=np.float64)
        self.load2d_v = np.zeros((nx, ny - 1), dtype=np.float64)
        # negotiated-congestion history costs (grow on persistent overflow)
        self.hist_h = np.zeros((nx - 1, ny), dtype=np.float64)
        self.hist_v = np.zeros((nx, ny - 1), dtype=np.float64)

    # -- blockage handling -------------------------------------------------------

    def _edge_blocked_fraction(
        self, rect: Rect, horizontal_edges: bool
    ) -> np.ndarray:
        """Fraction (0/1) of each edge covered by a blockage rectangle.

        An edge is blocked when the boundary segment it represents lies
        inside the rectangle.  We use the segment midpoint as the test point
        — adequate because the generator snaps macros to whole g-cells.
        """
        g = self.grid
        if horizontal_edges:
            mask = np.zeros((g.nx - 1, g.ny), dtype=bool)
            for ix in range(g.nx - 1):
                x = g.die.xlo + (ix + 1) * g.size
                for iy in range(g.ny):
                    y = g.die.ylo + (iy + 0.5) * g.size
                    mask[ix, iy] = (
                        rect.xlo <= x <= rect.xhi and rect.ylo <= y <= rect.yhi
                    )
            return mask
        mask = np.zeros((g.nx, g.ny - 1), dtype=bool)
        for ix in range(g.nx):
            x = g.die.xlo + (ix + 0.5) * g.size
            for iy in range(g.ny - 1):
                y = g.die.ylo + (iy + 1) * g.size
                mask[ix, iy] = rect.xlo <= x <= rect.xhi and rect.ylo <= y <= rect.yhi
        return mask

    def _apply_blockages(self) -> None:
        """Zero the capacity of edges and vias under routing blockages."""
        g = self.grid
        for m in range(1, self.tech.num_metal_layers + 1):
            layer = self.tech.metal(m)
            for rect in self.design.routing_blockage_rects(m):
                mask = self._edge_blocked_fraction(rect, layer.is_horizontal)
                self.metal_cap[m][mask] = 0
        # a via layer is blocked where either of its metals is blocked
        for v in range(1, self.tech.num_via_layers + 1):
            blocked = np.zeros((g.nx, g.ny), dtype=bool)
            for m in (v, v + 1):
                for rect in self.design.routing_blockage_rects(m):
                    for ix in range(g.nx):
                        for iy in range(g.ny):
                            c = g.cell_center(ix, iy)
                            if rect.contains_point(c):
                                blocked[ix, iy] = True
            self.via_cap[v][blocked] = 0

    # -- 2-D load bookkeeping -------------------------------------------------------

    def add_path_load(self, path: list[tuple[int, int]], amount: float) -> None:
        """Add ``amount`` of 2-D load along a cell path (4-connected)."""
        for (ax, ay), (bx, by) in zip(path, path[1:]):
            if ay == by:  # horizontal move
                self.load2d_h[min(ax, bx), ay] += amount
            elif ax == bx:  # vertical move
                self.load2d_v[ax, min(ay, by)] += amount
            else:
                raise ValueError("path not 4-connected")

    def remove_path_load(self, path: list[tuple[int, int]], amount: float) -> None:
        self.add_path_load(path, -amount)

    # -- congestion views ---------------------------------------------------------------

    def overflow2d(self) -> float:
        """Total 2-D overflow (load above capacity), the GR quality metric."""
        over_h = np.maximum(self.load2d_h - self.cap2d_h, 0.0).sum()
        over_v = np.maximum(self.load2d_v - self.cap2d_v, 0.0).sum()
        return float(over_h + over_v)

    def edge_cost_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge traversal costs for the pattern and maze routers.

        Cost = 1 (wirelength) + quadratic congestion penalty near/above
        capacity + accumulated history cost; fully blocked edges get
        :data:`BLOCKED_EDGE_COST`.
        """

        def cost(load: np.ndarray, cap: np.ndarray, hist: np.ndarray) -> np.ndarray:
            with np.errstate(divide="ignore", invalid="ignore"):
                util = np.where(cap > 0, load / np.maximum(cap, 1e-9), np.inf)
            penalty = np.where(util < 0.6, 0.0, 4.0 * (util - 0.6) ** 2 * 10.0)
            over = np.maximum(load + 1.0 - cap, 0.0)
            c = 1.0 + penalty + 12.0 * over + hist
            return np.where(cap > 0, c, BLOCKED_EDGE_COST)

        return (
            cost(self.load2d_h, self.cap2d_h, self.hist_h),
            cost(self.load2d_v, self.cap2d_v, self.hist_v),
        )

    def bump_history(self, increment: float = 1.0) -> None:
        """Raise history cost on currently overflowed edges (PathFinder)."""
        self.hist_h[self.load2d_h > self.cap2d_h] += increment
        self.hist_v[self.load2d_v > self.cap2d_v] += increment
