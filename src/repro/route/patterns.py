"""Pattern routing: L- and Z-shaped candidate paths for two-pin segments.

Pattern routing realises the vast majority of segments in any global router;
the expensive maze search is reserved for segments that stay congested.  For
a segment from ``a`` to ``b`` we enumerate

* the two **L shapes** (horizontal-then-vertical and vertical-then-horizontal),
* all **Z shapes** with one intermediate jog strictly between the endpoints
  (both orientations),

score each candidate by the sum of per-edge costs (from
:meth:`repro.route.graph.RoutingGrid.edge_cost_arrays`), and return the
cheapest.  Straight segments short-circuit to the single straight path.
"""

from __future__ import annotations

import numpy as np


def _h_run_cost(cost_h: np.ndarray, y: int, x1: int, x2: int) -> float:
    """Cost of the horizontal run from (x1,y) to (x2,y) (inclusive cells)."""
    if x1 == x2:
        return 0.0
    lo, hi = (x1, x2) if x1 < x2 else (x2, x1)
    return float(cost_h[lo:hi, y].sum())


def _v_run_cost(cost_v: np.ndarray, x: int, y1: int, y2: int) -> float:
    if y1 == y2:
        return 0.0
    lo, hi = (y1, y2) if y1 < y2 else (y2, y1)
    return float(cost_v[x, lo:hi].sum())


def _h_cells(y: int, x1: int, x2: int) -> list[tuple[int, int]]:
    step = 1 if x2 >= x1 else -1
    return [(x, y) for x in range(x1, x2 + step, step)]


def _v_cells(x: int, y1: int, y2: int) -> list[tuple[int, int]]:
    step = 1 if y2 >= y1 else -1
    return [(x, y) for y in range(y1, y2 + step, step)]


def _join(*runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Concatenate cell runs, dropping duplicated junction cells."""
    path: list[tuple[int, int]] = []
    for run in runs:
        if path and run and run[0] == path[-1]:
            path.extend(run[1:])
        else:
            path.extend(run)
    return path


def route_pattern(
    a: tuple[int, int],
    b: tuple[int, int],
    cost_h: np.ndarray,
    cost_v: np.ndarray,
) -> tuple[list[tuple[int, int]], float]:
    """Best L/Z path from ``a`` to ``b``; returns (cell path, cost)."""
    ax, ay = a
    bx, by = b
    if a == b:
        return [a], 0.0
    if ay == by:  # straight horizontal
        return _h_cells(ay, ax, bx), _h_run_cost(cost_h, ay, ax, bx)
    if ax == bx:  # straight vertical
        return _v_cells(ax, ay, by), _v_run_cost(cost_v, ax, ay, by)

    candidates: list[tuple[float, list[tuple[int, int]]]] = []

    # L shapes
    cost_hv = _h_run_cost(cost_h, ay, ax, bx) + _v_run_cost(cost_v, bx, ay, by)
    candidates.append((cost_hv, _join(_h_cells(ay, ax, bx), _v_cells(bx, ay, by))))
    cost_vh = _v_run_cost(cost_v, ax, ay, by) + _h_run_cost(cost_h, by, ax, bx)
    candidates.append((cost_vh, _join(_v_cells(ax, ay, by), _h_cells(by, ax, bx))))

    # Z shapes with a horizontal middle run at an intermediate row
    ylo, yhi = (ay, by) if ay < by else (by, ay)
    for ym in range(ylo + 1, yhi):
        c = (
            _v_run_cost(cost_v, ax, ay, ym)
            + _h_run_cost(cost_h, ym, ax, bx)
            + _v_run_cost(cost_v, bx, ym, by)
        )
        candidates.append(
            (c, _join(_v_cells(ax, ay, ym), _h_cells(ym, ax, bx), _v_cells(bx, ym, by)))
        )
    # Z shapes with a vertical middle run at an intermediate column
    xlo, xhi = (ax, bx) if ax < bx else (bx, ax)
    for xm in range(xlo + 1, xhi):
        c = (
            _h_run_cost(cost_h, ay, ax, xm)
            + _v_run_cost(cost_v, xm, ay, by)
            + _h_run_cost(cost_h, by, xm, bx)
        )
        candidates.append(
            (c, _join(_h_cells(ay, ax, xm), _v_cells(xm, ay, by), _h_cells(by, xm, bx)))
        )

    best_cost, best_path = min(candidates, key=lambda t: t[0])
    return best_path, best_cost
