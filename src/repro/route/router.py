"""Negotiated-congestion global router with layer assignment.

This is the flow's stand-in for the Olympus-SoC signal global router.  It
follows the standard two-phase structure of academic global routers
(FastRoute/NCTU-GR style):

1. **2-D routing.**  Every signal net is decomposed into two-pin segments
   (:mod:`repro.route.steiner`); each segment is pattern-routed (L/Z) against
   congestion-aware edge costs; then a PathFinder-style negotiation loop
   rips up segments that cross overflowed edges, bumps history costs and
   re-routes them with A* maze search until overflow stops improving.
2. **Layer assignment.**  Each 2-D path is split into maximal straight runs;
   every run is assigned to the metal layer (of the matching direction) with
   the lowest resulting utilisation along the run.  Vias are accounted where
   runs change layers and where segments terminate on pins (pin-access
   stacks down to M1).  NDR nets consume ``track_cost`` tracks instead of 1.

Clock nets are routed first without negotiation (the paper's flow pre-routes
clock before signal GR), and purely local nets consume pin-access vias only.

The output is the fully loaded :class:`~repro.route.graph.RoutingGrid` —
capacity/load per edge per metal layer and per g-cell per via layer — which
is exactly the congestion map the paper extracts features from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..layout.grid import GCellGrid
from ..layout.netlist import Design, Net
from ..runtime.telemetry import get_tracer
from .graph import RoutingGrid
from .maze import route_maze
from .patterns import route_pattern
from .steiner import decompose_net, net_gcells


@dataclass(frozen=True)
class RouterConfig:
    """Global-router knobs."""

    #: negotiation iterations after the initial pattern pass
    negotiation_iterations: int = 5
    #: history cost added to overflowed edges each iteration
    history_increment: float = 1.5
    #: stop negotiating when overflow improves less than this fraction
    min_improvement: float = 0.02


@dataclass
class RoutedSegment:
    """One two-pin segment of a routed net."""

    net: Net
    a: tuple[int, int]
    b: tuple[int, int]
    demand: float
    path: list[tuple[int, int]] = field(default_factory=list)

    def crosses_overflow(self, rgrid: RoutingGrid) -> bool:
        for (ax, ay), (bx, by) in zip(self.path, self.path[1:]):
            if ay == by:
                if rgrid.load2d_h[min(ax, bx), ay] > rgrid.cap2d_h[min(ax, bx), ay]:
                    return True
            else:
                if rgrid.load2d_v[ax, min(ay, by)] > rgrid.cap2d_v[ax, min(ay, by)]:
                    return True
        return False


@dataclass
class RoutingResult:
    """Everything downstream stages need from global routing."""

    rgrid: RoutingGrid
    segments: list[RoutedSegment]
    overflow_history: list[float]
    runtime_sec: float

    @property
    def final_overflow(self) -> float:
        return self.overflow_history[-1] if self.overflow_history else 0.0

    @property
    def total_wirelength(self) -> int:
        return sum(max(len(s.path) - 1, 0) for s in self.segments)


class GlobalRouter:
    """Routes one placed design."""

    def __init__(
        self,
        design: Design,
        grid: GCellGrid | None = None,
        config: RouterConfig | None = None,
    ):
        if not design.is_placed:
            raise ValueError(f"design {design.name} must be placed before routing")
        self.design = design
        self.config = config or RouterConfig()
        self.rgrid = RoutingGrid(design, grid)

    # -- public API ----------------------------------------------------------------

    def run(self) -> RoutingResult:
        tracer = get_tracer()
        start = time.perf_counter()
        segments = self._build_segments()
        overflow_history: list[float] = []

        # Initial pattern pass, shortest segments first so long nets see the
        # congestion that short, inflexible nets create.
        with tracer.span("pattern_pass"):
            segments.sort(key=lambda s: abs(s.a[0] - s.b[0]) + abs(s.a[1] - s.b[1]))
            cost_h, cost_v = self.rgrid.edge_cost_arrays()
            for i, seg in enumerate(segments):
                seg.path, _ = route_pattern(seg.a, seg.b, cost_h, cost_v)
                self.rgrid.add_path_load(seg.path, seg.demand)
                if (i + 1) % 128 == 0:  # refresh congestion view periodically
                    cost_h, cost_v = self.rgrid.edge_cost_arrays()
            overflow_history.append(self.rgrid.overflow2d())

        # PathFinder negotiation.
        iterations = ripped_up = 0
        with tracer.span("negotiation") as neg_span:
            for _ in range(self.config.negotiation_iterations):
                before = overflow_history[-1]
                if before == 0.0:
                    break
                iterations += 1
                self.rgrid.bump_history(self.config.history_increment)
                victims = [s for s in segments if s.crosses_overflow(self.rgrid)]
                ripped_up += len(victims)
                for seg in victims:
                    self.rgrid.remove_path_load(seg.path, seg.demand)
                    cost_h, cost_v = self.rgrid.edge_cost_arrays()
                    seg.path, _ = route_maze(seg.a, seg.b, cost_h, cost_v)
                    self.rgrid.add_path_load(seg.path, seg.demand)
                after = self.rgrid.overflow2d()
                overflow_history.append(after)
                if before > 0 and (before - after) / before < self.config.min_improvement:
                    break
            neg_span.set(iterations=iterations, ripped_up=ripped_up,
                         overflow_final=overflow_history[-1])

        with tracer.span("layer_assignment"):
            self._assign_layers(segments)
            self._account_pin_access_vias()
        tracer.counter("router.negotiation.iterations", iterations)
        tracer.counter("router.ripup.segments", ripped_up)
        tracer.gauge("router.overflow.final", overflow_history[-1])
        runtime = time.perf_counter() - start
        return RoutingResult(
            rgrid=self.rgrid,
            segments=segments,
            overflow_history=overflow_history,
            runtime_sec=runtime,
        )

    # -- segment construction ----------------------------------------------------------

    def _net_demand(self, net: Net) -> float:
        if net.ndr is None:
            return 1.0
        return float(self.design.technology.ndr(net.ndr).track_cost)

    def _build_segments(self) -> list[RoutedSegment]:
        grid = self.rgrid.grid
        segments: list[RoutedSegment] = []
        # clock nets first: pre-routed, same machinery, negotiated like the rest
        ordered = [n for n in self.design.nets if n.is_clock and n.degree >= 2]
        ordered += self.design.signal_nets()
        for net in ordered:
            demand = self._net_demand(net)
            for a, b in decompose_net(net, grid):
                segments.append(RoutedSegment(net=net, a=a, b=b, demand=demand))
        return segments

    # -- layer assignment ------------------------------------------------------------------

    @staticmethod
    def _straight_runs(
        path: list[tuple[int, int]],
    ) -> list[tuple[str, list[tuple[int, int]]]]:
        """Split a 4-connected path into maximal straight runs.

        Returns (direction, cells) with direction 'H' or 'V'; a run's cells
        include both endpoints.
        """
        if len(path) < 2:
            return []
        runs: list[tuple[str, list[tuple[int, int]]]] = []
        cur_dir = "H" if path[1][1] == path[0][1] else "V"
        cur = [path[0], path[1]]
        for nxt in path[2:]:
            d = "H" if nxt[1] == cur[-1][1] else "V"
            if d == cur_dir:
                cur.append(nxt)
            else:
                runs.append((cur_dir, cur))
                cur = [cur[-1], nxt]
                cur_dir = d
        runs.append((cur_dir, cur))
        return runs

    def _run_edges(
        self, direction: str, cells: list[tuple[int, int]]
    ) -> list[tuple[int, int]]:
        """Edge array indices touched by a straight run."""
        edges = []
        for (ax, ay), (bx, by) in zip(cells, cells[1:]):
            if direction == "H":
                edges.append((min(ax, bx), ay))
            else:
                edges.append((ax, min(ay, by)))
        return edges

    def _choose_layer(
        self, direction: str, edges: list[tuple[int, int]], demand: float
    ) -> int:
        """Pick the least-utilised metal layer of the given direction."""
        rgrid = self.rgrid
        layers = rgrid.h_layers if direction == "H" else rgrid.v_layers
        best_layer, best_util = layers[-1], float("inf")
        for m in layers:
            cap = rgrid.metal_cap[m]
            load = rgrid.metal_load[m]
            util = 0.0
            for e in edges:
                c = cap[e]
                if c <= 0:
                    util = float("inf")
                    break
                util = max(util, (load[e] + demand) / c)
            if util < best_util:
                best_layer, best_util = m, util
        if best_util == float("inf"):
            # every candidate blocked somewhere along the run: use the top
            # layer of this direction (top layers are blocked least often)
            best_layer = layers[-1]
        return best_layer

    def _add_via_stack(self, cell: tuple[int, int], m_lo: int, m_hi: int, demand: float) -> None:
        """Load the via layers connecting metals ``m_lo``..``m_hi`` at a cell."""
        if m_lo > m_hi:
            m_lo, m_hi = m_hi, m_lo
        for v in range(m_lo, m_hi):
            self.rgrid.via_load[v][cell] += demand

    def _assign_layers(self, segments: list[RoutedSegment]) -> None:
        for seg in segments:
            runs = self._straight_runs(seg.path)
            if not runs:
                continue
            run_layers: list[int] = []
            for direction, cells in runs:
                edges = self._run_edges(direction, cells)
                layer = self._choose_layer(direction, edges, seg.demand)
                load = self.rgrid.metal_load[layer]
                for e in edges:
                    load[e] += seg.demand
                run_layers.append(layer)
            # pin-access stacks at both segment endpoints (M1 up to wire layer)
            self._add_via_stack(seg.path[0], 1, run_layers[0], seg.demand)
            self._add_via_stack(seg.path[-1], 1, run_layers[-1], seg.demand)
            # bend vias where consecutive runs meet on different layers
            for (d1, cells1), l1, (_, _), l2 in zip(
                runs, run_layers, runs[1:], run_layers[1:]
            ):
                bend_cell = cells1[-1]
                self._add_via_stack(bend_cell, l1, l2, seg.demand)

    # -- pin access for unrouted pins ----------------------------------------------------------

    def _account_pin_access_vias(self) -> None:
        """Every placed pin consumes one V1 pin-access via in its g-cell.

        This covers local nets (never seen by GR) and the M1-M2 escape of
        every routed pin, making V1/V2 congestion track pin density — the
        mechanism behind the paper's via-congestion features.
        """
        grid = self.rgrid.grid
        v1 = self.rgrid.via_load[1]
        for net in self.design.nets:
            for pin in net.pins:
                v1[grid.cell_of_point(pin.position)] += 1.0


def route_design(
    design: Design,
    grid: GCellGrid | None = None,
    config: RouterConfig | None = None,
) -> RoutingResult:
    """Globally route a placed design and return the loaded routing grid."""
    return GlobalRouter(design, grid, config).run()


def local_net_counts(design: Design, grid: GCellGrid) -> dict[tuple[int, int], int]:
    """Number of local nets per g-cell (a paper feature; routing-free query)."""
    counts: dict[tuple[int, int], int] = {}
    for net in design.nets:
        cells = net_gcells(net, grid)
        if len(cells) == 1:
            counts[cells[0]] = counts.get(cells[0], 0) + 1
    return counts
