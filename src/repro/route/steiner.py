"""Net decomposition: pins → g-cells → two-pin routing segments.

Global routers rarely route multi-pin nets monolithically; the standard
approach (which we follow) decomposes each net into a tree of two-pin
segments.  We use the rectilinear minimum spanning tree over the net's
distinct pin g-cells under Manhattan distance — for the small net degrees of
our designs (≤ 9 distinct cells) Prim's algorithm is exact and instant, and
an RMST is a ≤1.5× approximation of the rectilinear Steiner minimal tree,
which is plenty for congestion modelling.
"""

from __future__ import annotations

from ..layout.grid import GCellGrid
from ..layout.netlist import Net


def net_gcells(net: Net, grid: GCellGrid) -> list[tuple[int, int]]:
    """Distinct g-cells touched by a net's pins, in deterministic order."""
    seen: dict[tuple[int, int], None] = {}
    for pin in net.pins:
        seen.setdefault(grid.cell_of_point(pin.position), None)
    return list(seen.keys())


def is_local(net: Net, grid: GCellGrid) -> bool:
    """True when all pins fall in one g-cell (the paper's *local net*)."""
    return len(net_gcells(net, grid)) == 1


def mst_segments(
    cells: list[tuple[int, int]],
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Two-pin segments forming the Manhattan MST over ``cells``.

    Returns ``len(cells) - 1`` segments; empty for 0 or 1 cells.  Prim's
    algorithm, O(k²) with k = number of distinct cells.
    """
    k = len(cells)
    if k < 2:
        return []
    in_tree = [False] * k
    dist = [float("inf")] * k
    parent = [-1] * k
    dist[0] = 0.0
    segments: list[tuple[tuple[int, int], tuple[int, int]]] = []
    for _ in range(k):
        # pick the nearest out-of-tree cell
        best, best_d = -1, float("inf")
        for i in range(k):
            if not in_tree[i] and dist[i] < best_d:
                best, best_d = i, dist[i]
        in_tree[best] = True
        if parent[best] >= 0:
            segments.append((cells[parent[best]], cells[best]))
        bx, by = cells[best]
        for i in range(k):
            if in_tree[i]:
                continue
            d = abs(cells[i][0] - bx) + abs(cells[i][1] - by)
            if d < dist[i]:
                dist[i] = d
                parent[i] = best
    return segments


def decompose_net(
    net: Net, grid: GCellGrid
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """Two-pin g-cell segments the global router must realise for ``net``."""
    return mst_segments(net_gcells(net, grid))
