"""Global-routing quality report.

Summarises a :class:`~repro.route.router.RoutingResult` the way router
logs do: total/overflowed wirelength, negotiation convergence, per-layer
edge utilisation and via utilisation — the quantities a routability
engineer checks before trusting downstream predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .router import RoutingResult


@dataclass(frozen=True)
class LayerUtilization:
    layer: str
    capacity: float
    load: float
    overflowed_edges: int

    @property
    def utilization(self) -> float:
        return self.load / self.capacity if self.capacity > 0 else 0.0


def layer_utilizations(result: RoutingResult) -> list[LayerUtilization]:
    """Per-metal-layer and per-via-layer utilisation summary."""
    rg = result.rgrid
    out: list[LayerUtilization] = []
    for m in sorted(rg.metal_cap):
        cap = rg.metal_cap[m]
        load = rg.metal_load[m]
        out.append(
            LayerUtilization(
                layer=f"M{m}",
                capacity=float(cap.sum()),
                load=float(load.sum()),
                overflowed_edges=int(np.sum(load > cap)),
            )
        )
    for v in sorted(rg.via_cap):
        cap = rg.via_cap[v]
        load = rg.via_load[v]
        out.append(
            LayerUtilization(
                layer=f"V{v}",
                capacity=float(cap.sum()),
                load=float(load.sum()),
                overflowed_edges=int(np.sum(load > cap)),
            )
        )
    return out


def routing_report(result: RoutingResult, design_name: str = "") -> str:
    """Router-log style text summary of one GR run."""
    rg = result.rgrid
    lines = [
        f"global routing report{' — ' + design_name if design_name else ''}",
        "=" * 56,
        f"segments routed     : {len(result.segments)}",
        f"total wirelength    : {result.total_wirelength} g-cell edges",
        f"overflow history    : "
        + " -> ".join(f"{v:.0f}" for v in result.overflow_history),
        f"final 2-D overflow  : {result.final_overflow:.0f}",
        f"runtime             : {result.runtime_sec:.2f} s",
        "",
        f"{'layer':>6s} {'capacity':>10s} {'load':>10s} {'util':>7s} {'ovfl edges':>11s}",
    ]
    for row in layer_utilizations(result):
        lines.append(
            f"{row.layer:>6s} {row.capacity:>10.0f} {row.load:>10.0f} "
            f"{row.utilization:>6.1%} {row.overflowed_edges:>11d}"
        )
    return "\n".join(lines)
