"""Track-stress model: how close each g-cell is to detailed-routing failure.

The detailed router has, per g-cell and per metal layer, a finite set of
tracks.  Demand on those tracks comes from

* **through-wires** — the GR load on the edges adjacent to the cell,
* **detour spill** — where GR left an edge overflowed, the detailed router
  must squeeze the excess through the neighbourhood; overflow therefore
  spills stress into the adjacent cells and, attenuated, into *their*
  neighbours (this cross-cell coupling is why the paper's 3×3 window
  features carry signal),
* **pin blockage** — on the lower layers, pin geometry blocks track
  segments, so pin-dense cells lose capacity.

``stress = demand / track_capacity`` per (cell, layer); values near or above
1.0 are where the simulated detailed router starts producing violations.
Via-site utilisation per (cell, via layer) is reported alongside, since via
crowding drives EOL violations (cf. the paper's hotspot (b) validation).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from ..layout.geometry import Point
from ..layout.placemap import PlacementMaps
from ..route.graph import RoutingGrid

#: fraction of a track blocked per pin, by metal layer index
_PIN_BLOCKAGE_PER_LAYER = {1: 0.20, 2: 0.04}


def _adjacent_edge_stats(
    load: np.ndarray, cap: np.ndarray, horizontal: bool, nx: int, ny: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell mean adjacent-edge load and total adjacent-edge overflow."""
    through = np.zeros((nx, ny))
    overflow_in = np.zeros((nx, ny))
    over = np.maximum(load - cap, 0.0)
    if horizontal:  # edges (ix, iy): (ix,iy)-(ix+1,iy)
        counts = np.zeros((nx, ny))
        through[:-1, :] += load
        through[1:, :] += load
        counts[:-1, :] += 1
        counts[1:, :] += 1
        through /= np.maximum(counts, 1.0)
        overflow_in[:-1, :] += 0.5 * over
        overflow_in[1:, :] += 0.5 * over
    else:  # edges (ix, iy): (ix,iy)-(ix,iy+1)
        counts = np.zeros((nx, ny))
        through[:, :-1] += load
        through[:, 1:] += load
        counts[:, :-1] += 1
        counts[:, 1:] += 1
        through /= np.maximum(counts, 1.0)
        overflow_in[:, :-1] += 0.5 * over
        overflow_in[:, 1:] += 0.5 * over
    return through, overflow_in


class TrackStressModel:
    """Computes per-layer stress and via utilisation for one routed design."""

    def __init__(self, rgrid: RoutingGrid, placemaps: PlacementMaps):
        self.rgrid = rgrid
        self.placemaps = placemaps
        self.grid = rgrid.grid
        self._stress: dict[int, np.ndarray] | None = None
        self._via_util: dict[int, np.ndarray] | None = None

    # -- public API -----------------------------------------------------------------

    def layer_stress(self) -> dict[int, np.ndarray]:
        """Stress per metal layer: dict metal index → (nx, ny) array."""
        if self._stress is None:
            self._stress = self._compute_stress()
        return self._stress

    def via_utilization(self) -> dict[int, np.ndarray]:
        """Utilisation per via layer: dict via index → (nx, ny) array."""
        if self._via_util is None:
            self._via_util = self._compute_via_util()
        return self._via_util

    # -- internals ---------------------------------------------------------------------

    def _compute_stress(self) -> dict[int, np.ndarray]:
        rgrid = self.rgrid
        tech = rgrid.tech
        nx, ny = self.grid.nx, self.grid.ny
        pins = self.placemaps.num_pins.astype(float)
        stress: dict[int, np.ndarray] = {}
        for m in range(1, tech.num_metal_layers + 1):
            layer = tech.metal(m)
            base_cap = float(tech.edge_capacity(m)) if m in tech.gr_metal_indices else float(
                tech.gcell_size / layer.pitch
            )
            through, overflow_in = _adjacent_edge_stats(
                rgrid.metal_load[m],
                rgrid.metal_cap[m].astype(float),
                layer.is_horizontal,
                nx,
                ny,
            )
            # detours spread one g-cell further out with attenuation
            spill = overflow_in + 0.6 * uniform_filter(overflow_in, size=3, mode="constant")
            demand = through + spill
            demand += _PIN_BLOCKAGE_PER_LAYER.get(m, 0.0) * pins
            # capacity lost to blockages (macros) — stress spikes at macro edges
            cap = base_cap * (1.0 - self._blockage_derate(m))
            stress[m] = demand / np.maximum(cap, 0.25 * base_cap)
        return stress

    def _blockage_derate(self, metal_index: int) -> np.ndarray:
        """Fraction of the cell's tracks lost to routing blockages."""
        nx, ny = self.grid.nx, self.grid.ny
        derate = np.zeros((nx, ny))
        rects = self.rgrid.design.routing_blockage_rects(metal_index)
        if not rects:
            return derate
        inv_area = 1.0 / (self.grid.size**2)
        for rect in rects:
            lo = self.grid.cell_of_point(Point(rect.xlo, rect.ylo))
            hi = self.grid.cell_of_point(Point(rect.xhi - 1e-9, rect.yhi - 1e-9))
            for ix in range(lo[0], hi[0] + 1):
                for iy in range(lo[1], hi[1] + 1):
                    derate[ix, iy] += (
                        self.grid.cell_bbox(ix, iy).overlap_area(rect) * inv_area
                    )
        return np.clip(derate, 0.0, 0.95)

    def _compute_via_util(self) -> dict[int, np.ndarray]:
        rgrid = self.rgrid
        util: dict[int, np.ndarray] = {}
        for v in range(1, rgrid.tech.num_via_layers + 1):
            cap = rgrid.via_cap[v].astype(float)
            base = float(rgrid.tech.via_capacity(v))
            util[v] = rgrid.via_load[v] / np.maximum(cap, 0.25 * base)
        return util
