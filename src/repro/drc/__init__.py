"""DRC substrate: track-stress model, detailed-routing simulator, checker, labels."""

from .checker import DRCReport, Violation, ViolationType
from .detailed import DetailedRoutingSimulator, DRCSimConfig, simulate_drc
from .labels import hotspot_cells, hotspot_labels
from .tracks import TrackStressModel

__all__ = [
    "DRCReport",
    "Violation",
    "ViolationType",
    "DetailedRoutingSimulator",
    "DRCSimConfig",
    "simulate_drc",
    "hotspot_cells",
    "hotspot_labels",
    "TrackStressModel",
]
