"""DRC violations and reports.

A :class:`Violation` carries the information the paper's flow gets from the
sign-off checker: a rule type, the layer, and the error's **bounding box**.
The paper labels a g-cell a *DRC hotspot* iff it overlaps any violation
bounding box (Sec. II-A); :meth:`DRCReport.hotspot_mask` implements exactly
that rule, including boxes straddling several g-cells.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..layout.geometry import Point, Rect
from ..layout.grid import GCellGrid


class ViolationType(Enum):
    """The violation classes our simulated checker emits.

    These match the types the paper reports in its Fig. 3 validation:
    shorts, (different-net) spacing errors and end-of-line (EOL) spacing
    errors.
    """

    SHORT = "short"
    SPACING = "spacing"
    EOL = "end_of_line"


@dataclass(frozen=True, slots=True)
class Violation:
    """One DRC error as the checker reports it."""

    vtype: ViolationType
    layer: str  # e.g. "M3" or "V2"
    bbox: Rect

    def describe(self) -> str:
        return f"{self.vtype.value} in {self.layer} at {self.bbox.as_tuple()}"


@dataclass
class DRCReport:
    """All violations of one design, with g-cell level queries."""

    design_name: str
    violations: list[Violation]

    @property
    def num_violations(self) -> int:
        return len(self.violations)

    def counts_by_type(self) -> dict[ViolationType, int]:
        return dict(Counter(v.vtype for v in self.violations))

    def counts_by_layer(self) -> dict[str, int]:
        return dict(Counter(v.layer for v in self.violations))

    def hotspot_mask(self, grid: GCellGrid) -> np.ndarray:
        """Boolean (nx, ny) array: True where the g-cell is a DRC hotspot.

        A g-cell is a hotspot iff it overlaps at least one violation
        bounding box — the paper's labelling rule.
        """
        mask = np.zeros((grid.nx, grid.ny), dtype=bool)
        for v in self.violations:
            lo = grid.cell_of_point(Point(v.bbox.xlo, v.bbox.ylo))
            hi = grid.cell_of_point(Point(v.bbox.xhi, v.bbox.yhi))
            # widen the candidate range by one cell: a box *touching* a
            # boundary overlaps the cell on the other side too (closed
            # rectangles), but cell_of_point assigns the boundary to one side
            for ix in range(max(lo[0] - 1, 0), min(hi[0] + 2, grid.nx)):
                for iy in range(max(lo[1] - 1, 0), min(hi[1] + 2, grid.ny)):
                    if grid.cell_bbox(ix, iy).overlaps(v.bbox):
                        mask[ix, iy] = True
        return mask

    def num_hotspots(self, grid: GCellGrid) -> int:
        return int(self.hotspot_mask(grid).sum())

    def violations_in_cell(self, grid: GCellGrid, cell: tuple[int, int]) -> list[Violation]:
        """Violations whose bounding box overlaps the given g-cell."""
        bbox = grid.cell_bbox(*cell)
        return [v for v in self.violations if bbox.overlaps(v.bbox)]

    def describe_cell(self, grid: GCellGrid, cell: tuple[int, int]) -> str:
        """Fig.-3-style summary of the actual DRC errors at one g-cell."""
        found = self.violations_in_cell(grid, cell)
        if not found:
            return f"g-cell {cell}: no DRC errors"
        by_kind = Counter((v.vtype.value, v.layer) for v in found)
        parts = [f"{n} {kind} in {layer}" for (kind, layer), n in sorted(by_kind.items())]
        return f"g-cell {cell}: " + ", ".join(parts)
