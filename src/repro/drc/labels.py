"""Label extraction: DRC report → per-sample binary labels.

A sample is positive iff its *central* g-cell is a DRC hotspot, i.e. the
g-cell overlaps at least one DRC-error bounding box (paper Sec. II-A).
Labels are returned in the grid's raster order, matching the feature
extractor's sample order.
"""

from __future__ import annotations

import numpy as np

from ..layout.grid import GCellGrid
from .checker import DRCReport


def hotspot_labels(report: DRCReport, grid: GCellGrid) -> np.ndarray:
    """Binary label vector (int8) over all g-cells in raster order."""
    mask = report.hotspot_mask(grid)
    labels = np.zeros(grid.num_cells, dtype=np.int8)
    for ix, iy in grid.iter_cells():
        labels[grid.flat_index(ix, iy)] = 1 if mask[ix, iy] else 0
    return labels


def hotspot_cells(report: DRCReport, grid: GCellGrid) -> list[tuple[int, int]]:
    """Grid indices of all hotspot g-cells, raster order."""
    mask = report.hotspot_mask(grid)
    return [(ix, iy) for ix, iy in grid.iter_cells() if mask[ix, iy]]
