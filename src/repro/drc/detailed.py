"""Detailed-routing simulator: turns track stress into DRC violations.

The paper obtains labels by actually detail-routing every design with
Olympus-SoC and collecting the checker's error boxes.  We cannot run a
commercial router, so this module simulates the *outcome* of detailed
routing with a mechanistic noise model on top of the track-stress maps
(:mod:`repro.drc.tracks`):

* **shorts** appear on a layer where track stress substantially exceeds
  capacity — the router is forced to double-book a track
  (rate ∝ max(stress − 0.95, 0)²);
* **different-net spacing** errors appear already near capacity, earlier
  for cells rich in NDR pins (wide wires eat spacing margin);
* **end-of-line (EOL)** errors on metal ``m`` are driven by via crowding on
  the adjacent via layers (dense via landings break EOL enclosure — exactly
  the mechanism the paper validates for its hotspot (b));
* **pin-access shorts** on M2 appear in cells whose pin count is high and
  whose pins sit close together (small mean pin spacing).

Counts are sampled Poisson per (g-cell, layer, rule) from a deterministic
per-design RNG, so labels are *stochastic but reproducible*, and — like real
DRC data — not a deterministic function of the features.  Each violation
gets a small bounding box; a fraction of boxes straddle a g-cell border, so
hotspot labels can spread to neighbouring cells like real error boxes do.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..layout.geometry import Rect
from ..layout.grid import GCellGrid
from ..layout.netlist import Design
from ..layout.placemap import PlacementMaps
from ..route.graph import RoutingGrid
from .checker import DRCReport, Violation, ViolationType
from .tracks import TrackStressModel


@dataclass(frozen=True)
class DRCSimConfig:
    """Rates of the violation model (tuned to yield Table-I-like spreads)."""

    short_rate: float = 1.4
    short_threshold: float = 1.15
    spacing_rate: float = 0.9
    spacing_threshold: float = 1.0
    eol_rate: float = 0.8
    eol_threshold: float = 1.9
    pin_short_rate: float = 0.5
    pin_count_threshold: float = 26.0
    #: probability that an error box straddles into a neighbouring g-cell
    straddle_prob: float = 0.25
    #: box half-size as a fraction of the g-cell size
    box_frac: float = 0.12


def _design_seed(design_name: str) -> int:
    """Stable RNG seed derived from the design name."""
    digest = hashlib.sha256(design_name.encode()).digest()
    return int.from_bytes(digest[:4], "little")


class DetailedRoutingSimulator:
    """Simulates detailed routing + DRC for one globally routed design."""

    def __init__(
        self,
        design: Design,
        rgrid: RoutingGrid,
        placemaps: PlacementMaps,
        config: DRCSimConfig | None = None,
    ):
        self.design = design
        self.rgrid = rgrid
        self.grid: GCellGrid = rgrid.grid
        self.placemaps = placemaps
        self.config = config or DRCSimConfig()
        self.rng = np.random.default_rng(_design_seed(design.name))

    # -- public API ---------------------------------------------------------------

    def run(self) -> DRCReport:
        """Simulate detailed routing and return the DRC report."""
        model = TrackStressModel(self.rgrid, self.placemaps)
        stress = model.layer_stress()
        via_util = model.via_utilization()
        cfg = self.config
        tech = self.design.technology
        violations: list[Violation] = []

        for m in tech.gr_metal_indices:
            s = stress[m]
            # shorts: forced track double-booking well above capacity
            lam_short = cfg.short_rate * np.maximum(s - cfg.short_threshold, 0.0) ** 2
            violations += self._sample(lam_short, ViolationType.SHORT, f"M{m}")
            # spacing: margin erosion near capacity, worse with NDR pins
            ndr_boost = 1.0 + 0.15 * self.placemaps.num_ndr_pins
            lam_sp = (
                cfg.spacing_rate
                * np.maximum(s - cfg.spacing_threshold, 0.0)
                * ndr_boost
            )
            violations += self._sample(lam_sp, ViolationType.SPACING, f"M{m}")
            # EOL: via crowding on the via layers touching this metal
            vu = np.zeros_like(s)
            if m - 1 >= 1 and m - 1 <= tech.num_via_layers:
                vu = vu + via_util[m - 1]
            if m <= tech.num_via_layers:
                vu = vu + via_util[m]
            lam_eol = cfg.eol_rate * np.maximum(vu - cfg.eol_threshold, 0.0)
            violations += self._sample(lam_eol, ViolationType.EOL, f"M{m}")

        # pin-access shorts on M2: many pins packed tightly
        pins = self.placemaps.num_pins.astype(float)
        spacing = self.placemaps.pin_spacing
        tight = np.where(
            (spacing > 0) & (spacing < 0.35 * self.grid.size), 1.5, 1.0
        )
        lam_pin = (
            cfg.pin_short_rate
            * np.maximum(pins - cfg.pin_count_threshold, 0.0)
            / cfg.pin_count_threshold
            * tight
        )
        violations += self._sample(lam_pin, ViolationType.SHORT, "M2")

        return DRCReport(design_name=self.design.name, violations=violations)

    # -- sampling --------------------------------------------------------------------

    def _sample(
        self, lam: np.ndarray, vtype: ViolationType, layer: str
    ) -> list[Violation]:
        """Poisson-sample violation counts per g-cell and materialise boxes."""
        counts = self.rng.poisson(np.maximum(lam, 0.0))
        out: list[Violation] = []
        for ix, iy in zip(*np.nonzero(counts)):
            for _ in range(int(counts[ix, iy])):
                out.append(
                    Violation(vtype=vtype, layer=layer, bbox=self._box(int(ix), int(iy)))
                )
        return out

    def _box(self, ix: int, iy: int) -> Rect:
        """A small error box inside the g-cell, sometimes straddling a border."""
        cfg = self.config
        cell = self.grid.cell_bbox(ix, iy)
        half = cfg.box_frac * self.grid.size
        cx = float(self.rng.uniform(cell.xlo + half, cell.xhi - half))
        cy = float(self.rng.uniform(cell.ylo + half, cell.yhi - half))
        if self.rng.random() < cfg.straddle_prob:
            # push the box across a random border (clipped to the die)
            direction = int(self.rng.integers(0, 4))
            shift = 0.8 * self.grid.size * cfg.box_frac + half
            if direction == 0:
                cx = cell.xhi - half / 2 + shift
            elif direction == 1:
                cx = cell.xlo + half / 2 - shift
            elif direction == 2:
                cy = cell.yhi - half / 2 + shift
            else:
                cy = cell.ylo + half / 2 - shift
        box = Rect(cx - half, cy - half, cx + half, cy + half)
        clipped = box.intersection(self.grid.die)
        return clipped if clipped is not None else box


def simulate_drc(
    design: Design,
    rgrid: RoutingGrid,
    placemaps: PlacementMaps,
    config: DRCSimConfig | None = None,
) -> DRCReport:
    """Run the detailed-routing + DRC simulation for one design."""
    return DetailedRoutingSimulator(design, rgrid, placemaps, config).run()
