"""Technology description: metal/via layer stack, track geometry, design rules.

The paper targets a 65 nm flow with **five routing layers** (M1..M5) and the
four via layers between them (V1..V4).  In our substrate M1 is reserved for
intra-cell pin access, so signal global routing uses M2..M5 — matching the
congestion-feature layers the paper's Fig. 3/4 reference (edM3/edM4/edM5 edge
congestion, v1V2/v1V3 via congestion).

A :class:`Technology` instance carries everything downstream stages need:

* routing direction and track pitch per metal layer (alternating H/V),
* per-g-cell-edge wire capacity and per-g-cell via capacity,
* the simplified DRC rule set the checker enforces (spacing, end-of-line),
* non-default-rule (NDR) definitions: NDR nets consume extra tracks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Routing direction constants.
HORIZONTAL = "H"
VERTICAL = "V"


@dataclass(frozen=True, slots=True)
class MetalLayer:
    """One metal routing layer.

    ``index`` is 1-based (M1 has index 1).  ``direction`` is the preferred
    routing direction; the global router only uses the preferred direction,
    as is standard for GR capacity models.
    """

    index: int
    direction: str
    pitch: float  # track-to-track pitch in DBU
    width: float  # default wire width in DBU
    spacing: float  # minimum same-layer spacing in DBU
    eol_space: float  # end-of-line spacing rule in DBU

    @property
    def name(self) -> str:
        return f"M{self.index}"

    @property
    def is_horizontal(self) -> bool:
        return self.direction == HORIZONTAL


@dataclass(frozen=True, slots=True)
class ViaLayer:
    """A via (cut) layer connecting metal ``index`` and ``index + 1``."""

    index: int  # V1 connects M1-M2
    spacing: float  # minimum via-to-via spacing in DBU

    @property
    def name(self) -> str:
        return f"V{self.index}"

    @property
    def lower_metal(self) -> int:
        return self.index

    @property
    def upper_metal(self) -> int:
        return self.index + 1


@dataclass(frozen=True, slots=True)
class NonDefaultRule:
    """A non-default routing rule.

    Nets tagged with an NDR use wider wire and spacing, therefore consuming
    ``track_cost`` routing tracks instead of 1 — that is how NDRs make
    congestion (and DRC risk) worse, which is why the paper counts NDR pins
    as a feature.
    """

    name: str
    width_multiplier: float
    spacing_multiplier: float

    @property
    def track_cost(self) -> int:
        """Number of ordinary tracks one NDR wire effectively occupies."""
        cost = (self.width_multiplier + self.spacing_multiplier) / 2.0
        return max(1, round(cost))


@dataclass(frozen=True)
class Technology:
    """Full technology description for the reproduction flow."""

    name: str
    dbu_per_micron: int
    metal_layers: tuple[MetalLayer, ...]
    via_layers: tuple[ViaLayer, ...]
    ndr_rules: tuple[NonDefaultRule, ...]
    gcell_size: float  # g-cell edge length in DBU (square g-cells)
    site_width: float  # placement site width in DBU
    row_height: float  # standard-cell row height in DBU
    #: index of the lowest metal layer available to signal global routing
    first_gr_layer: int = 2
    #: fraction of nominal track capacity reserved for power/clock pre-routes
    capacity_derate: float = field(default=0.85)

    # -- layer lookups ---------------------------------------------------------

    def metal(self, index: int) -> MetalLayer:
        """Metal layer by 1-based index."""
        return self.metal_layers[index - 1]

    def via(self, index: int) -> ViaLayer:
        """Via layer by 1-based index (V1 connects M1 and M2)."""
        return self.via_layers[index - 1]

    @property
    def num_metal_layers(self) -> int:
        return len(self.metal_layers)

    @property
    def num_via_layers(self) -> int:
        return len(self.via_layers)

    @property
    def gr_metal_indices(self) -> tuple[int, ...]:
        """Metal layers used by the global router (M2..Mtop by default)."""
        return tuple(
            layer.index
            for layer in self.metal_layers
            if layer.index >= self.first_gr_layer
        )

    @property
    def gr_via_indices(self) -> tuple[int, ...]:
        """Via layers between consecutive GR metal layers, plus pin-access V1.

        The paper's feature set reports via congestion for every via layer
        (V1..V4 in a 5-metal stack), so we expose them all.
        """
        return tuple(v.index for v in self.via_layers)

    # -- capacity model ----------------------------------------------------------

    def edge_capacity(self, metal_index: int) -> int:
        """Wire capacity of one g-cell border edge on ``metal_index``.

        The maximum number of wires that may cross a g-cell boundary equals
        the number of routing tracks of that layer spanning the g-cell,
        derated for pre-routes.
        """
        layer = self.metal(metal_index)
        tracks = int(self.gcell_size / layer.pitch)
        return max(1, int(tracks * self.capacity_derate))

    def via_capacity(self, via_index: int) -> int:
        """Via capacity of one g-cell on via layer ``via_index``.

        Modelled as a 2-D array of legal via sites at the via spacing pitch,
        derated like the metal capacity.
        """
        via = self.via(via_index)
        sites_per_axis = max(1, int(self.gcell_size / (2.5 * via.spacing)))
        return max(1, int(sites_per_axis * sites_per_axis * self.capacity_derate))

    def ndr(self, name: str) -> NonDefaultRule:
        for rule in self.ndr_rules:
            if rule.name == name:
                return rule
        raise KeyError(f"unknown NDR rule: {name!r}")


def make_ispd2015_like_technology(
    gcell_tracks: int = 12, dbu_per_micron: int = 100
) -> Technology:
    """Build the default 5-metal-layer technology used across the repo.

    The absolute numbers are scaled so a g-cell holds ``gcell_tracks`` tracks
    on the densest layer — the paper's congestion features then live in a
    realistic small-integer range (capacities around 8-20 per edge), like the
    examples in its Fig. 4 (edge loads of 0-40, via loads of 20-40).
    """
    pitch = 20.0  # DBU; 0.2 um at 100 DBU/um
    gcell = gcell_tracks * pitch
    metals = (
        MetalLayer(1, HORIZONTAL, pitch, 10.0, 10.0, 12.0),
        MetalLayer(2, VERTICAL, pitch, 10.0, 10.0, 12.0),
        MetalLayer(3, HORIZONTAL, pitch, 10.0, 10.0, 12.0),
        MetalLayer(4, VERTICAL, pitch * 1.25, 12.0, 12.0, 14.0),
        MetalLayer(5, HORIZONTAL, pitch * 1.25, 12.0, 12.0, 14.0),
    )
    vias = (
        ViaLayer(1, 14.0),
        ViaLayer(2, 14.0),
        ViaLayer(3, 16.0),
        ViaLayer(4, 18.0),
    )
    ndrs = (
        NonDefaultRule("ndr_2w2s", 2.0, 2.0),  # the ISPD-2015 style 2x rule
        NonDefaultRule("ndr_3w3s", 3.0, 3.0),
    )
    return Technology(
        name="repro65",
        dbu_per_micron=dbu_per_micron,
        metal_layers=metals,
        via_layers=vias,
        ndr_rules=ndrs,
        gcell_size=gcell,
        site_width=pitch / 2.0,
        row_height=pitch * 6.0,
    )
