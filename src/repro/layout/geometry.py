"""Planar geometry primitives used throughout the layout substrate.

All coordinates are in abstract *database units* (DBU).  The technology layer
(:mod:`repro.layout.technology`) decides how many DBU make one micron; the
rest of the code never needs to know.

The two workhorse types are :class:`Point` and :class:`Rect`.  Both are
immutable so they can be freely shared, hashed and used as dictionary keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane, in database units."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``.

        This is the routing-relevant metric: wires run on horizontal and
        vertical tracks, so wirelength estimates use L1 throughout.
        """
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle, closed on all sides.

    Invariant: ``xlo <= xhi`` and ``ylo <= yhi``.  Degenerate (zero-area)
    rectangles are allowed; they arise naturally as bounding boxes of single
    points and of purely horizontal/vertical wire segments.
    """

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xlo > self.xhi or self.ylo > self.yhi:
            raise ValueError(
                f"malformed Rect: ({self.xlo}, {self.ylo}, {self.xhi}, {self.yhi})"
            )

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """Bounding box of two points (any corner order)."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """Bounding box of a non-empty iterable of rectangles."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("Rect.bounding() requires at least one rectangle")
        xlo, ylo, xhi, yhi = first.xlo, first.ylo, first.xhi, first.yhi
        for r in it:
            xlo = min(xlo, r.xlo)
            ylo = min(ylo, r.ylo)
            xhi = max(xhi, r.xhi)
            yhi = max(yhi, r.yhi)
        return Rect(xlo, ylo, xhi, yhi)

    @staticmethod
    def centered_at(center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given size centred at ``center``."""
        return Rect(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    # -- basic measures -------------------------------------------------------

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    # -- predicates ------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.xlo <= p.x <= self.xhi and self.ylo <= p.y <= self.yhi

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside (or on the boundary of) self."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and other.xhi <= self.xhi
            and other.yhi <= self.yhi
        )

    def overlaps(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least one point.

        Touching edges count as overlap — this matches the paper's hotspot
        rule, where a g-cell is a hotspot iff it *overlaps* a DRC-error
        bounding box.
        """
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    # -- combinators -----------------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The shared region, or ``None`` if the rectangles are disjoint."""
        if not self.overlaps(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the shared region (0.0 when disjoint or merely touching)."""
        inter = self.intersection(other)
        return inter.area if inter is not None else 0.0

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side (shrunk if negative)."""
        return Rect(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    def corners(self) -> Iterator[Point]:
        """The four corner points, counter-clockwise from the lower-left."""
        yield Point(self.xlo, self.ylo)
        yield Point(self.xhi, self.ylo)
        yield Point(self.xhi, self.yhi)
        yield Point(self.xlo, self.yhi)

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xlo, self.ylo, self.xhi, self.yhi)


def mean_pairwise_manhattan(points: list[Point]) -> float:
    """Arithmetic mean of pair-wise Manhattan distances.

    This is the paper's *pin spacing* feature.  Defined as 0.0 for fewer than
    two points (a g-cell with zero or one pin has no spacing to speak of).

    Computed in O(n log n) per axis using the sorted prefix-sum identity
    ``sum_{i<j} |x_i - x_j| = sum_k x_(k) * (2k - n + 1)`` on sorted values,
    which matters because it runs once per g-cell over the entire layout.
    """
    n = len(points)
    if n < 2:
        return 0.0

    def _axis_sum(values: list[float]) -> float:
        values = sorted(values)
        total = 0.0
        for k, v in enumerate(values):
            total += v * (2 * k - n + 1)
        return total

    pair_count = n * (n - 1) / 2.0
    total = _axis_sum([p.x for p in points]) + _axis_sum([p.y for p in points])
    return total / pair_count
