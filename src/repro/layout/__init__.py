"""Layout substrate: geometry, technology, netlist model and the g-cell grid."""

from .geometry import Point, Rect, mean_pairwise_manhattan
from .grid import (
    GCellGrid,
    WINDOW_EDGES,
    WINDOW_OFFSETS,
    WINDOW_POSITIONS,
    WindowEdge,
)
from .netlist import Blockage, Cell, Design, Macro, Net, Pin
from .technology import (
    HORIZONTAL,
    VERTICAL,
    MetalLayer,
    NonDefaultRule,
    Technology,
    ViaLayer,
    make_ispd2015_like_technology,
)
from .placemap import PlacementMaps
from .render import render_window_layout
from .design_stats import (
    DesignStats,
    GroupStats,
    design_statistics,
    format_table1,
    group_statistics,
)

__all__ = [
    "PlacementMaps",
    "render_window_layout",
    "Point",
    "Rect",
    "mean_pairwise_manhattan",
    "GCellGrid",
    "WINDOW_EDGES",
    "WINDOW_OFFSETS",
    "WINDOW_POSITIONS",
    "WindowEdge",
    "Blockage",
    "Cell",
    "Design",
    "Macro",
    "Net",
    "Pin",
    "HORIZONTAL",
    "VERTICAL",
    "MetalLayer",
    "NonDefaultRule",
    "Technology",
    "ViaLayer",
    "make_ispd2015_like_technology",
    "DesignStats",
    "GroupStats",
    "design_statistics",
    "format_table1",
    "group_statistics",
]
