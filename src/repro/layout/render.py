"""ASCII layout rendering — the Fig. 2 analogue.

Draws a window of the placed design as character graphics: standard cells
as filled blocks, pins as ``*``, macro/blockage regions as ``#``, g-cell
boundaries as ``+--+`` rulings.  Terminals are this repository's display
surface, so this is how humans inspect what the generator+placer produced
(the paper's Fig. 2 uses the same content to explain the feature windows).
"""

from __future__ import annotations

import numpy as np

from .geometry import Rect
from .grid import GCellGrid
from .netlist import Design


def render_window_layout(
    design: Design,
    grid: GCellGrid,
    center: tuple[int, int],
    radius: int = 1,
    char_width: int = 72,
) -> str:
    """Render the (2·radius+1)² g-cell window around ``center``.

    Character legend: ``#`` macro/blockage, ``▒``-style ``%`` cell body,
    ``*`` pin, ``.`` empty silicon, ``|``/``-`` g-cell boundaries.
    """
    cx, cy = center
    if not grid.in_bounds(cx, cy):
        raise IndexError(f"center {center} outside grid")
    x0 = grid.die.xlo + max(cx - radius, 0) * grid.size
    y0 = grid.die.ylo + max(cy - radius, 0) * grid.size
    x1 = grid.die.xlo + min(cx + radius + 1, grid.nx) * grid.size
    y1 = grid.die.ylo + min(cy + radius + 1, grid.ny) * grid.size
    view = Rect(x0, y0, x1, y1)

    aspect = 0.5  # a character is ~2x taller than wide
    width = char_width
    height = max(8, int(char_width * (view.height / view.width) * aspect))
    canvas = np.full((height, width), ".", dtype="<U1")

    def to_px(x: float, y: float) -> tuple[int, int]:
        col = int((x - view.xlo) / view.width * (width - 1))
        row = int((view.yhi - y) / view.height * (height - 1))
        return (min(max(row, 0), height - 1), min(max(col, 0), width - 1))

    def fill(rect: Rect, ch: str) -> None:
        clipped = rect.intersection(view)
        if clipped is None:
            return
        r1, c0 = to_px(clipped.xlo, clipped.yhi)
        r2, c1 = to_px(clipped.xhi, clipped.ylo)
        canvas[r1 : r2 + 1, c0 : c1 + 1] = ch

    # blockage regions first, cells on top, pins on top of cells
    for rect in design.placement_blockage_rects():
        fill(rect, "#")
    for cell in design.cells:
        if cell.position is None:
            continue
        if cell.bbox.overlaps(view):
            fill(cell.bbox, "%")
    for pin in design.all_pins():
        if pin.net is None or pin.cell.position is None:
            continue
        pos = pin.position
        if view.contains_point(pos):
            r, c = to_px(pos.x, pos.y)
            canvas[r, c] = "*"

    # g-cell rulings
    gx = view.xlo
    while gx <= view.xhi + 1e-9:
        if abs((gx - grid.die.xlo) % grid.size) < 1e-9:
            _, c = to_px(gx, view.ylo)
            col = canvas[:, c]
            col[col == "."] = "|"
        gx += grid.size
    gy = view.ylo
    while gy <= view.yhi + 1e-9:
        r, _ = to_px(view.xlo, gy)
        row = canvas[r, :]
        row[row == "."] = "-"
        gy += grid.size

    header = (
        f"layout window around g-cell ({cx},{cy}) — "
        f"[{view.xlo:.0f},{view.ylo:.0f}]..[{view.xhi:.0f},{view.yhi:.0f}] DBU\n"
        "legend: % cell body, * pin, # macro/blockage, |/- g-cell borders\n"
    )
    return header + "\n".join("".join(row) for row in canvas)
