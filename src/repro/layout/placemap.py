"""Per-g-cell placement statistics.

After placement, both the DRC simulator (mechanism) and the feature
extractor (paper features, Sec. II-A) need the same per-g-cell quantities:

* number of standard cells *fully inside* the g-cell,
* number of pins / clock pins / NDR pins inside,
* number of local nets (all pins in one g-cell) and of pins on local nets,
* mean pair-wise Manhattan pin spacing,
* fraction of area covered by blockages and by standard cells.

:class:`PlacementMaps` computes all of them once as dense ``(nx, ny)`` numpy
arrays.
"""

from __future__ import annotations

import numpy as np

from .geometry import Point, mean_pairwise_manhattan
from .grid import GCellGrid
from .netlist import Design


class PlacementMaps:
    """Dense per-g-cell statistics of a placed design."""

    def __init__(self, design: Design, grid: GCellGrid):
        if not design.is_placed:
            raise ValueError(f"design {design.name} must be placed")
        self.design = design
        self.grid = grid
        nx, ny = grid.nx, grid.ny

        self.num_cells = np.zeros((nx, ny), dtype=np.int32)
        self.num_pins = np.zeros((nx, ny), dtype=np.int32)
        self.num_clock_pins = np.zeros((nx, ny), dtype=np.int32)
        self.num_ndr_pins = np.zeros((nx, ny), dtype=np.int32)
        self.num_local_nets = np.zeros((nx, ny), dtype=np.int32)
        self.num_local_net_pins = np.zeros((nx, ny), dtype=np.int32)
        self.pin_spacing = np.zeros((nx, ny), dtype=np.float64)
        self.blockage_frac = np.zeros((nx, ny), dtype=np.float64)
        self.cell_area_frac = np.zeros((nx, ny), dtype=np.float64)

        self._collect_cells()
        self._collect_pins()
        self._collect_local_nets()
        self._collect_blockages()

    # -- builders ---------------------------------------------------------------

    def _collect_cells(self) -> None:
        grid = self.grid
        inv_area = 1.0 / (grid.size * grid.size)
        for cell in self.design.cells:
            bbox = cell.bbox
            lo = grid.cell_of_point(Point(bbox.xlo, bbox.ylo))
            hi = grid.cell_of_point(Point(bbox.xhi - 1e-9, bbox.yhi - 1e-9))
            # "fully inside" counts toward exactly one g-cell
            if lo == hi:
                self.num_cells[lo] += 1
            # area fraction is split across every overlapped g-cell
            for ix in range(lo[0], hi[0] + 1):
                for iy in range(lo[1], hi[1] + 1):
                    overlap = grid.cell_bbox(ix, iy).overlap_area(bbox)
                    self.cell_area_frac[ix, iy] += overlap * inv_area

    def _collect_pins(self) -> None:
        grid = self.grid
        pins_by_cell: dict[tuple[int, int], list[Point]] = {}
        for pin in self.design.all_pins():
            if pin.net is None:
                continue  # unconnected pins don't route and don't count
            pos = pin.position
            key = grid.cell_of_point(pos)
            self.num_pins[key] += 1
            if pin.is_clock:
                self.num_clock_pins[key] += 1
            if pin.ndr is not None:
                self.num_ndr_pins[key] += 1
            pins_by_cell.setdefault(key, []).append(pos)
        for key, positions in pins_by_cell.items():
            self.pin_spacing[key] = mean_pairwise_manhattan(positions)

    def _collect_local_nets(self) -> None:
        grid = self.grid
        for net in self.design.nets:
            cells = {grid.cell_of_point(p.position) for p in net.pins}
            if len(cells) == 1:
                key = next(iter(cells))
                self.num_local_nets[key] += 1
                self.num_local_net_pins[key] += net.degree

    def _collect_blockages(self) -> None:
        grid = self.grid
        inv_area = 1.0 / (grid.size * grid.size)
        rects = self.design.placement_blockage_rects()
        if not rects:
            return
        for rect in rects:
            lo = grid.cell_of_point(Point(rect.xlo, rect.ylo))
            hi = grid.cell_of_point(Point(rect.xhi - 1e-9, rect.yhi - 1e-9))
            for ix in range(lo[0], hi[0] + 1):
                for iy in range(lo[1], hi[1] + 1):
                    overlap = grid.cell_bbox(ix, iy).overlap_area(rect)
                    self.blockage_frac[ix, iy] += overlap * inv_area
        np.clip(self.blockage_frac, 0.0, 1.0, out=self.blockage_frac)
