"""Netlist and design data model.

A :class:`Design` bundles everything the flow stages exchange:

* a :class:`~repro.layout.technology.Technology`,
* the die area (a :class:`~repro.layout.geometry.Rect`),
* standard :class:`Cell` instances and fixed :class:`Macro` blocks,
* :class:`Net` connectivity over :class:`Pin` objects,
* routing/placement blockages.

Cells start unplaced (``cell.position is None``); the placer fills positions
in, the global router adds route data, the DRC stage adds violations.  The
design object is the single source of truth moving down the flow, mirroring
the .def hand-off in the paper's Olympus-SoC flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .geometry import Point, Rect
from .technology import Technology


@dataclass(slots=True)
class Pin:
    """A cell pin.

    ``offset`` is relative to the owning cell's lower-left corner; the
    absolute location is only defined once the cell is placed.  ``is_clock``
    marks clock-sink pins and ``ndr`` names a non-default rule on the pin's
    net (both are paper features).
    """

    name: str
    cell: "Cell"
    offset: Point
    net: "Net | None" = None
    is_clock: bool = False

    @property
    def position(self) -> Point:
        """Absolute position; requires the owning cell to be placed."""
        cell_pos = self.cell.position
        if cell_pos is None:
            raise RuntimeError(
                f"pin {self.cell.name}/{self.name} accessed before placement"
            )
        return Point(cell_pos.x + self.offset.x, cell_pos.y + self.offset.y)

    @property
    def ndr(self) -> str | None:
        """Name of the non-default rule of the pin's net, if any."""
        return self.net.ndr if self.net is not None else None

    @property
    def full_name(self) -> str:
        return f"{self.cell.name}/{self.name}"


@dataclass(slots=True)
class Cell:
    """A standard-cell instance.

    ``position`` is the lower-left corner after placement, in DBU.
    ``is_fixed`` cells (e.g. pre-placed IO drivers) are not moved by the
    placer.
    """

    name: str
    width: float
    height: float
    pins: list[Pin] = field(default_factory=list)
    position: Point | None = None
    is_fixed: bool = False

    def add_pin(self, name: str, offset: Point, is_clock: bool = False) -> Pin:
        pin = Pin(name=name, cell=self, offset=offset, is_clock=is_clock)
        self.pins.append(pin)
        return pin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def bbox(self) -> Rect:
        """Placed footprint; requires the cell to be placed."""
        if self.position is None:
            raise RuntimeError(f"cell {self.name} accessed before placement")
        return Rect(
            self.position.x,
            self.position.y,
            self.position.x + self.width,
            self.position.y + self.height,
        )

    @property
    def center(self) -> Point:
        return self.bbox.center


@dataclass(slots=True)
class Macro:
    """A fixed macro block.

    Macros block placement underneath and block routing on the metal layers
    in ``blocked_metal_indices`` (wires *and* vias, as the paper's Fig. 3(c)
    caption describes).  The top layers (M4/M5 by default) stay routable so
    over-macro routing is possible, as in the ISPD-2015 designs.
    """

    name: str
    bbox: Rect
    blocked_metal_indices: tuple[int, ...] = (1, 2, 3)

    @property
    def area(self) -> float:
        return self.bbox.area


@dataclass(slots=True)
class Blockage:
    """A standalone placement and/or routing blockage region."""

    bbox: Rect
    blocks_placement: bool = True
    blocked_metal_indices: tuple[int, ...] = ()


@dataclass(slots=True)
class Net:
    """A signal net over two or more pins.

    ``ndr`` names a :class:`~repro.layout.technology.NonDefaultRule` applied
    to the whole net.  ``is_clock`` nets have their sink pins flagged as
    clock pins.
    """

    name: str
    pins: list[Pin] = field(default_factory=list)
    ndr: str | None = None
    is_clock: bool = False

    def connect(self, pin: Pin) -> None:
        if pin.net is not None:
            raise ValueError(f"pin {pin.full_name} already on net {pin.net.name}")
        pin.net = self
        self.pins.append(pin)
        if self.is_clock:
            pin.is_clock = True

    @property
    def degree(self) -> int:
        return len(self.pins)

    def pin_positions(self) -> list[Point]:
        return [pin.position for pin in self.pins]

    def hpwl(self) -> float:
        """Half-perimeter wirelength of the placed net."""
        positions = self.pin_positions()
        if len(positions) < 2:
            return 0.0
        box = Rect.bounding([Rect(p.x, p.y, p.x, p.y) for p in positions])
        return box.width + box.height


@dataclass
class Design:
    """A complete design moving through the flow."""

    name: str
    technology: Technology
    die: Rect
    cells: list[Cell] = field(default_factory=list)
    macros: list[Macro] = field(default_factory=list)
    nets: list[Net] = field(default_factory=list)
    blockages: list[Blockage] = field(default_factory=list)

    # -- construction -----------------------------------------------------------

    def add_cell(self, name: str, width: float, height: float) -> Cell:
        cell = Cell(name=name, width=width, height=height)
        self.cells.append(cell)
        return cell

    def add_macro(self, name: str, bbox: Rect) -> Macro:
        if not self.die.contains_rect(bbox):
            raise ValueError(f"macro {name} outside die")
        macro = Macro(name=name, bbox=bbox)
        self.macros.append(macro)
        return macro

    def add_net(self, name: str, ndr: str | None = None, is_clock: bool = False) -> Net:
        if ndr is not None:
            self.technology.ndr(ndr)  # validate the rule exists
        net = Net(name=name, ndr=ndr, is_clock=is_clock)
        self.nets.append(net)
        return net

    # -- queries ------------------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    @property
    def num_pins(self) -> int:
        return sum(len(c.pins) for c in self.cells)

    @property
    def is_placed(self) -> bool:
        return all(c.position is not None for c in self.cells)

    def all_pins(self) -> Iterator[Pin]:
        for cell in self.cells:
            yield from cell.pins

    def signal_nets(self) -> list[Net]:
        """Nets the global router must route (degree >= 2, not clock).

        Clock nets are pre-routed in the paper's flow (clock tree synthesis
        happens before signal GR), so the signal GR stage skips them; their
        sink pins still show up in the clock-pin feature.
        """
        return [n for n in self.nets if n.degree >= 2 and not n.is_clock]

    def total_cell_area(self) -> float:
        return sum(c.area for c in self.cells)

    def total_hpwl(self) -> float:
        """Sum of HPWL over all nets — the placer's objective."""
        return sum(n.hpwl() for n in self.nets)

    def placement_blockage_rects(self) -> list[Rect]:
        """All regions where standard cells must not be placed."""
        rects = [m.bbox for m in self.macros]
        rects.extend(b.bbox for b in self.blockages if b.blocks_placement)
        return rects

    def routing_blockage_rects(self, metal_index: int) -> list[Rect]:
        """All regions blocked for routing on the given metal layer."""
        rects = [
            m.bbox for m in self.macros if metal_index in m.blocked_metal_indices
        ]
        rects.extend(
            b.bbox
            for b in self.blockages
            if metal_index in b.blocked_metal_indices
        )
        return rects

    def validate(self) -> None:
        """Raise if the design violates basic structural invariants."""
        names = set()
        for cell in self.cells:
            if cell.name in names:
                raise ValueError(f"duplicate cell name {cell.name}")
            names.add(cell.name)
        for net in self.nets:
            if net.degree < 1:
                raise ValueError(f"net {net.name} has no pins")
            for pin in net.pins:
                if pin.net is not net:
                    raise ValueError(f"pin {pin.full_name} back-reference broken")
        for macro in self.macros:
            if not self.die.contains_rect(macro.bbox):
                raise ValueError(f"macro {macro.name} outside die")
