"""Per-design statistics — the quantities reported in Table I of the paper.

Table I lists, per design and per group: the number of g-cells, the number of
DRC hotspots, the number of macros, the cell count (in thousands) and the
layout size in microns.  :func:`design_statistics` computes the same row for
one of our designs, and :func:`group_statistics` aggregates rows the way the
table's group header rows do.
"""

from __future__ import annotations

from dataclasses import dataclass

from .grid import GCellGrid
from .netlist import Design


@dataclass(frozen=True, slots=True)
class DesignStats:
    """One row of Table I."""

    name: str
    num_gcells: int
    num_hotspots: int
    num_macros: int
    num_cells: int
    layout_width_um: float
    layout_height_um: float

    @property
    def cells_k(self) -> float:
        """Cell count in thousands, as Table I reports it."""
        return self.num_cells / 1000.0

    @property
    def hotspot_rate(self) -> float:
        """Fraction of g-cells that are DRC hotspots (class imbalance)."""
        if self.num_gcells == 0:
            return 0.0
        return self.num_hotspots / self.num_gcells

    def format_row(self) -> str:
        """Render in the style of a Table I body row."""
        return (
            f"{self.name:<12s} {self.num_gcells:>9d} {self.num_hotspots:>10d} "
            f"{self.num_macros:>8d} {self.cells_k:>9.1f} "
            f"{self.layout_width_um:.0f}x{self.layout_height_um:.0f}"
        )


def design_statistics(
    design: Design, grid: GCellGrid, num_hotspots: int
) -> DesignStats:
    """Assemble the Table I row for a routed-and-checked design."""
    dbu = design.technology.dbu_per_micron
    return DesignStats(
        name=design.name,
        num_gcells=grid.num_cells,
        num_hotspots=num_hotspots,
        num_macros=len(design.macros),
        num_cells=design.num_cells,
        layout_width_um=design.die.width / dbu,
        layout_height_um=design.die.height / dbu,
    )


@dataclass(frozen=True, slots=True)
class GroupStats:
    """One group header row of Table I (g-cells and hotspots are summed)."""

    name: str
    num_gcells: int
    num_hotspots: int

    def format_row(self) -> str:
        return (
            f"{self.name:<12s} {self.num_gcells:>9d} {self.num_hotspots:>10d} "
            f"{'-':>8s} {'-':>9s} {'-':>9s}"
        )


def group_statistics(name: str, members: list[DesignStats]) -> GroupStats:
    return GroupStats(
        name=name,
        num_gcells=sum(m.num_gcells for m in members),
        num_hotspots=sum(m.num_hotspots for m in members),
    )


def format_table1(groups: list[tuple[GroupStats, list[DesignStats]]]) -> str:
    """Render the whole of Table I as fixed-width text."""
    header = (
        f"{'Design':<12s} {'#G-cells':>9s} {'#Hotspots':>10s} "
        f"{'#Macros':>8s} {'#Cells(k)':>9s} {'Size(um)':>9s}"
    )
    lines = [header, "-" * len(header)]
    for group, members in groups:
        lines.append(group.format_row())
        lines.extend(m.format_row() for m in members)
    return "\n".join(lines)
