"""The global-routing grid: g-cells, 3×3 windows and window edges.

Global routing divides the die into square *g-cells*.  Every data sample of
the paper corresponds to one g-cell expanded to a **3×3 window** (the central
g-cell plus its 8 compass neighbours); window positions are named after
Fig. 3(d) of the paper::

        NW  N  NE
        W   o  E        (o = the central g-cell)
        SW  S  SE

A 3×3 window contains exactly **12 interior border edges** — 6 horizontal
boundaries crossed by vertical wires (suffix ``V``) and 6 vertical boundaries
crossed by horizontal wires (suffix ``H``).  We number them 1..12 in raster
order of their midpoints (bottom-to-top, then left-to-right); the exact
numbering in the paper's figure is not recoverable from the text, so ours is
the documented convention used consistently by features, explanations and
plots:

.. code-block:: text

        +----+----+----+
        | NW 11H N  12H NE |      row of N-cells, H edges 11, 12
        +-8V-+-9V-+-10V+
        | W  6H  o  7H  E |      center row, H edges 6, 7
        +-3V-+-4V-+-5V-+
        | SW 1H  S  2H  SE |      row of S-cells, H edges 1, 2
        +----+----+----+

Windows centred on boundary g-cells are padded with *blank* g-cells outside
the die (footnote 2 of the paper): blank cells contribute zero counts and
zero-capacity edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .geometry import Point, Rect
from .technology import Technology

#: Window position names in Fig. 3(d) order; ``o`` is the central g-cell.
#: The tuple order (raster, SW..NE) is the canonical feature order.
WINDOW_POSITIONS: tuple[str, ...] = ("SW", "S", "SE", "W", "o", "E", "NW", "N", "NE")

#: (dx, dy) grid offset of each window position relative to the centre.
WINDOW_OFFSETS: dict[str, tuple[int, int]] = {
    "SW": (-1, -1),
    "S": (0, -1),
    "SE": (1, -1),
    "W": (-1, 0),
    "o": (0, 0),
    "E": (1, 0),
    "NW": (-1, 1),
    "N": (0, 1),
    "NE": (1, 1),
}


@dataclass(frozen=True, slots=True)
class WindowEdge:
    """One of the 12 interior border edges of a 3×3 window.

    ``label``
        The canonical name, e.g. ``"4V"`` or ``"7H"``.
    ``orientation``
        ``"V"`` — a horizontal boundary crossed by vertical wires;
        ``"H"`` — a vertical boundary crossed by horizontal wires.
    ``cell_a`` / ``cell_b``
        Grid offsets (dx, dy) of the two g-cells the edge separates,
        relative to the window centre.  ``cell_a`` is always the lower/left
        one.
    """

    label: str
    orientation: str
    cell_a: tuple[int, int]
    cell_b: tuple[int, int]


def _build_window_edges() -> tuple[WindowEdge, ...]:
    edges: list[WindowEdge] = []
    number = 1
    # Raster order by edge-midpoint y, then x.  Rows of H edges (inside a
    # cell row) interleave with rows of V edges (between cell rows).
    for dy in (-1, 0, 1):
        # H edges inside the cell row at dy: between (-1,dy)-(0,dy), (0,dy)-(1,dy)
        for dx_a in (-1, 0):
            edges.append(
                WindowEdge(f"{number}H", "H", (dx_a, dy), (dx_a + 1, dy))
            )
            number += 1
        # V edges between cell row dy and dy+1 (skip after the top row)
        if dy < 1:
            for dx in (-1, 0, 1):
                edges.append(
                    WindowEdge(f"{number}V", "V", (dx, dy), (dx, dy + 1))
                )
                number += 1
    return tuple(edges)


#: The 12 interior edges of a 3×3 window, in canonical (numbered) order.
WINDOW_EDGES: tuple[WindowEdge, ...] = _build_window_edges()


@dataclass(frozen=True)
class GCellGrid:
    """A uniform grid of square g-cells covering the die.

    Grid indices are ``(ix, iy)`` with the origin at the lower-left; the cell
    covers ``[xlo + ix*size, xlo + (ix+1)*size)`` horizontally and similarly
    vertically.  The die is assumed to be an integer number of g-cells in
    each dimension (the benchmark generator guarantees this).
    """

    die: Rect
    size: float
    nx: int
    ny: int

    @staticmethod
    def for_design_die(die: Rect, technology: Technology) -> "GCellGrid":
        """Grid for a die using the technology's g-cell size."""
        size = technology.gcell_size
        nx = max(1, round(die.width / size))
        ny = max(1, round(die.height / size))
        return GCellGrid(die=die, size=size, nx=nx, ny=ny)

    # -- index arithmetic -------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    def in_bounds(self, ix: int, iy: int) -> bool:
        return 0 <= ix < self.nx and 0 <= iy < self.ny

    def cell_of_point(self, p: Point) -> tuple[int, int]:
        """Grid index of the g-cell containing ``p`` (die-boundary clamped)."""
        ix = int((p.x - self.die.xlo) / self.size)
        iy = int((p.y - self.die.ylo) / self.size)
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    def cell_bbox(self, ix: int, iy: int) -> Rect:
        if not self.in_bounds(ix, iy):
            raise IndexError(f"g-cell ({ix}, {iy}) outside {self.nx}x{self.ny} grid")
        x = self.die.xlo + ix * self.size
        y = self.die.ylo + iy * self.size
        return Rect(x, y, x + self.size, y + self.size)

    def cell_center(self, ix: int, iy: int) -> Point:
        return self.cell_bbox(ix, iy).center

    def normalized_center(self, ix: int, iy: int) -> tuple[float, float]:
        """Centre coordinates normalised to [0, 1] — the paper's x/y features."""
        c = self.cell_center(ix, iy)
        return (
            (c.x - self.die.xlo) / self.die.width,
            (c.y - self.die.ylo) / self.die.height,
        )

    def iter_cells(self) -> Iterator[tuple[int, int]]:
        """All grid indices in raster order (iy-major)."""
        for iy in range(self.ny):
            for ix in range(self.nx):
                yield (ix, iy)

    def flat_index(self, ix: int, iy: int) -> int:
        """Raster-order flat index, matching :meth:`iter_cells` order."""
        if not self.in_bounds(ix, iy):
            raise IndexError(f"g-cell ({ix}, {iy}) outside grid")
        return iy * self.nx + ix

    def from_flat_index(self, flat: int) -> tuple[int, int]:
        if not 0 <= flat < self.num_cells:
            raise IndexError(f"flat index {flat} outside grid")
        return (flat % self.nx, flat // self.nx)

    # -- windows --------------------------------------------------------------------

    def window_cells(self, ix: int, iy: int) -> list[tuple[str, int, int] | None]:
        """The 9 window cells around (ix, iy) in canonical position order.

        Each entry is ``(position_name, wx, wy)`` or ``None`` for blank
        padding cells outside the die.
        """
        out: list[tuple[str, int, int] | None] = []
        for pos in WINDOW_POSITIONS:
            dx, dy = WINDOW_OFFSETS[pos]
            wx, wy = ix + dx, iy + dy
            out.append((pos, wx, wy) if self.in_bounds(wx, wy) else None)
        return out

    def window_edge_cells(
        self, ix: int, iy: int, edge: WindowEdge
    ) -> tuple[tuple[int, int] | None, tuple[int, int] | None]:
        """Absolute grid indices of the two cells an edge separates.

        Either side may be ``None`` when outside the die (padded edges carry
        zero capacity and zero load).
        """
        ax, ay = ix + edge.cell_a[0], iy + edge.cell_a[1]
        bx, by = ix + edge.cell_b[0], iy + edge.cell_b[1]
        a = (ax, ay) if self.in_bounds(ax, ay) else None
        b = (bx, by) if self.in_bounds(bx, by) else None
        return a, b
