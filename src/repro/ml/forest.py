"""Random Forest classifier (Breiman 2001) — the paper's model.

An ensemble of unpruned CART trees, each grown on a bootstrap resample of
the training set with per-node random feature subsets (``max_features =
sqrt`` by default), predictions aggregated by averaging the trees' class
probability estimates (soft voting, matching scikit-learn's
``RandomForestClassifier`` which the paper used).

Implementation notes:

* all trees share one :class:`~repro.ml.binning.BinMapper` and one binned
  code matrix — binning once is what makes 100+ tree ensembles affordable;
* bootstrap is by sample *weights* (a multinomial draw folded into each
  tree's sample_weight vector) so the binned codes never need reshuffling;
* ``class_weight="balanced"`` mirrors sklearn: positives are up-weighted by
  ``n / (2 · n_pos)`` — with hotspot rates of a few percent this matters.
"""

from __future__ import annotations

import numpy as np

from .binning import BinMapper
from .tree import DecisionTreeClassifier, TreeArrays


class RandomForestClassifier:
    """Bagged ensemble of binned CART trees for binary classification."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: str | int | float | None = "sqrt",
        criterion: str = "gini",
        bootstrap: bool = True,
        max_samples: float | None = None,
        class_weight: str | None = None,
        max_bins: int = 256,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.max_samples = max_samples
        self.class_weight = class_weight
        self.max_bins = max_bins
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.base_rate_: float | None = None

    # -- API ---------------------------------------------------------------------

    def fit(
        self, X: np.ndarray, y: np.ndarray, sample_weight: np.ndarray | None = None
    ) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int8).ravel()
        n = len(X)
        rng = np.random.default_rng(self.random_state)
        mapper = BinMapper(self.max_bins)
        codes = mapper.fit_transform(X)

        base_w = (
            np.ones(n) if sample_weight is None else np.asarray(sample_weight, float)
        )
        if self.class_weight == "balanced":
            pos = max(int(y.sum()), 1)
            neg = max(n - pos, 1)
            cw = np.where(y == 1, n / (2.0 * pos), n / (2.0 * neg))
            base_w = base_w * cw

        n_draw = n if self.max_samples is None else max(1, int(self.max_samples * n))
        self.estimators_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                criterion=self.criterion,
                max_bins=self.max_bins,
                random_state=rng,
            )
            if self.bootstrap:
                counts = rng.multinomial(n_draw, np.full(n, 1.0 / n))
                w = base_w * counts
            else:
                w = base_w
            tree.fit(X, y, sample_weight=w, binned=(mapper, codes))
            self.estimators_.append(tree)
        self.base_rate_ = float(np.average(y, weights=base_w))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest not fitted")
        X = np.asarray(X, dtype=np.float64)
        p1 = np.zeros(len(X))
        for tree in self.estimators_:
            assert tree.tree_ is not None
            p1 += tree.tree_.predict_proba_positive(X)
        p1 /= len(self.estimators_)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int8)

    # -- introspection ----------------------------------------------------------------

    @property
    def trees(self) -> list[TreeArrays]:
        """The fitted trees' flat arrays (input to the SHAP tree explainer)."""
        out = []
        for est in self.estimators_:
            if est.tree_ is None:
                raise RuntimeError("forest not fitted")
            out.append(est.tree_)
        return out

    def num_parameters(self) -> int:
        """Total stored parameters, counted like the paper's Table II.

        Each internal node stores (feature id, threshold, 2 child pointers);
        each leaf stores one value.
        """
        total = 0
        for t in self.trees:
            internal = t.node_count - t.n_leaves
            total += 4 * internal + t.n_leaves
        return total

    def feature_importances(self) -> np.ndarray:
        """Mean cover-weighted split frequency per feature.

        A light-weight global importance (split-count weighted by node
        cover); the per-sample SHAP values are the paper's preferred
        attribution, this is only for quick sanity checks.
        """
        if not self.estimators_:
            raise RuntimeError("forest not fitted")
        n_features = 0
        for t in self.trees:
            internal = t.feature[t.feature >= 0]
            if internal.size:
                n_features = max(n_features, int(internal.max()) + 1)
        imp = np.zeros(max(n_features, 1))
        for t in self.trees:
            mask = t.feature >= 0
            np.add.at(imp, t.feature[mask], t.cover[mask])
        s = imp.sum()
        return imp / s if s > 0 else imp
