"""Random Forest classifier (Breiman 2001) — the paper's model.

An ensemble of unpruned CART trees, each grown on a bootstrap resample of
the training set with per-node random feature subsets (``max_features =
sqrt`` by default), predictions aggregated by averaging the trees' class
probability estimates (soft voting, matching scikit-learn's
``RandomForestClassifier`` which the paper used).

Implementation notes:

* all trees share one :class:`~repro.ml.binning.BinnedDataset` — callers
  that already binned the split (grid search, the experiment driver) pass
  it via ``fit(..., binned=...)`` and the forest never re-quantises;
* bootstrap is by sample *weights* (a multinomial draw folded into each
  tree's sample_weight vector) so the binned codes never need reshuffling;
* ``n_jobs`` grows trees in a process pool.  Every tree owns a generator
  pre-spawned from the forest's root generator (``rng.spawn``) and draws
  its bootstrap from *that*, so the random stream per tree is a pure
  function of ``(random_state, tree index)`` — serial and parallel fits
  are bit-identical, and a fixed seed gives the same forest at any worker
  count.  Inside an already-parallel flow worker (``--jobs``) the pool is
  skipped entirely to avoid oversubscription;
* fitted trees are stacked into one padded :class:`ForestArrays` so
  ``predict_proba`` walks all trees of all samples in a single
  level-synchronous vectorized traversal instead of a Python loop;
* ``class_weight="balanced"`` mirrors sklearn: positives are up-weighted by
  ``n / (2 · n_pos)`` — with hotspot rates of a few percent this matters.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..runtime.telemetry import get_tracer
from .binning import BinMapper, BinnedDataset, as_binned_dataset
from .tree import LEAF, DecisionTreeClassifier, TreeArrays


class ForestArrays:
    """An ensemble's trees stacked into padded ``(T, N)`` arrays.

    ``N`` is the widest tree's node count; shorter trees are padded with
    ``LEAF`` children (pad nodes are unreachable — traversal starts at node
    0 and only follows real child pointers).  One level-synchronous pass
    advances every still-internal ``(sample, tree)`` pair at once, turning
    forest prediction into a handful of fancy-indexing kernels per tree
    depth instead of ``T`` separate Python-level traversals.
    """

    def __init__(
        self,
        children_left: np.ndarray,
        children_right: np.ndarray,
        feature: np.ndarray,
        threshold: np.ndarray,
        value: np.ndarray,
    ):
        self.children_left = children_left
        self.children_right = children_right
        self.feature = feature
        self.threshold = threshold
        self.value = value
        # flat mirror with *absolute* node ids (tree * width + local):
        # traversal then needs no per-pair tree index — every step is a 1-D
        # gather, roughly halving the per-element cost of the hot loop
        n_trees, width = children_left.shape
        base = (np.arange(n_trees, dtype=np.int64) * width)[:, None]
        self._cl_flat = np.where(
            children_left != LEAF, children_left + base, LEAF
        ).ravel()
        self._cr_flat = np.where(
            children_right != LEAF, children_right + base, LEAF
        ).ravel()
        self._feat_flat = feature.ravel().astype(np.int64)
        self._thr_flat = threshold.ravel()
        self._val_flat = value.ravel()
        self._roots = base.ravel()

    @classmethod
    def from_trees(cls, trees: list[TreeArrays]) -> "ForestArrays":
        if not trees:
            raise ValueError("need at least one tree")
        n_trees = len(trees)
        width = max(t.node_count for t in trees)
        cl = np.full((n_trees, width), LEAF, dtype=np.int32)
        cr = np.full((n_trees, width), LEAF, dtype=np.int32)
        feat = np.full((n_trees, width), LEAF, dtype=np.int32)
        thr = np.full((n_trees, width), np.nan, dtype=np.float64)
        val = np.zeros((n_trees, width), dtype=np.float64)
        for t, tree in enumerate(trees):
            m = tree.node_count
            cl[t, :m] = tree.children_left
            cr[t, :m] = tree.children_right
            feat[t, :m] = tree.feature
            thr[t, :m] = tree.threshold
            val[t, :m] = tree.value
        return cls(cl, cr, feat, thr, val)

    @property
    def n_trees(self) -> int:
        return self.children_left.shape[0]

    @property
    def max_nodes(self) -> int:
        return self.children_left.shape[1]

    def leaf_values(self, X: np.ndarray, chunk_size: int = 2048) -> np.ndarray:
        """Per-tree leaf value for every sample: ``(n, T)``.

        The building block shared by soft-voting forests (row mean) and
        weighted-vote boosting (row dot with the alphas).  Rows are chunked
        so the ``(chunk, T)`` work matrices stay cache-sized.
        """
        X = np.asarray(X, dtype=np.float64)
        out = np.empty((len(X), self.n_trees), dtype=np.float64)
        for start in range(0, len(X), chunk_size):
            stop = min(start + chunk_size, len(X))
            out[start:stop] = self._traverse(X[start:stop])
        return out

    def _traverse(self, X: np.ndarray) -> np.ndarray:
        n, n_trees = len(X), self.n_trees
        n_features = X.shape[1]
        x_flat = np.ascontiguousarray(X).ravel()
        # flattened (sample, tree) pairs holding absolute node ids; the
        # frontier shrinks as pairs reach leaves so each level costs
        # O(still-active), and one level advances every tree at once
        # (~max_depth numpy dispatches total, versus n_trees * max_depth
        # for a per-tree loop)
        nodes = np.tile(self._roots, n)
        row_off = np.repeat(np.arange(n, dtype=np.int64) * n_features, n_trees)
        alive = np.flatnonzero(self._cl_flat[nodes] != LEAF)
        while alive.size:
            cur = nodes[alive]
            go_left = (
                x_flat[row_off[alive] + self._feat_flat[cur]]
                < self._thr_flat[cur]
            )
            nxt = np.where(go_left, self._cl_flat[cur], self._cr_flat[cur])
            nodes[alive] = nxt
            alive = alive[self._cl_flat[nxt] != LEAF]
        return self._val_flat[nodes].reshape(n, n_trees)

    def predict_proba_positive(self, X: np.ndarray) -> np.ndarray:
        """Soft-vote P(class 1): mean leaf value across trees."""
        return self.leaf_values(X).mean(axis=1)


# ---------------------------------------------------------------------------
# per-tree growth: a module-level function (and a fork-friendly payload
# global) so the process pool can run it


def _grow_tree(
    rng: np.random.Generator,
    params: dict,
    dataset: BinnedDataset,
    y: np.ndarray,
    base_w: np.ndarray,
    n_draw: int,
    bootstrap: bool,
) -> DecisionTreeClassifier:
    """Grow one tree from its own pre-spawned generator.

    The bootstrap multinomial is drawn *here*, from the tree's generator —
    never from a shared stream — which is what makes the forest's output a
    pure function of (random_state, tree index) regardless of scheduling.
    """
    tree = DecisionTreeClassifier(random_state=rng, **params)
    if bootstrap:
        n = dataset.n_samples
        counts = rng.multinomial(n_draw, np.full(n, 1.0 / n))
        w = base_w * counts
    else:
        w = base_w
    tree.fit(None, y, sample_weight=w, binned=dataset)
    return tree


_WORKER_PAYLOAD: tuple | None = None


def _init_worker(payload: tuple) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _grow_tree_worker(rng: np.random.Generator) -> tuple[TreeArrays, dict]:
    assert _WORKER_PAYLOAD is not None
    tree = _grow_tree(rng, *_WORKER_PAYLOAD)
    assert tree.tree_ is not None
    return tree.tree_, tree.fit_stats_


class RandomForestClassifier:
    """Bagged ensemble of binned CART trees for binary classification."""

    #: grid search / experiment drivers may pass a shared BinnedDataset
    accepts_binned = True

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: str | int | float | None = "sqrt",
        criterion: str = "gini",
        bootstrap: bool = True,
        max_samples: float | None = None,
        class_weight: str | None = None,
        max_bins: int = 256,
        random_state: int | None = None,
        n_jobs: int | None = 1,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        if n_jobs is not None and n_jobs == 0:
            raise ValueError("n_jobs must be a positive int, -1, or None")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.max_samples = max_samples
        self.class_weight = class_weight
        self.max_bins = max_bins
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.estimators_: list[DecisionTreeClassifier] = []
        self.base_rate_: float | None = None
        self._stacked: ForestArrays | None = None

    # -- API ---------------------------------------------------------------------

    def _effective_jobs(self) -> int:
        """Worker count for this fit: 1 unless parallelism is safe and useful."""
        if self.n_jobs in (None, 1):
            return 1
        # Inside a ParallelRunner flow worker the CPUs are already claimed by
        # the outer pool — nested pools would oversubscribe, so grow serially.
        if multiprocessing.parent_process() is not None:
            return 1
        jobs = self.n_jobs if self.n_jobs > 0 else (os.cpu_count() or 1)
        return max(1, min(jobs, self.n_estimators))

    def fit(
        self,
        X: np.ndarray | None,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        binned: BinnedDataset | tuple[BinMapper, np.ndarray] | None = None,
    ) -> "RandomForestClassifier":
        y = np.asarray(y).astype(np.int8).ravel()
        dataset = as_binned_dataset(binned, X, self.max_bins)
        if dataset.n_samples != len(y):
            raise ValueError("binned codes / y length mismatch")
        n = dataset.n_samples

        base_w = (
            np.ones(n) if sample_weight is None else np.asarray(sample_weight, float)
        )
        if self.class_weight == "balanced":
            pos = max(int(y.sum()), 1)
            neg = max(n - pos, 1)
            cw = np.where(y == 1, n / (2.0 * pos), n / (2.0 * neg))
            base_w = base_w * cw

        n_draw = n if self.max_samples is None else max(1, int(self.max_samples * n))
        params = dict(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            criterion=self.criterion,
            max_bins=self.max_bins,
        )
        rng = np.random.default_rng(self.random_state)
        tree_rngs = rng.spawn(self.n_estimators)
        jobs = self._effective_jobs()

        self._stacked = None
        if jobs == 1:
            self.estimators_ = [
                _grow_tree(r, params, dataset, y, base_w, n_draw, self.bootstrap)
                for r in tree_rngs
            ]
        else:
            payload = (params, dataset, y, base_w, n_draw, self.bootstrap)
            chunk = -(-self.n_estimators // jobs)  # ceil: one batch per worker
            with ProcessPoolExecutor(
                max_workers=jobs, initializer=_init_worker, initargs=(payload,)
            ) as pool:
                results = list(pool.map(_grow_tree_worker, tree_rngs, chunksize=chunk))
            # Workers emit telemetry into their own (discarded) process; the
            # parent re-emits the per-tree stats so serial and parallel fits
            # produce identical counter totals in the run manifest.
            tracer = get_tracer()
            self.estimators_ = []
            for arrays, stats in results:
                est = DecisionTreeClassifier(random_state=None, **params)
                est.tree_ = arrays
                est.fit_stats_ = stats
                est._mapper = dataset.mapper
                self.estimators_.append(est)
                for name, v in stats.items():
                    tracer.counter(name, v)
        self.base_rate_ = float(np.average(y, weights=base_w))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.estimators_:
            raise RuntimeError("forest not fitted")
        p1 = self.stacked.predict_proba_positive(np.asarray(X, dtype=np.float64))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int8)

    # -- introspection ----------------------------------------------------------------

    @property
    def stacked(self) -> ForestArrays:
        """The fitted trees stacked for vectorized prediction (lazy, cached)."""
        if self._stacked is None:
            self._stacked = ForestArrays.from_trees(self.trees)
        return self._stacked

    @property
    def trees(self) -> list[TreeArrays]:
        """The fitted trees' flat arrays (input to the SHAP tree explainer)."""
        out = []
        for est in self.estimators_:
            if est.tree_ is None:
                raise RuntimeError("forest not fitted")
            out.append(est.tree_)
        return out

    def num_parameters(self) -> int:
        """Total stored parameters, counted like the paper's Table II.

        Each internal node stores (feature id, threshold, 2 child pointers);
        each leaf stores one value.
        """
        total = 0
        for t in self.trees:
            internal = t.node_count - t.n_leaves
            total += 4 * internal + t.n_leaves
        return total

    def feature_importances(self) -> np.ndarray:
        """Mean cover-weighted split frequency per feature.

        A light-weight global importance (split-count weighted by node
        cover); the per-sample SHAP values are the paper's preferred
        attribution, this is only for quick sanity checks.
        """
        if not self.estimators_:
            raise RuntimeError("forest not fitted")
        n_features = 0
        for t in self.trees:
            internal = t.feature[t.feature >= 0]
            if internal.size:
                n_features = max(n_features, int(internal.max()) + 1)
        imp = np.zeros(max(n_features, 1))
        for t in self.trees:
            mask = t.feature >= 0
            np.add.at(imp, t.feature[mask], t.cover[mask])
        s = imp.sum()
        return imp / s if s > 0 else imp
