"""Feature scaling.

The paper feeds "387 normalized features" to every model.  Tree ensembles
are scale-invariant, but the SVM (RBF distances) and the NNs (gradient
conditioning) need it badly, so the experiment pipeline normalises once and
feeds every model the same matrix — exactly as the paper describes.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean, unit-variance scaling; constant features map to 0."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Xs: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler not fitted")
        return np.asarray(Xs, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each feature to [0, 1] over the training range."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler not fitted")
        return (np.asarray(X, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
