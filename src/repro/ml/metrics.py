"""Evaluation metrics for imbalanced binary classification.

Implements the paper's Sec. III-B metric suite from scratch:

* ROC curve and the area under it (``A_roc``),
* precision-recall curve and the area under it (``A_prc``), computed the
  same way scikit-learn's *average precision* does — a right-sided
  step-function integral, which avoids the optimistic linear interpolation
  the P-R curve is known for (Davis & Goadrich 2006, the paper's [15]);
* ``TPR*`` / ``Prec*``: recall and precision at the operating threshold
  where the false-positive rate first reaches a target (0.5 % in the
  paper).

All functions take raw scores (higher = more likely positive); thresholds
never need to be materialised by callers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _validate(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(np.int8).ravel()
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if y_true.shape != scores.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {scores.shape}")
    if y_true.size == 0:
        raise ValueError("empty input")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("labels must be binary 0/1")
    return y_true, scores


def _sorted_cumulative(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """TP and FP counts at every distinct threshold, descending score.

    Returns (thresholds, tp, fp): predicting positive for score >=
    thresholds[i] yields tp[i] true and fp[i] false positives.
    """
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_true = y_true[order]
    tp_cum = np.cumsum(sorted_true)
    fp_cum = np.cumsum(1 - sorted_true)
    # keep only the last index of every tied-score run
    distinct = np.flatnonzero(np.diff(sorted_scores, append=np.nan))
    return sorted_scores[distinct], tp_cum[distinct], fp_cum[distinct]


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) with the (0,0) origin prepended."""
    y_true, scores = _validate(y_true, scores)
    pos = y_true.sum()
    neg = y_true.size - pos
    if pos == 0 or neg == 0:
        raise ValueError("ROC undefined: need both classes")
    thresholds, tp, fp = _sorted_cumulative(y_true, scores)
    fpr = np.concatenate([[0.0], fp / neg])
    tpr = np.concatenate([[0.0], tp / pos])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def auc_roc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal — the curve is piecewise linear)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))


def pr_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(precision, recall, thresholds), recall ascending."""
    y_true, scores = _validate(y_true, scores)
    pos = y_true.sum()
    if pos == 0:
        raise ValueError("P-R undefined: no positive samples")
    thresholds, tp, fp = _sorted_cumulative(y_true, scores)
    precision = tp / np.maximum(tp + fp, 1)
    recall = tp / pos
    return precision, recall, thresholds


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the P-R curve as a step integral (A_prc of the paper).

    ``AP = Σ (R_i − R_{i−1}) · P_i`` over distinct thresholds — no linear
    interpolation between P-R points.
    """
    precision, recall, _ = pr_curve(y_true, scores)
    recall_prev = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - recall_prev) * precision))


@dataclass(frozen=True, slots=True)
class OperatingPoint:
    """Metrics at one classification threshold."""

    threshold: float
    tpr: float  # recall
    fpr: float
    precision: float
    tp: int
    fp: int
    fn: int
    tn: int


def operating_point_at_fpr(
    y_true: np.ndarray, scores: np.ndarray, target_fpr: float = 0.005
) -> OperatingPoint:
    """The paper's TPR*/Prec* operating point.

    Chooses the *lowest* threshold whose FPR is still ≤ ``target_fpr`` (i.e.
    the most recall available without exceeding the false-alarm budget).
    If even the strictest threshold exceeds the budget, that strictest
    threshold is returned.
    """
    y_true, scores = _validate(y_true, scores)
    pos = int(y_true.sum())
    neg = int(y_true.size - pos)
    if pos == 0 or neg == 0:
        raise ValueError("operating point undefined: need both classes")
    thresholds, tp, fp = _sorted_cumulative(y_true, scores)
    fpr = fp / neg
    ok = np.flatnonzero(fpr <= target_fpr)
    idx = int(ok[-1]) if ok.size else 0
    tp_i, fp_i = int(tp[idx]), int(fp[idx])
    return OperatingPoint(
        threshold=float(thresholds[idx]),
        tpr=tp_i / pos,
        fpr=fp_i / neg,
        precision=tp_i / max(tp_i + fp_i, 1),
        tp=tp_i,
        fp=fp_i,
        fn=pos - tp_i,
        tn=neg - fp_i,
    )


@dataclass(frozen=True, slots=True)
class EvaluationResult:
    """The paper's per-design metric triple (Table II row entries)."""

    tpr_star: float
    prec_star: float
    a_prc: float
    a_roc: float
    num_samples: int
    num_positives: int

    def format_row(self) -> str:
        return f"{self.tpr_star:.4f} {self.prec_star:.4f} {self.a_prc:.4f}"


def evaluate_scores(
    y_true: np.ndarray, scores: np.ndarray, target_fpr: float = 0.005
) -> EvaluationResult:
    """Compute TPR*, Prec*, A_prc (and A_roc) in one call."""
    y_true, scores = _validate(y_true, scores)
    op = operating_point_at_fpr(y_true, scores, target_fpr)
    return EvaluationResult(
        tpr_star=op.tpr,
        prec_star=op.precision,
        a_prc=average_precision(y_true, scores),
        a_roc=auc_roc(y_true, scores),
        num_samples=int(y_true.size),
        num_positives=int(y_true.sum()),
    )


def confusion_at_threshold(
    y_true: np.ndarray, scores: np.ndarray, threshold: float
) -> tuple[int, int, int, int]:
    """(tp, fp, fn, tn) when predicting positive for score >= threshold."""
    y_true, scores = _validate(y_true, scores)
    pred = scores >= threshold
    tp = int(np.sum(pred & (y_true == 1)))
    fp = int(np.sum(pred & (y_true == 0)))
    fn = int(np.sum(~pred & (y_true == 1)))
    tn = int(np.sum(~pred & (y_true == 0)))
    return tp, fp, fn, tn
