"""Feedforward neural networks (the paper's NN-1 and NN-2 baselines).

A plain numpy MLP for binary classification: ReLU hidden layers, sigmoid
output, weighted binary cross-entropy loss, Adam optimiser, mini-batches.
NN-1 of the paper is one hidden layer of 40 units ([6]'s architecture with
the paper's cross-validated width); NN-2 adds a second layer of 10.

Class imbalance is handled by weighting positive samples in the loss
(``class_weight="balanced"``), mirroring common Keras practice.
"""

from __future__ import annotations

import numpy as np


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class MLPClassifier:
    """Multi-layer perceptron with Adam, for binary classification."""

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (40,),
        learning_rate: float = 1e-3,
        batch_size: int = 128,
        epochs: int = 40,
        l2: float = 1e-5,
        class_weight: str | None = "balanced",
        early_stopping_patience: int | None = 5,
        validation_fraction: float = 0.1,
        random_state: int | None = None,
    ):
        if not hidden_layers:
            raise ValueError("need at least one hidden layer")
        self.hidden_layers = tuple(int(h) for h in hidden_layers)
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.epochs = epochs
        self.l2 = l2
        self.class_weight = class_weight
        self.early_stopping_patience = early_stopping_patience
        self.validation_fraction = validation_fraction
        self.random_state = random_state
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        self.loss_curve_: list[float] = []

    # -- core math -----------------------------------------------------------------

    def _forward(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Returns (output probabilities, hidden activations per layer)."""
        acts: list[np.ndarray] = []
        a = X
        for W, b in zip(self.weights_[:-1], self.biases_[:-1]):
            a = _relu(a @ W + b)
            acts.append(a)
        logits = a @ self.weights_[-1] + self.biases_[-1]
        return _sigmoid(logits).ravel(), acts

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.float64).ravel()
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)

        # He initialisation
        sizes = [d, *self.hidden_layers, 1]
        self.weights_ = [
            rng.normal(scale=np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self.biases_ = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]

        # per-sample loss weights
        if self.class_weight == "balanced":
            pos = max(y.sum(), 1.0)
            neg = max(n - y.sum(), 1.0)
            sw = np.where(y == 1, n / (2.0 * pos), n / (2.0 * neg))
        else:
            sw = np.ones(n)

        # validation split for early stopping (stratified-ish random)
        if self.early_stopping_patience is not None and n > 50:
            idx = rng.permutation(n)
            n_val = max(1, int(self.validation_fraction * n))
            val_idx, tr_idx = idx[:n_val], idx[n_val:]
        else:
            val_idx, tr_idx = np.empty(0, dtype=int), np.arange(n)

        m = [np.zeros_like(W) for W in self.weights_]
        v = [np.zeros_like(W) for W in self.weights_]
        mb = [np.zeros_like(b) for b in self.biases_]
        vb = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        best_val = np.inf
        best_params: tuple[list[np.ndarray], list[np.ndarray]] | None = None
        patience_left = self.early_stopping_patience or 0

        self.loss_curve_ = []
        for _ in range(self.epochs):
            order = rng.permutation(tr_idx)
            epoch_loss = 0.0
            for s in range(0, len(order), self.batch_size):
                batch = order[s : s + self.batch_size]
                Xb, yb, wb = X[batch], y[batch], sw[batch]
                loss = self._adam_step(
                    Xb, yb, wb, m, v, mb, vb, beta1, beta2, eps, step := step + 1
                )
                epoch_loss += loss * len(batch)
            self.loss_curve_.append(epoch_loss / max(len(order), 1))

            if len(val_idx):
                p_val, _ = self._forward(X[val_idx])
                p_val = np.clip(p_val, 1e-9, 1 - 1e-9)
                val_loss = float(
                    -np.mean(
                        sw[val_idx]
                        * (y[val_idx] * np.log(p_val) + (1 - y[val_idx]) * np.log(1 - p_val))
                    )
                )
                if val_loss < best_val - 1e-5:
                    best_val = val_loss
                    best_params = (
                        [W.copy() for W in self.weights_],
                        [b.copy() for b in self.biases_],
                    )
                    patience_left = self.early_stopping_patience or 0
                else:
                    patience_left -= 1
                    if patience_left <= 0:
                        break
        if best_params is not None:
            self.weights_, self.biases_ = best_params
        return self

    def _adam_step(
        self,
        Xb: np.ndarray,
        yb: np.ndarray,
        wb: np.ndarray,
        m: list[np.ndarray],
        v: list[np.ndarray],
        mb: list[np.ndarray],
        vb: list[np.ndarray],
        beta1: float,
        beta2: float,
        eps: float,
        step: int,
    ) -> float:
        """One Adam update on a mini-batch; returns the batch loss."""
        # forward with cached activations
        acts = [Xb]
        a = Xb
        for W, b in zip(self.weights_[:-1], self.biases_[:-1]):
            a = _relu(a @ W + b)
            acts.append(a)
        logits = (a @ self.weights_[-1] + self.biases_[-1]).ravel()
        p = _sigmoid(logits)
        p_c = np.clip(p, 1e-9, 1 - 1e-9)
        loss = float(-np.mean(wb * (yb * np.log(p_c) + (1 - yb) * np.log(1 - p_c))))

        # backward: dL/dlogit for weighted BCE with sigmoid
        delta = (wb * (p - yb) / len(yb))[:, None]
        grads_W: list[np.ndarray] = [None] * len(self.weights_)  # type: ignore[list-item]
        grads_b: list[np.ndarray] = [None] * len(self.biases_)  # type: ignore[list-item]
        for layer in range(len(self.weights_) - 1, -1, -1):
            grads_W[layer] = acts[layer].T @ delta + self.l2 * self.weights_[layer]
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.weights_[layer].T) * (acts[layer] > 0)

        lr_t = self.learning_rate * np.sqrt(1 - beta2**step) / (1 - beta1**step)
        for layer in range(len(self.weights_)):
            m[layer] = beta1 * m[layer] + (1 - beta1) * grads_W[layer]
            v[layer] = beta2 * v[layer] + (1 - beta2) * grads_W[layer] ** 2
            self.weights_[layer] -= lr_t * m[layer] / (np.sqrt(v[layer]) + eps)
            mb[layer] = beta1 * mb[layer] + (1 - beta1) * grads_b[layer]
            vb[layer] = beta2 * vb[layer] + (1 - beta2) * grads_b[layer] ** 2
            self.biases_[layer] -= lr_t * mb[layer] / (np.sqrt(vb[layer]) + eps)
        return loss

    # -- inference ----------------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.weights_:
            raise RuntimeError("MLP not fitted")
        p1, _ = self._forward(np.asarray(X, dtype=np.float64))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int8)

    def num_parameters(self) -> int:
        if not self.weights_:
            raise RuntimeError("MLP not fitted")
        return int(
            sum(W.size for W in self.weights_) + sum(b.size for b in self.biases_)
        )
