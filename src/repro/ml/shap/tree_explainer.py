"""Path-dependent Tree SHAP (Lundberg, Erion & Lee 2018) from scratch.

Computes exact SHAP values (Eq. 2 of the paper) for decision-tree ensembles
in polynomial time, using the conditional expectation defined by the trees
themselves: descending a tree, a feature *in* the coalition follows the
sample's branch, a feature *outside* splits the flow between both children
proportionally to their training cover — the "path-dependent" value
function of the SHAP tree explainer the paper adopts.

Formulation.  Algorithm 2 of Lundberg et al. maintains, along each
root-to-leaf path, a polynomial of coalition-size weights (EXTEND) and
reads off each feature's Shapley weight by removing it (UNWIND).  We use
the equivalent *per-leaf closed form*: for leaf ``l`` with unique path
features ``U_l`` (duplicate features merged: zero-fractions multiply,
one-fractions AND),

    phi_u  +=  v_l · (o_u − z_u) · W(l, u),

where ``z_u`` is the product of cover ratios of u's path segments, ``o_u``
indicates whether x satisfies them all, and ``W(l, u)`` is the Shapley
kernel sum the EXTEND/UNWIND polynomial evaluates.  Grouping leaves by
unique-path length lets every EXTEND/UNWIND step run vectorised across all
leaves of a tree — numpy-speed SHAP with no compiled code.

Properties guaranteed (and property-tested): **local accuracy**
``Σ_u phi_u = f(x) − E[f]`` to float precision, and exact agreement with
the brute-force Shapley computation on small trees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...runtime.telemetry import get_tracer
from ..tree import LEAF, TreeArrays


@dataclass
class _LeafGroup:
    """All leaves of one tree with the same unique-path length D."""

    depth: int  # D: number of unique features per leaf path
    leaf_value: np.ndarray  # (L,)
    z: np.ndarray  # (L, D) zero fractions (cover-ratio products)
    slot_feature: np.ndarray  # (L, D) global feature index per slot
    # flattened segment arrays, for evaluating one-fractions o(x):
    seg_row: np.ndarray  # (S,) leaf row within the group
    seg_slot: np.ndarray  # (S,) slot within the path
    seg_feature: np.ndarray  # (S,) global feature id
    seg_threshold: np.ndarray  # (S,)
    seg_is_left: np.ndarray  # (S,) bool: the path takes the left branch
    #: (L·D,) start index of each (row, slot) segment run.  The builder emits
    #: segments row-major with slots in increasing order, so every (row, slot)
    #: pair owns one contiguous run — ``np.logical_and.reduceat`` over these
    #: starts evaluates all one-fractions of a whole sample batch at once.
    seg_starts: np.ndarray


def _collect_leaf_paths(
    tree: TreeArrays,
) -> list[tuple[float, list[tuple[int, float, bool, float]]]]:
    """DFS to (leaf value, path segments); segment = (feat, thr, left, ratio)."""
    out: list[tuple[float, list[tuple[int, float, bool, float]]]] = []
    stack: list[tuple[int, list[tuple[int, float, bool, float]]]] = [(0, [])]
    while stack:
        node, segs = stack.pop()
        left = tree.children_left[node]
        if left == LEAF:
            out.append((float(tree.value[node]), segs))
            continue
        right = tree.children_right[node]
        feat = int(tree.feature[node])
        thr = float(tree.threshold[node])
        cover = tree.cover[node]
        r_left = tree.cover[left] / cover if cover > 0 else 0.0
        r_right = tree.cover[right] / cover if cover > 0 else 0.0
        stack.append((int(left), segs + [(feat, thr, True, r_left)]))
        stack.append((int(right), segs + [(feat, thr, False, r_right)]))
    return out


def _build_groups(tree: TreeArrays) -> list[_LeafGroup]:
    """Preprocess a tree into depth-grouped leaf path tables."""
    by_depth: dict[int, list[tuple[float, list, dict]]] = {}
    for value, segs in _collect_leaf_paths(tree):
        # merge duplicate features: z multiplies, segments accumulate
        slots: dict[int, dict] = {}
        for feat, thr, is_left, ratio in segs:
            entry = slots.setdefault(feat, {"z": 1.0, "segs": []})
            entry["z"] *= ratio
            entry["segs"].append((thr, is_left))
        by_depth.setdefault(len(slots), []).append((value, segs, slots))

    groups: list[_LeafGroup] = []
    for depth, leaves in sorted(by_depth.items()):
        if depth == 0:
            continue  # a leaf with no splits contributes only to the base
        n = len(leaves)
        z = np.zeros((n, depth))
        slot_feature = np.zeros((n, depth), dtype=np.int64)
        leaf_value = np.zeros(n)
        seg_row: list[int] = []
        seg_slot: list[int] = []
        seg_feature: list[int] = []
        seg_threshold: list[float] = []
        seg_is_left: list[bool] = []
        for row, (value, _, slots) in enumerate(leaves):
            leaf_value[row] = value
            for slot, (feat, entry) in enumerate(slots.items()):
                z[row, slot] = entry["z"]
                slot_feature[row, slot] = feat
                for thr, is_left in entry["segs"]:
                    seg_row.append(row)
                    seg_slot.append(slot)
                    seg_feature.append(feat)
                    seg_threshold.append(thr)
                    seg_is_left.append(is_left)
        rows = np.asarray(seg_row, dtype=np.int64)
        slots_arr = np.asarray(seg_slot, dtype=np.int64)
        starts = np.flatnonzero(
            np.r_[True, (rows[1:] != rows[:-1]) | (slots_arr[1:] != slots_arr[:-1])]
        )
        groups.append(
            _LeafGroup(
                depth=depth,
                leaf_value=leaf_value,
                z=z,
                slot_feature=slot_feature,
                seg_row=rows,
                seg_slot=slots_arr,
                seg_feature=np.asarray(seg_feature, dtype=np.int64),
                seg_threshold=np.asarray(seg_threshold),
                seg_is_left=np.asarray(seg_is_left, dtype=bool),
                seg_starts=starts,
            )
        )
    return groups


def _group_phi(group: _LeafGroup, x: np.ndarray, phi: np.ndarray) -> None:
    """Add one leaf-group's SHAP contributions for sample ``x`` into phi."""
    D = group.depth
    L = len(group.leaf_value)
    # one-fractions: AND of segment satisfactions per (leaf, slot)
    sat = (x[group.seg_feature] < group.seg_threshold) == group.seg_is_left
    o = np.ones((L, D), dtype=bool)
    np.logical_and.at(o, (group.seg_row, group.seg_slot), sat)
    o = o.astype(np.float64)
    z = group.z

    # EXTEND: coalition-size weight polynomial, vectorised over leaves
    W = np.zeros((L, D + 1))
    W[:, 0] = 1.0
    for t in range(1, D + 1):
        zt = z[:, t - 1]
        ot = o[:, t - 1]
        for i in range(t - 1, -1, -1):
            W[:, i + 1] += ot * W[:, i] * ((i + 1) / (t + 1))
            W[:, i] = zt * W[:, i] * ((t - i) / (t + 1))

    # UNWIND each slot and accumulate its contribution
    for k in range(1, D + 1):
        one = o[:, k - 1]
        zero = z[:, k - 1]
        one_safe = np.where(one != 0.0, one, 1.0)
        zero_safe = np.where(zero != 0.0, zero, 1.0)
        next_one = W[:, D].copy()
        total = np.zeros(L)
        for i in range(D - 1, -1, -1):
            tmp = next_one * ((D + 1) / ((i + 1) * one_safe))
            branch_one = tmp
            next_one = np.where(
                one != 0.0, W[:, i] - tmp * zero * ((D - i) / (D + 1)), next_one
            )
            branch_zero = W[:, i] / (zero_safe * ((D - i) / (D + 1)))
            total += np.where(one != 0.0, branch_one, branch_zero)
        contrib = total * (one - zero) * group.leaf_value
        np.add.at(phi, group.slot_feature[:, k - 1], contrib)


def _group_phi_batch(group: _LeafGroup, X: np.ndarray, phi: np.ndarray) -> None:
    """Add one leaf-group's SHAP contributions for a batch ``X`` into ``phi``.

    The EXTEND/UNWIND recurrences of :func:`_group_phi` with a leading sample
    axis: every arithmetic expression keeps the exact operand order of the
    single-sample version, so the two agree to float precision while the
    Python-level loops stay O(D²) *total* instead of O(D²) per sample.
    ``phi`` is the (n, num_features) accumulator.
    """
    D = group.depth
    L = len(group.leaf_value)
    n = X.shape[0]
    # one-fractions: AND each (leaf, slot) segment run, all samples at once
    sat = (X[:, group.seg_feature] < group.seg_threshold) == group.seg_is_left
    o = np.logical_and.reduceat(sat, group.seg_starts, axis=1)
    o = o.reshape(n, L, D).astype(np.float64)
    z = group.z  # (L, D), broadcasts against the (n, L) sample-leaf planes

    # EXTEND: coalition-size weight polynomial, vectorised over (sample, leaf)
    W = np.zeros((n, L, D + 1))
    W[..., 0] = 1.0
    for t in range(1, D + 1):
        zt = z[:, t - 1]
        ot = o[..., t - 1]
        for i in range(t - 1, -1, -1):
            W[..., i + 1] += ot * W[..., i] * ((i + 1) / (t + 1))
            W[..., i] = zt * W[..., i] * ((t - i) / (t + 1))

    # UNWIND each slot and accumulate its contribution
    rows = np.arange(n)[:, None]
    for k in range(1, D + 1):
        one = o[..., k - 1]
        zero = z[:, k - 1]
        one_safe = np.where(one != 0.0, one, 1.0)
        zero_safe = np.where(zero != 0.0, zero, 1.0)
        next_one = W[..., D].copy()
        total = np.zeros((n, L))
        for i in range(D - 1, -1, -1):
            tmp = next_one * ((D + 1) / ((i + 1) * one_safe))
            branch_one = tmp
            next_one = np.where(
                one != 0.0, W[..., i] - tmp * zero * ((D - i) / (D + 1)), next_one
            )
            branch_zero = W[..., i] / (zero_safe * ((D - i) / (D + 1)))
            total += np.where(one != 0.0, branch_one, branch_zero)
        contrib = total * (one - zero) * group.leaf_value
        np.add.at(phi, (rows, group.slot_feature[:, k - 1]), contrib)


class TreeShapExplainer:
    """SHAP tree explainer for one tree or an averaged ensemble.

    ``trees`` is a list of :class:`~repro.ml.tree.TreeArrays`; the model is
    assumed to predict the *mean* of the trees' outputs (a Random Forest).
    For a single tree pass a one-element list.
    """

    def __init__(self, trees: list[TreeArrays], num_features: int):
        if not trees:
            raise ValueError("need at least one tree")
        self.num_features = num_features
        self._groups_per_tree = [_build_groups(t) for t in trees]
        #: E[f(x)] over the training distribution (paper Eq. 1 base value)
        self.expected_value = float(np.mean([t.value[0] for t in trees]))

    #: Samples per batched EXTEND/UNWIND pass.  Bounds the (chunk, L, D+1)
    #: weight-polynomial tensor while keeping the per-chunk Python overhead
    #: negligible against the vectorised arithmetic.
    chunk_size = 512

    def shap_values_single(self, x: np.ndarray) -> np.ndarray:
        """SHAP values (num_features,) for one sample.

        Reference implementation: :meth:`shap_values` runs the same
        recurrences batched across samples and is property-tested to agree
        with this method to float precision.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape != (self.num_features,):
            raise ValueError(f"expected {self.num_features} features")
        get_tracer().counter("shap.single_rows")
        phi = np.zeros(self.num_features)
        for groups in self._groups_per_tree:
            for group in groups:
                _group_phi(group, x, phi)
        return phi / len(self._groups_per_tree)

    def shap_values(self, X: np.ndarray) -> np.ndarray:
        """SHAP values (n, num_features) for a batch of samples."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.ndim != 2 or X.shape[1] != self.num_features:
            raise ValueError(
                f"expected (n, {self.num_features}) samples, got {X.shape}"
            )
        phi = np.zeros((X.shape[0], self.num_features))
        tracer = get_tracer()
        for start in range(0, X.shape[0], self.chunk_size):
            chunk = X[start:start + self.chunk_size]
            out = phi[start:start + self.chunk_size]
            for groups in self._groups_per_tree:
                for group in groups:
                    _group_phi_batch(group, chunk, out)
            tracer.counter("shap.chunks")
            tracer.counter("shap.rows", chunk.shape[0])
        phi /= len(self._groups_per_tree)
        return phi
