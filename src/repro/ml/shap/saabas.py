"""Saabas attribution — the fast-but-inconsistent pre-SHAP baseline.

Before Tree SHAP, per-sample tree attributions were commonly computed with
Saabas' method: walk the sample's root-to-leaf path and credit each split's
feature with the change in node expectation,

    phi_j  =  Σ over path splits on j of  ( E[f | child] − E[f | node] ).

It runs in O(depth) — but it is **inconsistent**: it credits only features
on the taken path and weights splits near the leaves more heavily, so a
feature whose true marginal impact grows can see its attribution *drop*
(Lundberg, Erion & Lee 2018, the paper's [9], use exactly this failure to
motivate Tree SHAP).  We implement it to quantify that argument — see
``benchmarks/test_explainer_consistency.py``.

Local accuracy *is* satisfied (the telescoping sum reaches the leaf), so
the difference against Tree SHAP is purely in the per-feature split.
"""

from __future__ import annotations

import numpy as np

from ..tree import LEAF, TreeArrays


def saabas_values_single_tree(
    tree: TreeArrays, x: np.ndarray, num_features: int
) -> np.ndarray:
    """Saabas attributions of one tree for one sample."""
    x = np.asarray(x, dtype=np.float64).ravel()
    phi = np.zeros(num_features)
    node = 0
    while tree.children_left[node] != LEAF:
        feat = int(tree.feature[node])
        nxt = (
            int(tree.children_left[node])
            if x[feat] < tree.threshold[node]
            else int(tree.children_right[node])
        )
        phi[feat] += tree.value[nxt] - tree.value[node]
        node = nxt
    return phi


class SaabasExplainer:
    """Saabas attribution for a tree-mean ensemble (API mirrors TreeShap)."""

    def __init__(self, trees: list[TreeArrays], num_features: int):
        if not trees:
            raise ValueError("need at least one tree")
        self.trees = trees
        self.num_features = num_features
        self.expected_value = float(np.mean([t.value[0] for t in trees]))

    def shap_values_single(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape != (self.num_features,):
            raise ValueError(f"expected {self.num_features} features")
        phi = np.zeros(self.num_features)
        for t in self.trees:
            phi += saabas_values_single_tree(t, x, self.num_features)
        return phi / len(self.trees)

    def shap_values(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.vstack([self.shap_values_single(x) for x in X])


def make_inconsistency_example() -> tuple[TreeArrays, TreeArrays, np.ndarray]:
    """Two AND-trees exhibiting the classic Saabas inconsistency.

    Following Fig. 1 of Lundberg et al. 2018 (the paper's [9]):

    * tree A computes ``f_A = 5·AND(x0, x1)``, splitting **x1 at the root**
      and x0 at the deep split;
    * tree B computes ``f_B = f_A + 2·x0`` — strictly *more* dependent on
      x0 — but splits **x0 at the root** and x1 deep.

    For the all-ones sample, exact SHAP increases x0's attribution from A
    (1.875) to B (2.875) — consistent with the increased dependence — while
    Saabas *decreases* it (2.5 → 2.25), because it credits root splits with
    the small near-root change in expectation.

    Returns (tree_a, tree_b, x).  Cover is balanced so the four input
    combinations are equally likely.
    """

    def _tree(
        split_first: int,
        split_second: int,
        leaves: tuple[float, float, float],
        root_val: float,
    ) -> TreeArrays:
        # node 0 splits on split_first; its 0-branch is leaf node 1 with
        # value leaves[0]; its 1-branch (node 2) splits on split_second
        # into leaves[1] (0-branch) and leaves[2] (1-branch).
        children_left = np.array([1, LEAF, 3, LEAF, LEAF], dtype=np.int32)
        children_right = np.array([2, LEAF, 4, LEAF, LEAF], dtype=np.int32)
        feature = np.array(
            [split_first, LEAF, split_second, LEAF, LEAF], dtype=np.int32
        )
        threshold = np.array([0.5, np.nan, 0.5, np.nan, np.nan])
        cover = np.array([4.0, 2.0, 2.0, 1.0, 1.0])
        value = np.array(
            [root_val, leaves[0], (leaves[1] + leaves[2]) / 2.0, leaves[1], leaves[2]]
        )
        return TreeArrays(
            children_left, children_right, feature, threshold, cover, value
        )

    # A: f = 5·AND(x0, x1), x1 at the root, x0 deep
    tree_a = _tree(1, 0, (0.0, 0.0, 5.0), root_val=1.25)
    # B: f = 5·AND(x0, x1) + 2·x0, x0 at the root, x1 deep;
    # x0=0 branch is identically 0; x0=1 branch is 2 + 5·x1
    tree_b = _tree(0, 1, (0.0, 2.0, 7.0), root_val=2.25)
    x = np.array([1.0, 1.0])
    return tree_a, tree_b, x
