"""Kernel SHAP (Lundberg & Lee 2017) — the model-agnostic baseline.

The paper motivates the *tree* explainer by noting that the original SHAP
implementations "assume feature independence and approximate by sampling,
which compromise the accuracy" and are slow.  This module implements that
baseline so the repository can quantify both claims (see
``benchmarks/test_fig4_shap.py``):

* the value function is **interventional**: features outside the coalition
  are imputed from a background dataset (feature-independence assumption);
* the Shapley values are recovered by the weighted-least-squares
  formulation over coalitions with the Shapley kernel; with
  ``n_coalitions=None`` all 2^M coalitions are enumerated (exact under the
  interventional value function), otherwise coalitions are sampled.

Note the *definition* differs from the path-dependent tree explainer, so
small systematic differences on correlated features are expected — that is
precisely the paper's argument for using the tree explainer.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np


class KernelShapExplainer:
    """Model-agnostic SHAP with a background dataset."""

    def __init__(
        self,
        predict: "callable[[np.ndarray], np.ndarray]",
        background: np.ndarray,
        n_coalitions: int | None = None,
        random_state: int | None = None,
    ):
        self.predict = predict
        self.background = np.atleast_2d(np.asarray(background, dtype=np.float64))
        self.n_coalitions = n_coalitions
        self.rng = np.random.default_rng(random_state)
        #: base value: mean prediction over the background set
        self.expected_value = float(np.mean(self.predict(self.background)))

    # -- internals -----------------------------------------------------------------

    def _value(self, x: np.ndarray, mask: np.ndarray) -> float:
        """Interventional v(S): background rows with S features set to x."""
        imputed = self.background.copy()
        imputed[:, mask] = x[mask]
        return float(np.mean(self.predict(imputed)))

    def _all_masks(self, M: int) -> list[np.ndarray]:
        masks = []
        for size in range(1, M):
            for S in combinations(range(M), size):
                mask = np.zeros(M, dtype=bool)
                mask[list(S)] = True
                masks.append(mask)
        return masks

    def _sampled_masks(self, M: int, n: int) -> list[np.ndarray]:
        masks = []
        # sample coalition sizes proportionally to the Shapley kernel mass
        sizes = np.arange(1, M)
        kernel_mass = (M - 1) / (sizes * (M - sizes))
        p = kernel_mass / kernel_mass.sum()
        for _ in range(n):
            size = int(self.rng.choice(sizes, p=p))
            members = self.rng.choice(M, size=size, replace=False)
            mask = np.zeros(M, dtype=bool)
            mask[members] = True
            masks.append(mask)
        return masks

    # -- API --------------------------------------------------------------------------

    def shap_values_single(self, x: np.ndarray) -> np.ndarray:
        """SHAP values for one sample by weighted least squares."""
        x = np.asarray(x, dtype=np.float64).ravel()
        M = len(x)
        if M < 2:
            raise ValueError("need at least two features")
        masks = (
            self._all_masks(M)
            if self.n_coalitions is None
            else self._sampled_masks(M, self.n_coalitions)
        )
        fx = float(np.mean(self.predict(x[None, :])))
        f0 = self.expected_value

        Z = np.array([m.astype(float) for m in masks])
        v = np.array([self._value(x, m) for m in masks])
        sizes = Z.sum(axis=1).astype(int)
        weights = np.array(
            [
                (M - 1) / (comb(M, s) * s * (M - s)) if 0 < s < M else 0.0
                for s in sizes
            ]
        )

        # solve the constrained WLS: sum(phi) = fx - f0; eliminate the last
        # coefficient with the efficiency constraint
        target = v - f0 - Z[:, -1] * (fx - f0)
        A = Z[:, :-1] - Z[:, [-1]]
        W = np.diag(weights)
        lhs = A.T @ W @ A + 1e-12 * np.eye(M - 1)
        rhs = A.T @ W @ target
        phi_head = np.linalg.solve(lhs, rhs)
        phi_last = (fx - f0) - phi_head.sum()
        return np.concatenate([phi_head, [phi_last]])

    def shap_values(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.vstack([self.shap_values_single(x) for x in X])
