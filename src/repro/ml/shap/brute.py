"""Brute-force SHAP: the exponential-time definition, for validation.

Evaluates Eq. 2 of the paper literally: for every subset S of the features,
the conditional expectation ``E[f(x) | x_S]`` is computed by tree traversal
(a feature in S follows x; a feature outside S averages both children by
training cover — the same path-dependent value function the tree explainer
uses), and Shapley weights combine the marginal contributions.

Cost is O(2^M · tree size); use only on toy models (tests keep M ≤ 8).
"""

from __future__ import annotations

from itertools import combinations
from math import factorial

import numpy as np

from ..tree import LEAF, TreeArrays


def conditional_expectation(
    tree: TreeArrays, x: np.ndarray, known: frozenset[int]
) -> float:
    """E[f(x) | x_known] under the path-dependent tree distribution."""

    def walk(node: int) -> float:
        left = int(tree.children_left[node])
        if left == LEAF:
            return float(tree.value[node])
        right = int(tree.children_right[node])
        feat = int(tree.feature[node])
        if feat in known:
            follow = left if x[feat] < tree.threshold[node] else right
            return walk(follow)
        cover = tree.cover[node]
        if cover <= 0:
            return float(tree.value[node])
        wl = tree.cover[left] / cover
        wr = tree.cover[right] / cover
        return wl * walk(left) + wr * walk(right)

    return walk(0)


def brute_force_shap_single_tree(
    tree: TreeArrays, x: np.ndarray, num_features: int
) -> np.ndarray:
    """Exact Shapley values of one tree for one sample (exponential time)."""
    x = np.asarray(x, dtype=np.float64).ravel()
    features = list(range(num_features))
    M = num_features
    # memoise the value function over subsets
    cache: dict[frozenset[int], float] = {}

    def v(S: frozenset[int]) -> float:
        if S not in cache:
            cache[S] = conditional_expectation(tree, x, S)
        return cache[S]

    phi = np.zeros(M)
    for j in features:
        others = [f for f in features if f != j]
        for size in range(M):
            weight = factorial(size) * factorial(M - size - 1) / factorial(M)
            for S in combinations(others, size):
                S_set = frozenset(S)
                phi[j] += weight * (v(S_set | {j}) - v(S_set))
    return phi


def brute_force_shap(
    trees: list[TreeArrays], x: np.ndarray, num_features: int
) -> np.ndarray:
    """Exact Shapley values of a tree-mean ensemble (for tests)."""
    phis = [brute_force_shap_single_tree(t, x, num_features) for t in trees]
    return np.mean(phis, axis=0)
