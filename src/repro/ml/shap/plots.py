"""Text rendering of SHAP explanations — the stand-in for Fig. 4.

The paper's Fig. 4 is a `shap` force plot: pink bars push the prediction up
from the base value, blue bars push it down, features sorted by |SHAP|.
We render the same content as fixed-width text: a waterfall from
``base value`` to ``f(x)`` with one bar line per top feature, e.g.::

    base value                                        0.0160
      edM5_7H = -4.00      +0.0513  ████████████████
      edM5_9V = -2.00      +0.0389  ████████████
      vlV2_E  = 35.00      +0.0201  ██████
      ... 381 more features         +0.4039
    f(x)                                              0.5602
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class FeatureContribution:
    """One row of an explanation: a feature, its value, its SHAP value."""

    name: str
    value: float
    shap: float


@dataclass
class Explanation:
    """A full per-sample SHAP explanation."""

    base_value: float
    prediction: float
    contributions: list[FeatureContribution]

    def top(self, k: int = 10) -> list[FeatureContribution]:
        """The k features with the largest |SHAP|, descending."""
        return sorted(self.contributions, key=lambda c: -abs(c.shap))[:k]

    def check_local_accuracy(self, atol: float = 1e-6) -> bool:
        """Eq. 1 of the paper: base + Σ SHAP == prediction."""
        total = self.base_value + sum(c.shap for c in self.contributions)
        return abs(total - self.prediction) <= atol


def build_explanation(
    base_value: float,
    prediction: float,
    shap_values: np.ndarray,
    feature_values: np.ndarray,
    feature_names: tuple[str, ...] | list[str],
) -> Explanation:
    """Bundle raw SHAP output into an :class:`Explanation`."""
    shap_values = np.asarray(shap_values).ravel()
    feature_values = np.asarray(feature_values).ravel()
    if not (len(shap_values) == len(feature_values) == len(feature_names)):
        raise ValueError("length mismatch between SHAP values, values and names")
    contributions = [
        FeatureContribution(name=n, value=float(v), shap=float(s))
        for n, v, s in zip(feature_names, feature_values, shap_values)
    ]
    return Explanation(
        base_value=float(base_value),
        prediction=float(prediction),
        contributions=contributions,
    )


def force_plot_text(
    explanation: Explanation, top_k: int = 10, bar_width: int = 24
) -> str:
    """Fig.-4-style text force plot."""
    top = explanation.top(top_k)
    rest = sum(c.shap for c in explanation.contributions) - sum(c.shap for c in top)
    max_abs = max((abs(c.shap) for c in top), default=1.0) or 1.0

    lines = [f"{'base value E[f(x)]':<34s}{explanation.base_value:>10.4f}"]
    for c in top:
        bar_len = max(1, round(abs(c.shap) / max_abs * bar_width))
        bar = ("+" if c.shap >= 0 else "-") * bar_len
        lines.append(
            f"  {c.name:<14s}={c.value:>9.2f}  {c.shap:>+8.4f}  {bar}"
        )
    n_rest = len(explanation.contributions) - len(top)
    lines.append(f"  {f'({n_rest} other features)':<25s}{rest:>+8.4f}")
    lines.append(f"{'f(x) prediction':<34s}{explanation.prediction:>10.4f}")
    ratio = (
        explanation.prediction / explanation.base_value
        if explanation.base_value > 0
        else float("inf")
    )
    lines.append(
        f"-> {ratio:.1f}x more likely to be a DRC hotspot than the average g-cell"
        if ratio >= 1
        else f"-> {1/ratio:.1f}x less likely to be a DRC hotspot than the average g-cell"
    )
    return "\n".join(lines)
