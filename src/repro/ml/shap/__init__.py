"""SHAP explainers: polynomial-time Tree SHAP, brute-force, Kernel SHAP."""

from .brute import brute_force_shap, brute_force_shap_single_tree, conditional_expectation
from .interactions import (
    interaction_values,
    interaction_values_single_tree,
    top_interactions,
)
from .kernel import KernelShapExplainer
from .plots import (
    Explanation,
    FeatureContribution,
    build_explanation,
    force_plot_text,
)
from .saabas import SaabasExplainer, make_inconsistency_example
from .tree_explainer import TreeShapExplainer

__all__ = [
    "SaabasExplainer",
    "make_inconsistency_example",
    "brute_force_shap",
    "brute_force_shap_single_tree",
    "conditional_expectation",
    "interaction_values",
    "interaction_values_single_tree",
    "top_interactions",
    "KernelShapExplainer",
    "Explanation",
    "FeatureContribution",
    "build_explanation",
    "force_plot_text",
    "TreeShapExplainer",
]
