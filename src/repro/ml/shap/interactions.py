"""SHAP interaction values (Lundberg, Erion & Lee 2018, Sec. 4).

The paper notes that "there are usually complex feature interactions in
the prediction, which must be captured" (Sec. III-C); SHAP *interaction*
values split each feature's attribution into main effects and pairwise
interaction terms:

    Phi_ij = Σ_{S ⊆ F\\{i,j}}  |S|!(M−|S|−2)! / (2(M−1)!) · ∇_ij(S),
    ∇_ij(S) = v(S∪{i,j}) − v(S∪{i}) − v(S∪{j}) + v(S),          i ≠ j
    Phi_ii = phi_i − Σ_{j≠i} Phi_ij,

with the same path-dependent tree value function ``v`` as the tree
explainer.  Guarantees (tested): the matrix is symmetric and each row sums
to the feature's ordinary SHAP value, so the full matrix sums to
``f(x) − E[f]``.

This implementation enumerates subsets (O(2^M · tree)), intended for
*feature-subset* analyses — e.g. interactions among the top-k features of
an explained hotspot — not for all 387 features at once.  Use
:func:`top_interactions` for that workflow.
"""

from __future__ import annotations

from itertools import combinations
from math import factorial

import numpy as np

from ..tree import TreeArrays
from .brute import conditional_expectation
from .tree_explainer import TreeShapExplainer


def interaction_values_single_tree(
    tree: TreeArrays, x: np.ndarray, features: list[int]
) -> np.ndarray:
    """Exact SHAP interaction matrix over ``features`` for one tree.

    Features outside ``features`` are never conditioned on (they stay
    marginalised by cover weighting in every evaluation), i.e. the game is
    restricted to the chosen feature subset; row sums equal the restricted
    game's ordinary Shapley values and the matrix total equals
    ``E[f | x_features] − E[f]``.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    M = len(features)
    if M < 2:
        raise ValueError("need at least two features for interactions")

    cache: dict[frozenset[int], float] = {}

    def v(S: frozenset[int]) -> float:
        if S not in cache:
            cache[S] = conditional_expectation(tree, x, S)
        return cache[S]

    phi_matrix = np.zeros((M, M))
    # off-diagonal terms
    for a in range(M):
        for b in range(a + 1, M):
            i, j = features[a], features[b]
            others = [f for f in features if f not in (i, j)]
            total = 0.0
            for size in range(M - 1):
                if size > len(others):
                    continue
                weight = (
                    factorial(size)
                    * factorial(M - size - 2)
                    / (2.0 * factorial(M - 1))
                )
                for S in combinations(others, size):
                    S_set = frozenset(S)
                    delta = (
                        v(S_set | {i, j})
                        - v(S_set | {i})
                        - v(S_set | {j})
                        + v(S_set)
                    )
                    total += weight * delta
            phi_matrix[a, b] = phi_matrix[b, a] = total

    # main effects from the restricted game's ordinary Shapley values
    for a in range(M):
        i = features[a]
        others = [f for f in features if f != i]
        phi_i = 0.0
        for size in range(M):
            weight = factorial(size) * factorial(M - size - 1) / factorial(M)
            for S in combinations(others, size):
                S_set = frozenset(S)
                phi_i += weight * (v(S_set | {i}) - v(S_set))
        phi_matrix[a, a] = phi_i - phi_matrix[a].sum() + phi_matrix[a, a]
    return phi_matrix


def interaction_values(
    trees: list[TreeArrays], x: np.ndarray, features: list[int]
) -> np.ndarray:
    """Interaction matrix of a tree-mean ensemble over a feature subset."""
    mats = [interaction_values_single_tree(t, x, features) for t in trees]
    return np.mean(mats, axis=0)


def top_interactions(
    explainer: TreeShapExplainer,
    trees: list[TreeArrays],
    x: np.ndarray,
    k: int = 6,
) -> tuple[list[int], np.ndarray]:
    """Interaction matrix among the k strongest SHAP features of ``x``.

    Returns (feature indices, k×k matrix).  The k features are chosen by
    |SHAP| from the full exact explanation, then the interaction game is
    solved exactly on that subset.
    """
    phi = explainer.shap_values_single(x)
    chosen = np.argsort(-np.abs(phi))[:k].tolist()
    return chosen, interaction_values(trees, x, chosen)
