"""From-scratch ML substrate: estimators, metrics, selection, SHAP."""

from .binning import BinMapper, BinnedDataset, as_binned_dataset
from .boosting import RUSBoostClassifier
from .complexity import (
    ComplexityReport,
    complexity_of,
    forest_complexity,
    mlp_complexity,
    rusboost_complexity,
    svm_complexity,
)
from .forest import ForestArrays, RandomForestClassifier
from .metrics import (
    EvaluationResult,
    OperatingPoint,
    auc_roc,
    average_precision,
    confusion_at_threshold,
    evaluate_scores,
    operating_point_at_fpr,
    pr_curve,
    roc_curve,
)
from .model_selection import (
    GridSearchResult,
    GroupKFold,
    grid_search,
    iterate_grid,
    positive_scores,
)
from .nn import MLPClassifier
from .persistence import (
    ModelFormatError,
    load_forest,
    load_mlp,
    load_scaler,
    load_svm,
    save_forest,
    save_mlp,
    save_scaler,
    save_svm,
)
from .scaling import MinMaxScaler, StandardScaler
from .svm import SVMClassifier, rbf_kernel
from .tree import DecisionTreeClassifier, TreeArrays

__all__ = [
    "BinMapper",
    "BinnedDataset",
    "as_binned_dataset",
    "RUSBoostClassifier",
    "ComplexityReport",
    "complexity_of",
    "forest_complexity",
    "mlp_complexity",
    "rusboost_complexity",
    "svm_complexity",
    "ForestArrays",
    "RandomForestClassifier",
    "EvaluationResult",
    "OperatingPoint",
    "auc_roc",
    "average_precision",
    "confusion_at_threshold",
    "evaluate_scores",
    "operating_point_at_fpr",
    "pr_curve",
    "roc_curve",
    "GridSearchResult",
    "GroupKFold",
    "grid_search",
    "iterate_grid",
    "positive_scores",
    "ModelFormatError",
    "load_forest",
    "load_mlp",
    "load_scaler",
    "load_svm",
    "save_forest",
    "save_mlp",
    "save_scaler",
    "save_svm",
    "MLPClassifier",
    "MinMaxScaler",
    "StandardScaler",
    "SVMClassifier",
    "rbf_kernel",
    "DecisionTreeClassifier",
    "TreeArrays",
]
