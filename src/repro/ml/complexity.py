"""Model-complexity accounting: #parameters and #prediction operations.

The paper's Table II reports, besides predictive quality, two complexity
numbers per model:

* ``# Model param.`` — stored parameters per trained model;
* ``# Prediction op.`` — arithmetic operations to score **one sample**.

These are defined per model family (Sec. III-B "number of predictive
operations for model complexity"):

* **trees/forests/boosting** — one comparison per internal node on the
  sample's root-to-leaf path, summed over trees, plus the aggregation;
  path lengths are *measured* on a reference batch, since unpruned trees
  are far shallower on average than their worst case;
* **SVM-RBF** — per support vector: a squared-distance over all features
  (2F ops) plus the kernel exponential and the weighted accumulation;
* **MLP** — two ops (multiply + add) per weight, plus activation costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .boosting import RUSBoostClassifier
from .forest import RandomForestClassifier
from .nn import MLPClassifier
from .svm import SVMClassifier


@dataclass(frozen=True, slots=True)
class ComplexityReport:
    """The two Table II complexity numbers, with provenance."""

    model_name: str
    num_parameters: int
    prediction_ops_per_sample: float

    def format_row(self) -> str:
        return (
            f"{self.model_name:<10s} {self.num_parameters / 1000.0:>10.1f}k params "
            f"{self.prediction_ops_per_sample / 1000.0:>10.1f}k ops/sample"
        )


def _tree_ensemble_ops(trees, X_ref: np.ndarray, per_tree_extra: float) -> float:
    """Mean comparisons per sample across an ensemble + aggregation cost."""
    total = 0.0
    for t in trees:
        total += float(t.decision_path_lengths(X_ref).mean())
        total += per_tree_extra
    return total


def forest_complexity(
    model: RandomForestClassifier, X_ref: np.ndarray, name: str = "RF"
) -> ComplexityReport:
    ops = _tree_ensemble_ops(model.trees, X_ref, per_tree_extra=1.0)  # +1 add
    ops += 1.0  # final divide
    return ComplexityReport(name, model.num_parameters(), ops)


def rusboost_complexity(
    model: RUSBoostClassifier, X_ref: np.ndarray, name: str = "RUSBoost"
) -> ComplexityReport:
    # per tree: path comparisons + multiply by alpha + add
    ops = _tree_ensemble_ops(model.trees, X_ref, per_tree_extra=2.0)
    ops += 1.0
    return ComplexityReport(name, model.num_parameters(), ops)


def svm_complexity(model: SVMClassifier, name: str = "SVM-RBF") -> ComplexityReport:
    if model.support_vectors_ is None:
        raise RuntimeError("SVM not fitted")
    n_sv, n_features = model.support_vectors_.shape
    # per SV: (sub, mul, add) per feature for ||x - sv||^2 -> 3F, one exp
    # (~20 flops), one multiply-accumulate with the dual coef
    ops = n_sv * (3.0 * n_features + 22.0) + 1.0
    return ComplexityReport(name, model.num_parameters(), ops)


def mlp_complexity(model: MLPClassifier, name: str = "NN") -> ComplexityReport:
    params = model.num_parameters()
    # 2 ops per weight (MAC), ~1 op per activation
    act_units = sum(W.shape[1] for W in model.weights_)
    ops = 2.0 * sum(W.size for W in model.weights_) + sum(
        b.size for b in model.biases_
    ) + act_units
    return ComplexityReport(name, params, ops)


def complexity_of(model, X_ref: np.ndarray, name: str) -> ComplexityReport:
    """Dispatch on model type (used by the Table II harness)."""
    if isinstance(model, RandomForestClassifier):
        return forest_complexity(model, X_ref, name)
    if isinstance(model, RUSBoostClassifier):
        return rusboost_complexity(model, X_ref, name)
    if isinstance(model, SVMClassifier):
        return svm_complexity(model, name)
    if isinstance(model, MLPClassifier):
        return mlp_complexity(model, name)
    raise TypeError(f"no complexity model for {type(model).__name__}")
