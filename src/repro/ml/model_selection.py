"""Design-grouped cross-validation and grid search.

The paper's protocol (Sec. II) splits by *design group*, never by sample:

* testing on a design excludes its whole group from training;
* hyper-parameters are chosen by 4-fold CV over the 4 training groups,
  holding out one whole group per fold;
* the selected configuration is re-fitted on all 4 training groups.

:class:`GroupKFold` and :func:`grid_search` implement exactly that.  The CV
scoring metric defaults to average precision (A_prc), the paper's tuning
metric.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

import numpy as np

from .binning import BinnedDataset
from .metrics import average_precision


class FittableClassifier(Protocol):
    """Minimal estimator protocol the search utilities rely on."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FittableClassifier": ...

    def predict_proba(self, X: np.ndarray) -> np.ndarray: ...


class GroupKFold:
    """Leave-one-group-out splitting over integer group labels."""

    def split(
        self, groups: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray, int]]:
        """(train_idx, val_idx, held_out_group) per distinct group."""
        groups = np.asarray(groups).ravel()
        out = []
        for g in np.unique(groups):
            val = np.flatnonzero(groups == g)
            train = np.flatnonzero(groups != g)
            out.append((train, val, int(g)))
        return out


def positive_scores(model: FittableClassifier, X: np.ndarray) -> np.ndarray:
    """P(positive) or decision margin, whichever the model exposes."""
    proba = model.predict_proba(X)
    return np.asarray(proba)[:, 1]


@dataclass
class GridSearchResult:
    """Outcome of one grid search."""

    best_params: dict[str, Any]
    best_score: float
    #: every evaluated configuration: (params, mean score, per-fold scores)
    table: list[tuple[dict[str, Any], float, list[float]]] = field(
        default_factory=list
    )
    search_time_sec: float = 0.0

    def format_table(self) -> str:
        lines = ["params -> mean CV A_prc (per fold)"]
        for params, mean, folds in self.table:
            folds_s = ", ".join(f"{v:.4f}" for v in folds)
            marker = " *" if params == self.best_params else ""
            lines.append(f"  {params} -> {mean:.4f} ({folds_s}){marker}")
        return "\n".join(lines)


def iterate_grid(param_grid: dict[str, list[Any]]) -> list[dict[str, Any]]:
    """All combinations of a sklearn-style parameter grid, in stable order."""
    if not param_grid:
        return [{}]
    keys = sorted(param_grid)
    combos = itertools.product(*(param_grid[k] for k in keys))
    return [dict(zip(keys, values)) for values in combos]


def grid_search(
    model_factory: Callable[..., FittableClassifier],
    param_grid: dict[str, list[Any]],
    X: np.ndarray,
    y: np.ndarray,
    groups: np.ndarray,
    scorer: Callable[[np.ndarray, np.ndarray], float] = average_precision,
    binned: BinnedDataset | None = None,
) -> GridSearchResult:
    """Grouped-CV grid search, scored on held-out groups.

    Every configuration is fitted once per fold (a fold = one training
    group held out entirely, as in the paper).  Folds whose held-out part
    has no positive samples are skipped for scoring (the metric would be
    undefined), matching how the paper handles its zero-hotspot designs.

    ``binned`` is the experiment split's shared
    :class:`~repro.ml.binning.BinnedDataset` over exactly the rows of
    ``X``: estimators that advertise ``accepts_binned`` receive each CV
    fold as a uint8 row slice (``binned.take(train_idx)``), so the whole
    search performs zero re-quantisations.  Fold cut points are therefore
    the ones learned on the full split matrix — the standard
    histogram-GBM approximation.
    """
    start = time.perf_counter()
    if binned is not None and binned.n_samples != len(X):
        raise ValueError("binned dataset does not cover the rows of X")
    splits = GroupKFold().split(groups)
    # per-fold binned row slices are shared by every grid configuration
    fold_binned: dict[int, BinnedDataset] = {}
    table: list[tuple[dict[str, Any], float, list[float]]] = []
    for params in iterate_grid(param_grid):
        fold_scores: list[float] = []
        for fold, (train_idx, val_idx, _) in enumerate(splits):
            y_val = y[val_idx]
            if y_val.sum() == 0 or y_val.sum() == len(y_val):
                continue
            model = model_factory(**params)
            if binned is not None and getattr(model, "accepts_binned", False):
                if fold not in fold_binned:
                    fold_binned[fold] = binned.take(train_idx)
                model.fit(X[train_idx], y[train_idx], binned=fold_binned[fold])
            else:
                model.fit(X[train_idx], y[train_idx])
            scores = positive_scores(model, X[val_idx])
            fold_scores.append(float(scorer(y_val, scores)))
        mean = float(np.mean(fold_scores)) if fold_scores else float("-inf")
        table.append((params, mean, fold_scores))

    best_params, best_score, _ = max(table, key=lambda t: t[1])
    return GridSearchResult(
        best_params=best_params,
        best_score=best_score,
        table=table,
        search_time_sec=time.perf_counter() - start,
    )
