"""Binned CART decision-tree classifier.

The base learner underneath the Random Forest and RUSBoost models.  Split
search is histogram-based over pre-binned features
(:mod:`repro.ml.binning`): every node owns one weighted ``(F, B)``
histogram pair (totals and positives), where ``B`` is the *actual* widest
bin count of the mapper — not a hardcoded 256 — so a node costs
O(n_node · F + F · B) instead of O(n_node log n_node · F).

Two histogram tricks keep that cost down (LightGBM-style):

* **feature-major gather** — codes live in a cached ``(F, n)`` contiguous
  matrix shared by every tree grown from the same
  :class:`~repro.ml.binning.BinnedDataset`; one node's histogram input is a
  single ``codes_T[:, indices]`` gather, with no per-node ``np.tile``
  temporaries;
* **sibling subtraction** — after a split, only the *smaller* child's
  histogram is built from data; the sibling's is derived as
  ``parent − small`` (exact for integer-valued weights such as bootstrap
  counts; for fractional weights each bin drifts by at most ~1 ulp of the
  parent sum, because parent and child accumulate their weights in
  different orders).  That drift can perturb *exactly tied* gains, so the
  split scan resolves ties with a tolerance: every cut within a hair of
  the best gain counts as tied and the first one wins, which makes
  subtraction-built trees bit-identical to direct-histogram trees.
  Subtraction is applied per node only where it is actually cheaper — the
  derived histogram costs O(F·B) while a direct build costs O(F·n rows),
  so tiny deep-tree nodes keep the direct path (the result is identical
  either way; the gate is purely a cost decision).

Histograms are built over **all** features; the per-node random subset
(``max_features``) is applied as a mask when scanning for the best split.
That is what makes parent-minus-child subtraction valid under per-node
feature sampling — parent and child histograms always cover the same
feature set.  Telemetry counters ``ml.hist.builds``,
``ml.hist.subtractions`` and ``ml.tree.nodes`` (also kept per-fit in
``fit_stats_``) let the run manifest prove the build/subtraction ratio.

The fitted tree is stored as flat parallel arrays (the same layout
scikit-learn uses), which is exactly what the SHAP tree explainer needs:
``children_left/right``, ``feature``, ``threshold``, ``cover`` (weighted
sample count) and ``value`` (P(class 1)) per node.

Split convention: a sample goes **left iff x[feature] < threshold** (real
thresholds reconstructed from bin boundaries).

Supports: gini or entropy criterion, per-node random feature subsets
(``max_features``), sample weights (for boosting), depth/leaf limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.telemetry import get_tracer
from .binning import BinMapper, BinnedDataset, as_binned_dataset

#: sentinel for "no child" / "not a split node"
LEAF = -1


@dataclass
class TreeArrays:
    """Flat array representation of a fitted decision tree."""

    children_left: np.ndarray  # int32, LEAF at leaves
    children_right: np.ndarray
    feature: np.ndarray  # int32, LEAF at leaves
    threshold: np.ndarray  # float64, NaN at leaves
    cover: np.ndarray  # float64 weighted sample count per node
    value: np.ndarray  # float64 P(class 1) per node

    @property
    def node_count(self) -> int:
        return len(self.children_left)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.children_left == LEAF))

    def max_depth(self) -> int:
        depth = np.zeros(self.node_count, dtype=np.int32)
        for node in range(self.node_count):
            left, right = self.children_left[node], self.children_right[node]
            if left != LEAF:
                depth[left] = depth[node] + 1
                depth[right] = depth[node] + 1
        return int(depth.max()) if self.node_count else 0

    def predict_proba_positive(self, X: np.ndarray) -> np.ndarray:
        """P(class 1) for each row of (unbinned) X."""
        X = np.asarray(X, dtype=np.float64)
        nodes = np.zeros(len(X), dtype=np.int64)
        active = self.children_left[nodes] != LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = nodes[idx]
            go_left = X[idx, self.feature[cur]] < self.threshold[cur]
            nodes[idx] = np.where(
                go_left, self.children_left[cur], self.children_right[cur]
            )
            active[idx] = self.children_left[nodes[idx]] != LEAF
        return self.value[nodes]

    def decision_path_lengths(self, X: np.ndarray) -> np.ndarray:
        """Number of internal-node comparisons each sample traverses."""
        X = np.asarray(X, dtype=np.float64)
        nodes = np.zeros(len(X), dtype=np.int64)
        lengths = np.zeros(len(X), dtype=np.int64)
        active = self.children_left[nodes] != LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = nodes[idx]
            lengths[idx] += 1
            go_left = X[idx, self.feature[cur]] < self.threshold[cur]
            nodes[idx] = np.where(
                go_left, self.children_left[cur], self.children_right[cur]
            )
            active[idx] = self.children_left[nodes[idx]] != LEAF
        return lengths


def _impurity(pos: np.ndarray, tot: np.ndarray, criterion: str) -> np.ndarray:
    """Vector impurity of (pos, tot) weighted counts; 0 where tot == 0."""
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(tot > 0, pos / np.maximum(tot, 1e-300), 0.0)
    if criterion == "gini":
        return 2.0 * p * (1.0 - p)
    # entropy (in nats)
    with np.errstate(divide="ignore", invalid="ignore"):
        h = -(
            np.where(p > 0, p * np.log(p), 0.0)
            + np.where(p < 1, (1 - p) * np.log(1 - p), 0.0)
        )
    return h


class _NodeTask:
    """Work item of the depth-first growth stack."""

    __slots__ = ("indices", "depth", "parent", "is_left", "tot", "pos",
                 "hist_tot", "hist_pos")

    def __init__(self, indices, depth, parent, is_left, tot, pos,
                 hist_tot=None, hist_pos=None):
        self.indices = indices
        self.depth = depth
        self.parent = parent
        self.is_left = is_left
        self.tot = tot  # exact weighted sample count (never histogram-derived)
        self.pos = pos
        self.hist_tot = hist_tot  # (F, B) or None -> build on demand
        self.hist_pos = hist_pos


class DecisionTreeClassifier:
    """CART for binary classification over binned features.

    Parameters mirror scikit-learn where they share names.  ``max_features``
    may be ``"sqrt"``, ``"log2"``, ``None`` (all), an int, or a float
    fraction.  ``hist_subtraction`` disables the sibling-subtraction trick
    (both children built from data) — the reference mode the equivalence
    property tests compare against.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: str | int | float | None = "sqrt",
        criterion: str = "gini",
        max_bins: int = 256,
        random_state: int | np.random.Generator | None = None,
        hist_subtraction: bool = True,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.criterion = criterion
        self.max_bins = max_bins
        self.random_state = random_state
        self.hist_subtraction = hist_subtraction
        self.tree_: TreeArrays | None = None
        self.fit_stats_: dict[str, int] = {}
        self._mapper: BinMapper | None = None

    # -- sklearn-ish API ------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray | None,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        binned: BinnedDataset | tuple[BinMapper, np.ndarray] | None = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree.

        ``binned`` lets an ensemble share one :class:`BinnedDataset` (or the
        legacy ``(mapper, codes)`` pair) across hundreds of trees instead of
        re-binning per tree; with it, ``X`` may be ``None`` — prediction
        uses real-valued thresholds, never the training matrix.
        """
        y = np.asarray(y).astype(np.int8).ravel()
        if X is not None:
            X = np.asarray(X, dtype=np.float64)
            if X.ndim != 2 or len(X) != len(y):
                raise ValueError("bad X/y shapes")
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be binary 0/1")
        dataset = as_binned_dataset(binned, X, self.max_bins)
        if dataset.n_samples != len(y):
            raise ValueError("binned codes / y length mismatch")
        n, n_features = dataset.n_samples, dataset.n_features
        w = (
            np.ones(n, dtype=np.float64)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64).ravel()
        )
        if w.shape != (n,):
            raise ValueError("sample_weight shape mismatch")

        mapper = dataset.mapper
        self._mapper = mapper
        rng = (
            self.random_state
            if isinstance(self.random_state, np.random.Generator)
            else np.random.default_rng(self.random_state)
        )
        mtry = self._resolve_max_features(n_features)

        if not w.sum() > 0:
            raise ValueError("all sample weights are zero")
        # Normalise to mean weight 1 so min_samples_* thresholds (compared
        # against weighted counts) keep their "effective samples" meaning
        # regardless of the caller's weight scale (boosting uses ~1/n).
        # Zero-weight rows stay in the index sets: they contribute nothing
        # to any histogram but do count toward min_samples_split, exactly
        # like the pre-histogram-subtraction implementation.
        w = w * (n / w.sum())
        wy = w * (y == 1)
        root_idx = np.arange(n, dtype=np.int64)

        codes_T = dataset.codes_T
        B = dataset.n_bins_max
        can_split = B >= 2
        msl = float(self.min_samples_leaf)
        n_builds = n_subtractions = 0
        offsets = np.arange(n_features, dtype=np.int64)[:, None] * B

        def build_hist(indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """One weighted (F, B) histogram pair from a contiguous gather."""
            sub = codes_T[:, indices]  # (F, n_node), C-contiguous
            flat = (offsets + sub).ravel()
            shape = sub.shape
            h_tot = np.bincount(
                flat, weights=np.broadcast_to(w[indices], shape).ravel(),
                minlength=n_features * B,
            ).reshape(n_features, B)
            h_pos = np.bincount(
                flat, weights=np.broadcast_to(wy[indices], shape).ravel(),
                minlength=n_features * B,
            ).reshape(n_features, B)
            return h_tot, h_pos

        # growable node arrays
        cl: list[int] = []
        cr: list[int] = []
        feat: list[int] = []
        thr: list[float] = []
        cover: list[float] = []
        value: list[float] = []

        def new_node(tot: float, pos: float) -> int:
            node_id = len(cl)
            cl.append(LEAF)
            cr.append(LEAF)
            feat.append(LEAF)
            thr.append(np.nan)
            cover.append(tot)
            value.append(pos / tot if tot > 0 else 0.0)
            return node_id

        def may_split(n_child: int, depth: int, tot: float, pos: float) -> bool:
            """Whether a child node can possibly be split further."""
            if not can_split or n_child < self.min_samples_split:
                return False
            if self.max_depth is not None and depth >= self.max_depth:
                return False
            return 0.0 < pos < tot  # not pure

        root_tot = float(w[root_idx].sum())
        root_pos = float(wy[root_idx].sum())
        stack = [_NodeTask(root_idx, 0, -1, False, root_tot, root_pos)]
        while stack:
            task = stack.pop()
            node_id = new_node(task.tot, task.pos)
            if task.parent >= 0:
                if task.is_left:
                    cl[task.parent] = node_id
                else:
                    cr[task.parent] = node_id
            if not may_split(len(task.indices), task.depth, task.tot, task.pos):
                continue

            # the per-node feature subset is drawn before the histogram so
            # the RNG stream is identical with and without subtraction;
            # sorted so the scan's first-wins tie-break follows global
            # feature order, independent of the draw order
            allowed = (
                np.sort(rng.choice(n_features, size=mtry, replace=False))
                if mtry < n_features
                else None
            )
            if task.hist_tot is None:
                hist_tot, hist_pos = build_hist(task.indices)
                n_builds += 1
            else:
                hist_tot, hist_pos = task.hist_tot, task.hist_pos
                task.hist_tot = task.hist_pos = None
            split = self._scan_histogram(
                hist_tot, hist_pos, task.tot, task.pos, allowed
            )
            if split is None:
                continue
            f, cut = split
            feat[node_id] = f
            thr[node_id] = mapper.threshold_value(f, cut)
            left_mask = codes_T[f, task.indices] <= cut
            left_idx = task.indices[left_mask]
            right_idx = task.indices[~left_mask]
            # exact child stats from data (never histogram-derived, so the
            # stored cover/value and the stop checks are identical with and
            # without subtraction)
            l_tot = float(w[left_idx].sum())
            l_pos = float(wy[left_idx].sum())
            r_tot = float(w[right_idx].sum())
            r_pos = float(wy[right_idx].sum())

            left = _NodeTask(left_idx, task.depth + 1, node_id, True, l_tot, l_pos)
            right = _NodeTask(right_idx, task.depth + 1, node_id, False, r_tot, r_pos)
            need_l = may_split(len(left_idx), left.depth, l_tot, l_pos)
            need_r = may_split(len(right_idx), right.depth, r_tot, r_pos)
            if need_l or need_r:
                small, big = (
                    (left, right) if len(left_idx) <= len(right_idx) else (right, left)
                )
                need_small = need_l if small is left else need_r
                need_big = need_r if small is left else need_l
                # When the small child's histogram is needed anyway, deriving
                # the big sibling replaces a whole build with one cheap
                # (F, B) subtraction — always a win.  When the small build
                # would happen *only* to enable the subtraction, the win is
                # just the row-count difference between the children, which
                # must beat the subtraction's O(F·B) cost (crossover is
                # around B/8 rows: a bin-wise subtract touches ~2·B cells per
                # feature at a fraction of the per-row gather+bincount cost).
                worth = need_small or (
                    len(big.indices) - len(small.indices) >= B // 8
                )
                if self.hist_subtraction and need_big and worth:
                    small_tot, small_pos = build_hist(small.indices)
                    n_builds += 1
                    # reuse the parent's arrays for the derived sibling
                    np.subtract(hist_tot, small_tot, out=hist_tot)
                    np.subtract(hist_pos, small_pos, out=hist_pos)
                    n_subtractions += 1
                    big.hist_tot, big.hist_pos = hist_tot, hist_pos
                    if need_small:
                        small.hist_tot, small.hist_pos = small_tot, small_pos
                else:
                    for child, needed in ((small, need_small), (big, need_big)):
                        if needed:
                            child.hist_tot, child.hist_pos = build_hist(child.indices)
                            n_builds += 1
            # push right first so the left child is materialised immediately
            # after its parent (purely cosmetic: sklearn-like preordering)
            stack.append(right)
            stack.append(left)

        self.tree_ = TreeArrays(
            children_left=np.asarray(cl, dtype=np.int32),
            children_right=np.asarray(cr, dtype=np.int32),
            feature=np.asarray(feat, dtype=np.int32),
            threshold=np.asarray(thr, dtype=np.float64),
            cover=np.asarray(cover, dtype=np.float64),
            value=np.asarray(value, dtype=np.float64),
        )
        self.fit_stats_ = {
            "ml.hist.builds": n_builds,
            "ml.hist.subtractions": n_subtractions,
            "ml.tree.nodes": len(cl),
        }
        tracer = get_tracer()
        for name, v in self.fit_stats_.items():
            tracer.counter(name, v)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) class probabilities."""
        if self.tree_ is None:
            raise RuntimeError("tree not fitted")
        p1 = self.tree_.predict_proba_positive(X)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int8)

    # -- internals -----------------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            return max(1, min(n_features, int(mf * n_features)))
        if isinstance(mf, int):
            return max(1, min(n_features, mf))
        raise ValueError(f"bad max_features {mf!r}")

    def _scan_histogram(
        self,
        hist_tot: np.ndarray,
        hist_pos: np.ndarray,
        w_tot: float,
        w_pos: float,
        allowed: np.ndarray | None,
    ) -> tuple[int, int] | None:
        """Best (feature, bin cut) in a node's histogram, or None for a leaf.

        ``allowed`` is the node's random feature subset; the scan slices the
        full-F histograms down to those rows, so subsampling never changes
        which histograms get built (that is what keeps subtraction valid)
        while the prefix-sum/impurity math only pays for ``mtry`` features.
        """
        if allowed is not None:
            hist_tot = hist_tot[allowed]
            hist_pos = hist_pos[allowed]
        B = hist_tot.shape[1]
        # prefix sums: splitting after bin c puts codes <= c on the left
        left_tot = np.cumsum(hist_tot, axis=1)[:, :-1]
        left_pos = np.cumsum(hist_pos, axis=1)[:, :-1]
        right_tot = w_tot - left_tot
        right_pos = w_pos - left_pos

        parent_imp = _impurity(
            np.array([w_pos]), np.array([w_tot]), self.criterion
        )[0]
        child_imp = (
            left_tot * _impurity(left_pos, left_tot, self.criterion)
            + right_tot * _impurity(right_pos, right_tot, self.criterion)
        ) / w_tot
        gain = parent_imp - child_imp

        # feasibility: both sides non-empty & honour min_samples_leaf
        # (approximated in weighted counts; exact for unit weights).  Cuts at
        # or past a narrow feature's last bin leave the right side empty and
        # are excluded here too.
        feasible = (left_tot >= self.min_samples_leaf) & (
            right_tot >= self.min_samples_leaf
        )
        gain = np.where(feasible, gain, -np.inf)
        best_gain = float(gain.max())
        if not np.isfinite(best_gain) or best_gain <= 1e-12:
            return None
        # Deterministic tie-break, immune to sibling-subtraction drift: a
        # derived (parent - small) histogram can carry ~1 ulp residue even in
        # bins that are exactly empty in the child (different summation
        # order), which would let a plain argmax pick different members of an
        # exactly-tied cut set than the direct build does.  Treat every cut
        # within a hair of the best gain as tied and take the first — both
        # modes see the same tie set because true gain gaps are either zero
        # or orders of magnitude wider than the drift.
        tol = 1e-9 * max(1.0, abs(best_gain))
        best_flat = int(np.argmax(gain.ravel() >= best_gain - tol))
        f, cut = divmod(best_flat, B - 1)
        if allowed is not None:
            f = int(allowed[f])
        return int(f), int(cut)
