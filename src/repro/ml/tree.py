"""Binned CART decision-tree classifier.

The base learner underneath the Random Forest and RUSBoost models.  Split
search is histogram-based over pre-binned features
(:mod:`repro.ml.binning`): for every candidate feature, one weighted
``bincount`` over the node's samples yields all candidate splits at once,
so a node costs O(n_node · mtry) instead of O(n_node log n_node · mtry).

The fitted tree is stored as flat parallel arrays (the same layout
scikit-learn uses), which is exactly what the SHAP tree explainer needs:
``children_left/right``, ``feature``, ``threshold``, ``cover`` (weighted
sample count) and ``value`` (P(class 1)) per node.

Split convention: a sample goes **left iff x[feature] < threshold** (real
thresholds reconstructed from bin boundaries).

Supports: gini or entropy criterion, per-node random feature subsets
(``max_features``), sample weights (for boosting), depth/leaf limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .binning import BinMapper

#: sentinel for "no child" / "not a split node"
LEAF = -1


@dataclass
class TreeArrays:
    """Flat array representation of a fitted decision tree."""

    children_left: np.ndarray  # int32, LEAF at leaves
    children_right: np.ndarray
    feature: np.ndarray  # int32, LEAF at leaves
    threshold: np.ndarray  # float64, NaN at leaves
    cover: np.ndarray  # float64 weighted sample count per node
    value: np.ndarray  # float64 P(class 1) per node

    @property
    def node_count(self) -> int:
        return len(self.children_left)

    @property
    def n_leaves(self) -> int:
        return int(np.sum(self.children_left == LEAF))

    def max_depth(self) -> int:
        depth = np.zeros(self.node_count, dtype=np.int32)
        for node in range(self.node_count):
            left, right = self.children_left[node], self.children_right[node]
            if left != LEAF:
                depth[left] = depth[node] + 1
                depth[right] = depth[node] + 1
        return int(depth.max()) if self.node_count else 0

    def predict_proba_positive(self, X: np.ndarray) -> np.ndarray:
        """P(class 1) for each row of (unbinned) X."""
        X = np.asarray(X, dtype=np.float64)
        nodes = np.zeros(len(X), dtype=np.int64)
        active = self.children_left[nodes] != LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = nodes[idx]
            go_left = X[idx, self.feature[cur]] < self.threshold[cur]
            nodes[idx] = np.where(
                go_left, self.children_left[cur], self.children_right[cur]
            )
            active[idx] = self.children_left[nodes[idx]] != LEAF
        return self.value[nodes]

    def decision_path_lengths(self, X: np.ndarray) -> np.ndarray:
        """Number of internal-node comparisons each sample traverses."""
        X = np.asarray(X, dtype=np.float64)
        nodes = np.zeros(len(X), dtype=np.int64)
        lengths = np.zeros(len(X), dtype=np.int64)
        active = self.children_left[nodes] != LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = nodes[idx]
            lengths[idx] += 1
            go_left = X[idx, self.feature[cur]] < self.threshold[cur]
            nodes[idx] = np.where(
                go_left, self.children_left[cur], self.children_right[cur]
            )
            active[idx] = self.children_left[nodes[idx]] != LEAF
        return lengths


def _impurity(pos: np.ndarray, tot: np.ndarray, criterion: str) -> np.ndarray:
    """Vector impurity of (pos, tot) weighted counts; 0 where tot == 0."""
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(tot > 0, pos / np.maximum(tot, 1e-300), 0.0)
    if criterion == "gini":
        return 2.0 * p * (1.0 - p)
    # entropy (in nats)
    with np.errstate(divide="ignore", invalid="ignore"):
        h = -(
            np.where(p > 0, p * np.log(p), 0.0)
            + np.where(p < 1, (1 - p) * np.log(1 - p), 0.0)
        )
    return h


@dataclass
class _NodeTask:
    """Work item of the depth-first growth stack."""

    indices: np.ndarray
    depth: int
    parent: int
    is_left: bool


class DecisionTreeClassifier:
    """CART for binary classification over binned features.

    Parameters mirror scikit-learn where they share names.  ``max_features``
    may be ``"sqrt"``, ``"log2"``, ``None`` (all), an int, or a float
    fraction.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: str | int | float | None = "sqrt",
        criterion: str = "gini",
        max_bins: int = 256,
        random_state: int | np.random.Generator | None = None,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.criterion = criterion
        self.max_bins = max_bins
        self.random_state = random_state
        self.tree_: TreeArrays | None = None
        self._mapper: BinMapper | None = None

    # -- sklearn-ish API ------------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
        binned: tuple[BinMapper, np.ndarray] | None = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree.

        ``binned`` lets an ensemble share one (mapper, codes) pair across
        hundreds of trees instead of re-binning per tree.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int8).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("bad X/y shapes")
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be binary 0/1")
        n, n_features = X.shape
        w = (
            np.ones(n, dtype=np.float64)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64).ravel()
        )
        if w.shape != (n,):
            raise ValueError("sample_weight shape mismatch")

        if binned is not None:
            mapper, codes = binned
        else:
            mapper = BinMapper(self.max_bins)
            codes = mapper.fit_transform(X)
        self._mapper = mapper
        rng = (
            self.random_state
            if isinstance(self.random_state, np.random.Generator)
            else np.random.default_rng(self.random_state)
        )
        mtry = self._resolve_max_features(n_features)

        # Zero-weight samples (bootstrap misses, boosting zeros) can never
        # influence a split — drop them up front.  With bootstrap weights
        # this removes ~37% of rows from every histogram.
        nonzero = np.flatnonzero(w > 0)
        if len(nonzero) == 0:
            raise ValueError("all sample weights are zero")
        if len(nonzero) < n:
            codes = codes[nonzero]
            y = y[nonzero]
            w = w[nonzero]
            n = len(nonzero)
        # Normalise to mean weight 1 so min_samples_* thresholds (compared
        # against weighted counts) keep their "effective samples" meaning
        # regardless of the caller's weight scale (boosting uses ~1/n).
        w = w * (n / w.sum())

        # growable node arrays
        cl: list[int] = []
        cr: list[int] = []
        feat: list[int] = []
        thr: list[float] = []
        cover: list[float] = []
        value: list[float] = []

        def new_node(indices: np.ndarray) -> int:
            node_id = len(cl)
            cl.append(LEAF)
            cr.append(LEAF)
            feat.append(LEAF)
            thr.append(np.nan)
            wi = w[indices]
            tot = float(wi.sum())
            pos = float(wi[y[indices] == 1].sum())
            cover.append(tot)
            value.append(pos / tot if tot > 0 else 0.0)
            return node_id

        root_idx = np.arange(n, dtype=np.int64)
        stack = [_NodeTask(root_idx, 0, parent=-1, is_left=False)]
        while stack:
            task = stack.pop()
            node_id = new_node(task.indices)
            if task.parent >= 0:
                if task.is_left:
                    cl[task.parent] = node_id
                else:
                    cr[task.parent] = node_id

            split = self._find_split(codes, y, w, task.indices, task.depth, mtry, rng)
            if split is None:
                continue
            f, code_cut, left_mask = split
            feat[node_id] = f
            thr[node_id] = mapper.threshold_value(f, code_cut)
            left_idx = task.indices[left_mask]
            right_idx = task.indices[~left_mask]
            # push right first so the left child is materialised immediately
            # after its parent (purely cosmetic: sklearn-like preordering)
            stack.append(_NodeTask(right_idx, task.depth + 1, node_id, False))
            stack.append(_NodeTask(left_idx, task.depth + 1, node_id, True))

        self.tree_ = TreeArrays(
            children_left=np.asarray(cl, dtype=np.int32),
            children_right=np.asarray(cr, dtype=np.int32),
            feature=np.asarray(feat, dtype=np.int32),
            threshold=np.asarray(thr, dtype=np.float64),
            cover=np.asarray(cover, dtype=np.float64),
            value=np.asarray(value, dtype=np.float64),
        )
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """(n, 2) class probabilities."""
        if self.tree_ is None:
            raise RuntimeError("tree not fitted")
        p1 = self.tree_.predict_proba_positive(X)
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int8)

    # -- internals -----------------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            return max(1, min(n_features, int(mf * n_features)))
        if isinstance(mf, int):
            return max(1, min(n_features, mf))
        raise ValueError(f"bad max_features {mf!r}")

    def _find_split(
        self,
        codes: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        indices: np.ndarray,
        depth: int,
        mtry: int,
        rng: np.random.Generator,
    ) -> tuple[int, int, np.ndarray] | None:
        """Best (feature, bin cut, left mask) at a node, or None for a leaf."""
        n_node = len(indices)
        if n_node < self.min_samples_split:
            return None
        if self.max_depth is not None and depth >= self.max_depth:
            return None
        yi = y[indices]
        wi = w[indices]
        w_tot = wi.sum()
        w_pos = wi[yi == 1].sum()
        if w_pos <= 0.0 or w_pos >= w_tot:  # pure node
            return None

        n_features = codes.shape[1]
        feats = (
            rng.choice(n_features, size=mtry, replace=False)
            if mtry < n_features
            else np.arange(n_features)
        )
        sub = codes[indices][:, feats].astype(np.int64)  # (n_node, mtry)

        # one flattened weighted histogram for all candidate features
        flat = sub + np.arange(len(feats), dtype=np.int64) * 256
        minlength = len(feats) * 256
        hist_tot = np.bincount(flat.ravel(order="F"), weights=np.tile(wi, len(feats)), minlength=minlength)
        wi_pos = wi * (yi == 1)
        hist_pos = np.bincount(flat.ravel(order="F"), weights=np.tile(wi_pos, len(feats)), minlength=minlength)
        hist_tot = hist_tot.reshape(len(feats), 256)
        hist_pos = hist_pos.reshape(len(feats), 256)

        # prefix sums: splitting after bin c puts codes <= c on the left
        left_tot = np.cumsum(hist_tot, axis=1)[:, :-1]
        left_pos = np.cumsum(hist_pos, axis=1)[:, :-1]
        right_tot = w_tot - left_tot
        right_pos = w_pos - left_pos

        parent_imp = _impurity(
            np.array([w_pos]), np.array([w_tot]), self.criterion
        )[0]
        child_imp = (
            left_tot * _impurity(left_pos, left_tot, self.criterion)
            + right_tot * _impurity(right_pos, right_tot, self.criterion)
        ) / w_tot
        gain = parent_imp - child_imp

        # feasibility: both sides non-empty & honour min_samples_leaf
        # (approximated in weighted counts; exact for unit weights)
        feasible = (left_tot >= self.min_samples_leaf) & (
            right_tot >= self.min_samples_leaf
        )
        gain = np.where(feasible, gain, -np.inf)
        best_flat = int(np.argmax(gain))
        best_gain = gain.ravel()[best_flat]
        if not np.isfinite(best_gain) or best_gain <= 1e-12:
            return None
        fi, cut = divmod(best_flat, 255)
        f_global = int(feats[fi])
        left_mask = sub[:, fi] <= cut
        return f_global, int(cut), left_mask
