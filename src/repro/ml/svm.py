"""C-SVC with RBF kernel, trained by SMO (Platt 1998 / LIBSVM WSS).

The strongest comparison model of the paper ([2], [3], [5] all use SVM-RBF
via scikit-learn/libsvm).  We solve the standard dual

    max  Σαᵢ − ½ ΣᵢΣⱼ αᵢαⱼ yᵢyⱼ K(xᵢ,xⱼ)    s.t.  0 ≤ αᵢ ≤ Cᵢ,  Σαᵢyᵢ = 0

with sequential minimal optimisation using maximal-violating-pair working
set selection and an LRU kernel-row cache.  Per-class C weighting
(``class_weight="balanced"``) handles the heavy label imbalance.

Exact kernel SVM training is O(n²)–O(n³); the paper reports it as by far
the most expensive model (65.7 min vs 8.9 min for RF).  We keep that cost
*shape* but bound absolute runtime with ``max_train_samples``: training is
capped to a class-stratified subsample (all positives, random negatives),
which is standard practice for SVMs on imbalanced data.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np


class _KernelCache:
    """LRU cache of RBF kernel rows."""

    def __init__(self, X: np.ndarray, gamma: float, capacity: int = 512):
        self.X = X
        self.sq = np.einsum("ij,ij->i", X, X)
        self.gamma = gamma
        self.capacity = capacity
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()

    def row(self, i: int) -> np.ndarray:
        cached = self._rows.get(i)
        if cached is not None:
            self._rows.move_to_end(i)
            return cached
        d2 = self.sq + self.sq[i] - 2.0 * (self.X @ self.X[i])
        row = np.exp(-self.gamma * np.maximum(d2, 0.0))
        self._rows[i] = row
        if len(self._rows) > self.capacity:
            self._rows.popitem(last=False)
        return row


def rbf_kernel(A: np.ndarray, B: np.ndarray, gamma: float) -> np.ndarray:
    """Dense RBF kernel matrix K[i, j] = exp(-gamma ||A_i - B_j||²)."""
    a2 = np.einsum("ij,ij->i", A, A)[:, None]
    b2 = np.einsum("ij,ij->i", B, B)[None, :]
    d2 = np.maximum(a2 + b2 - 2.0 * (A @ B.T), 0.0)
    return np.exp(-gamma * d2)


class SVMClassifier:
    """RBF-kernel C-SVC trained with SMO.

    ``gamma="scale"`` follows sklearn: ``1 / (n_features · Var(X))``.
    """

    def __init__(
        self,
        C: float = 1.0,
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_iter: int = 200_000,
        class_weight: str | None = "balanced",
        max_train_samples: int | None = 4000,
        cache_rows: int = 1024,
        random_state: int | None = None,
    ):
        self.C = C
        self.gamma = gamma
        self.tol = tol
        self.max_iter = max_iter
        self.class_weight = class_weight
        self.max_train_samples = max_train_samples
        self.cache_rows = cache_rows
        self.random_state = random_state
        # fitted state
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None  # alpha_i * y_i at SVs
        self.intercept_: float = 0.0
        self.gamma_: float | None = None
        self.n_iter_: int = 0

    # -- fitting ---------------------------------------------------------------------

    def _subsample(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        cap = self.max_train_samples
        if cap is None or len(X) <= cap:
            return X, y
        pos = np.flatnonzero(y == 1)
        neg = np.flatnonzero(y == 0)
        n_neg = max(cap - len(pos), len(pos))  # keep at least 1:1
        if len(neg) > n_neg:
            neg = rng.choice(neg, size=n_neg, replace=False)
        keep = np.sort(np.concatenate([pos, neg]))
        return X[keep], y[keep]

    def fit(self, X: np.ndarray, y01: np.ndarray) -> "SVMClassifier":
        X = np.asarray(X, dtype=np.float64)
        y01 = np.asarray(y01).astype(np.int8).ravel()
        if not np.isin(y01, (0, 1)).all():
            raise ValueError("labels must be 0/1")
        rng = np.random.default_rng(self.random_state)
        X, y01 = self._subsample(X, y01, rng)
        n = len(X)
        y = np.where(y01 == 1, 1.0, -1.0)

        if self.gamma == "scale":
            var = X.var()
            self.gamma_ = 1.0 / (X.shape[1] * var) if var > 0 else 1.0
        else:
            self.gamma_ = float(self.gamma)

        # per-sample box constraints
        C_i = np.full(n, self.C)
        if self.class_weight == "balanced":
            pos = max(int((y > 0).sum()), 1)
            neg = max(n - pos, 1)
            C_i[y > 0] *= n / (2.0 * pos)
            C_i[y < 0] *= n / (2.0 * neg)

        alpha = np.zeros(n)
        grad = -np.ones(n)  # gradient of the dual objective wrt alpha
        cache = _KernelCache(X, self.gamma_, capacity=self.cache_rows)

        it = 0
        while it < self.max_iter:
            it += 1
            # maximal violating pair (LIBSVM WSS1)
            yg = -y * grad
            up_mask = ((y > 0) & (alpha < C_i)) | ((y < 0) & (alpha > 0))
            low_mask = ((y > 0) & (alpha > 0)) | ((y < 0) & (alpha < C_i))
            if not up_mask.any() or not low_mask.any():
                break
            i = int(np.argmax(np.where(up_mask, yg, -np.inf)))
            j = int(np.argmin(np.where(low_mask, yg, np.inf)))
            if yg[i] - yg[j] < self.tol:
                break

            Ki = cache.row(i)
            Kj = cache.row(j)
            eta = Ki[i] + Kj[j] - 2.0 * Ki[j]
            eta = max(eta, 1e-12)
            # unconstrained step along the pair direction
            delta = (yg[i] - yg[j]) / eta
            # box clipping in alpha space
            ai_old, aj_old = alpha[i], alpha[j]
            yi, yj = y[i], y[j]
            # translate to step t on (alpha_i += yi*t, alpha_j -= yj*t)
            t = delta
            t = min(t, (C_i[i] - ai_old) if yi > 0 else ai_old)
            t = min(t, aj_old if yj > 0 else (C_i[j] - aj_old))
            if t <= 0:
                continue
            # step direction (alpha_i += y_i t, alpha_j -= y_j t) keeps
            # the equality constraint y.alpha = 0 satisfied
            alpha[i] = ai_old + (t if yi > 0 else -t)
            alpha[j] = aj_old - (t if yj > 0 else -t)
            grad += (y[i] * (alpha[i] - ai_old)) * (y * Ki)
            grad += (y[j] * (alpha[j] - aj_old)) * (y * Kj)
        self.n_iter_ = it

        sv = alpha > 1e-8
        self.support_vectors_ = X[sv]
        self.dual_coef_ = (alpha * y)[sv]
        # intercept from free support vectors (0 < alpha < C)
        free = sv & (alpha < C_i - 1e-8)
        if free.any():
            idx = np.flatnonzero(free)
            K_free = rbf_kernel(X[idx], self.support_vectors_, self.gamma_)
            b_vals = y[idx] - K_free @ self.dual_coef_
            self.intercept_ = float(b_vals.mean())
        else:
            yg = -y * grad
            self.intercept_ = float(-yg[alpha > 1e-8].mean()) if sv.any() else 0.0
        return self

    # -- prediction --------------------------------------------------------------------

    @property
    def n_support_(self) -> int:
        return 0 if self.support_vectors_ is None else len(self.support_vectors_)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.support_vectors_ is None or self.dual_coef_ is None:
            raise RuntimeError("SVM not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X))
        # chunked to bound the kernel block size
        step = max(1, 2_000_000 // max(self.n_support_, 1))
        for s in range(0, len(X), step):
            block = rbf_kernel(X[s : s + step], self.support_vectors_, self.gamma_)
            out[s : s + step] = block @ self.dual_coef_ + self.intercept_
        return out

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Logistic squash of the margin (Platt scaling without refit)."""
        margin = self.decision_function(X)
        p1 = 1.0 / (1.0 + np.exp(-margin))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int8)

    def num_parameters(self) -> int:
        """Stored parameters: every SV vector plus its dual coef, plus b."""
        if self.support_vectors_ is None:
            raise RuntimeError("SVM not fitted")
        return self.n_support_ * (self.support_vectors_.shape[1] + 1) + 1
