"""Model persistence: save/load trained estimators as ``.npz`` archives.

Trained models are flow artefacts worth keeping (train once on the suite,
explain hotspots of new designs later).  Pickle would work but breaks on
refactors; the estimators here serialise to plain numpy archives with a
small JSON header instead, so saved models survive code changes that keep
the array layout.

Supported: :class:`~repro.ml.forest.RandomForestClassifier` (tree arrays),
:class:`~repro.ml.svm.SVMClassifier` (support vectors + dual coefficients),
:class:`~repro.ml.nn.MLPClassifier` (weight matrices) and
:class:`~repro.ml.scaling.StandardScaler`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .forest import RandomForestClassifier
from .nn import MLPClassifier
from .scaling import StandardScaler
from .svm import SVMClassifier
from .tree import DecisionTreeClassifier, TreeArrays

FORMAT_VERSION = 1


class ModelFormatError(ValueError):
    """Raised when a model archive is malformed or of an unknown kind."""


# ------------------------------------------------------------------ random forest


def save_forest(model: RandomForestClassifier, path: str | Path) -> Path:
    """Serialise a fitted forest to ``.npz``."""
    if not model.estimators_:
        raise ValueError("forest not fitted")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    header = {
        "kind": "random_forest",
        "version": FORMAT_VERSION,
        "n_trees": len(model.estimators_),
        "base_rate": model.base_rate_,
    }
    payload["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    for i, tree in enumerate(model.trees):
        payload[f"t{i}_children_left"] = tree.children_left
        payload[f"t{i}_children_right"] = tree.children_right
        payload[f"t{i}_feature"] = tree.feature
        payload[f"t{i}_threshold"] = tree.threshold
        payload[f"t{i}_cover"] = tree.cover
        payload[f"t{i}_value"] = tree.value
    np.savez_compressed(path, **payload)
    return path


def load_forest(path: str | Path) -> RandomForestClassifier:
    """Load a forest saved by :func:`save_forest`.

    The returned object predicts and explains; training-only attributes
    (binner, RNG) are not restored.
    """
    with np.load(path) as data:
        header = _read_header(data, expected_kind="random_forest")
        model = RandomForestClassifier(n_estimators=header["n_trees"])
        model.base_rate_ = header["base_rate"]
        estimators = []
        for i in range(header["n_trees"]):
            arrays = TreeArrays(
                children_left=data[f"t{i}_children_left"],
                children_right=data[f"t{i}_children_right"],
                feature=data[f"t{i}_feature"],
                threshold=data[f"t{i}_threshold"],
                cover=data[f"t{i}_cover"],
                value=data[f"t{i}_value"],
            )
            est = DecisionTreeClassifier()
            est.tree_ = arrays
            estimators.append(est)
        model.estimators_ = estimators
    return model


# ------------------------------------------------------------------------- svm


def save_svm(model: SVMClassifier, path: str | Path) -> Path:
    if model.support_vectors_ is None or model.dual_coef_ is None:
        raise ValueError("SVM not fitted")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "kind": "svm_rbf",
        "version": FORMAT_VERSION,
        "gamma": model.gamma_,
        "intercept": model.intercept_,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        support_vectors=model.support_vectors_,
        dual_coef=model.dual_coef_,
    )
    return path


def load_svm(path: str | Path) -> SVMClassifier:
    with np.load(path) as data:
        header = _read_header(data, expected_kind="svm_rbf")
        model = SVMClassifier()
        model.gamma_ = header["gamma"]
        model.intercept_ = header["intercept"]
        model.support_vectors_ = data["support_vectors"]
        model.dual_coef_ = data["dual_coef"]
    return model


# ------------------------------------------------------------------------- mlp


def save_mlp(model: MLPClassifier, path: str | Path) -> Path:
    if not model.weights_:
        raise ValueError("MLP not fitted")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "kind": "mlp",
        "version": FORMAT_VERSION,
        "n_layers": len(model.weights_),
        "hidden_layers": list(model.hidden_layers),
    }
    payload = {
        "header": np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    }
    for i, (W, b) in enumerate(zip(model.weights_, model.biases_)):
        payload[f"W{i}"] = W
        payload[f"b{i}"] = b
    np.savez_compressed(path, **payload)
    return path


def load_mlp(path: str | Path) -> MLPClassifier:
    with np.load(path) as data:
        header = _read_header(data, expected_kind="mlp")
        model = MLPClassifier(hidden_layers=tuple(header["hidden_layers"]))
        model.weights_ = [data[f"W{i}"] for i in range(header["n_layers"])]
        model.biases_ = [data[f"b{i}"] for i in range(header["n_layers"])]
    return model


# ----------------------------------------------------------------------- scaler


def save_scaler(scaler: StandardScaler, path: str | Path) -> Path:
    if scaler.mean_ is None or scaler.scale_ is None:
        raise ValueError("scaler not fitted")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {"kind": "standard_scaler", "version": FORMAT_VERSION}
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        mean=scaler.mean_,
        scale=scaler.scale_,
    )
    return path


def load_scaler(path: str | Path) -> StandardScaler:
    with np.load(path) as data:
        _read_header(data, expected_kind="standard_scaler")
        scaler = StandardScaler()
        scaler.mean_ = data["mean"]
        scaler.scale_ = data["scale"]
    return scaler


# --------------------------------------------------------------------- internals


def _read_header(data, expected_kind: str) -> dict:
    if "header" not in data:
        raise ModelFormatError("not a repro model archive (missing header)")
    header = json.loads(bytes(data["header"]).decode())
    if header.get("kind") != expected_kind:
        raise ModelFormatError(
            f"archive holds {header.get('kind')!r}, expected {expected_kind!r}"
        )
    if header.get("version") != FORMAT_VERSION:
        raise ModelFormatError(f"unsupported model format {header.get('version')}")
    return header
