"""Feature binning for fast histogram-based tree construction.

Exact CART split search sorts every feature at every node — O(n log n) per
feature per node.  Like modern gradient-boosting libraries, we instead
quantise each feature into at most 256 bins *once*, and every node split
search becomes a histogram scan.  With the small-integer and
piecewise-smooth features of this problem (counts, capacities, loads), 256
quantile bins lose essentially nothing: most features have far fewer
distinct values than bins.

The mapper records the candidate cut value of every bin boundary so the
final tree stores *real-valued* thresholds and can classify unbinned data.
Convention: a split at boundary ``b`` sends samples with ``x < b`` left,
matching ``code <= c  ⇔  x < edges[c]`` under ``code = searchsorted(edges,
x, side='right')``.

:class:`BinnedDataset` packages one fitted mapper with its uint8 code
matrix so a whole experiment split — every grid-search fold, every ensemble,
every tree — shares a single binning pass instead of each re-quantising the
float64 matrix.  ``fit`` sorts the matrix once (no per-feature
``np.unique``), ``transform`` runs a vectorised bounds-clamped binary search
over a padded edge table, and both feed the ``ml.binning.*`` telemetry
counters that the run manifest uses to prove the bin-once invariant.
"""

from __future__ import annotations

import numpy as np

from ..runtime.telemetry import get_tracer

MAX_BINS = 256


class BinMapper:
    """Learns per-feature quantile bin edges and encodes data to uint8."""

    def __init__(self, max_bins: int = MAX_BINS):
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Choose up to ``max_bins - 1`` cut points per feature.

        One column-wise sort of the whole matrix replaces the per-feature
        ``np.unique`` passes: distinct counts come from adjacent-inequality
        flags on the sorted matrix, exact-bin columns read their distinct
        values straight off it, and all quantile-path columns share a single
        ``np.quantile(..., axis=0)`` call (duplicate quantiles are dropped
        with a diff mask, which on the already-sorted quantile vector is
        exactly what ``np.unique`` did).
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        get_tracer().counter("ml.binning.fits")
        n, n_features = X.shape
        edges: list[np.ndarray] = [np.empty(0)] * n_features
        if n == 0:
            self.edges_ = edges
            return self

        Xs = np.sort(X, axis=0)
        neq = Xs[1:] != Xs[:-1] if n > 1 else np.zeros((0, n_features), bool)
        n_distinct = neq.sum(axis=0) + 1

        quantile_cols = []
        for j in range(n_features):
            if n_distinct[j] <= 1:
                continue
            if n_distinct[j] <= self.max_bins:
                first = np.empty(n, dtype=bool)
                first[0] = True
                first[1:] = neq[:, j]
                distinct = Xs[first, j]
                edges[j] = (distinct[:-1] + distinct[1:]) / 2.0
            else:
                quantile_cols.append(j)

        if quantile_cols:
            qs = np.linspace(0, 1, self.max_bins + 1)[1:-1]
            Q = np.quantile(X[:, quantile_cols], qs, axis=0)
            for k, j in enumerate(quantile_cols):
                cuts = Q[:, k]
                keep = np.empty(len(cuts), dtype=bool)
                keep[0] = True
                keep[1:] = np.diff(cuts) != 0
                edges[j] = cuts[keep]
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Encode to uint8 codes; code c means edges[c-1] <= x < edges[c].

        A vectorised binary search over a +inf-padded ``(F, K)`` edge table
        computes every column at once — bit-for-bit the per-column
        ``np.searchsorted(cuts, x, side="right")`` it replaces.
        """
        if self.edges_ is None:
            raise RuntimeError("BinMapper not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError("X feature count does not match the fitted mapper")
        get_tracer().counter("ml.binning.transforms")
        n, n_features = X.shape
        lens = np.array([len(c) for c in self.edges_], dtype=np.int64)
        K = int(lens.max(initial=0))
        if K == 0 or n == 0:
            return np.zeros(X.shape, dtype=np.uint8)
        pad = np.full((n_features, K), np.inf)
        for j, cuts in enumerate(self.edges_):
            pad[j, : len(cuts)] = cuts

        cols = np.arange(n_features)
        lo = np.zeros((n, n_features), dtype=np.int64)
        hi = np.broadcast_to(lens, (n, n_features)).copy()
        for _ in range(K.bit_length()):
            active = lo < hi
            mid = (lo + hi) >> 1
            le = pad[cols, np.minimum(mid, K - 1)] <= X
            lo = np.where(active & le, mid + 1, lo)
            hi = np.where(active & ~le, mid, hi)
        return lo.astype(np.uint8)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def num_bins(self, feature: int) -> int:
        if self.edges_ is None:
            raise RuntimeError("BinMapper not fitted")
        return len(self.edges_[feature]) + 1

    @property
    def max_num_bins(self) -> int:
        """Widest per-feature bin count — the histogram width trees need."""
        if self.edges_ is None:
            raise RuntimeError("BinMapper not fitted")
        return max((len(c) + 1 for c in self.edges_), default=1)

    def threshold_value(self, feature: int, code: int) -> float:
        """Real-valued cut: samples with ``x < value`` have code <= ``code``."""
        if self.edges_ is None:
            raise RuntimeError("BinMapper not fitted")
        return float(self.edges_[feature][code])


class BinnedDataset:
    """One matrix binned once: a (mapper, uint8 codes) pair plus views.

    The unit every training path shares: ``grid_search`` row-slices it per
    fold with :meth:`take`, ensembles hand it to each tree, and the tree's
    per-node gathers run over the cached feature-major :attr:`codes_T`
    (computed lazily, once, and shared by the hundreds of trees grown from
    the same split).  Construction is the *only* place the float64 matrix
    is quantised — everything downstream is uint8.
    """

    def __init__(self, mapper: BinMapper, codes: np.ndarray):
        if mapper.edges_ is None:
            raise ValueError("mapper must be fitted")
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.dtype != np.uint8:
            raise ValueError("codes must be a 2-D uint8 matrix")
        if codes.shape[1] != len(mapper.edges_):
            raise ValueError("codes feature count does not match the mapper")
        self.mapper = mapper
        self.codes = codes
        self._codes_T: np.ndarray | None = None

    @classmethod
    def from_matrix(cls, X: np.ndarray, max_bins: int = MAX_BINS) -> "BinnedDataset":
        """Fit-and-encode ``X`` — the one binning pass of a training split."""
        mapper = BinMapper(max_bins)
        return cls(mapper, mapper.fit_transform(X))

    @property
    def n_samples(self) -> int:
        return self.codes.shape[0]

    @property
    def n_features(self) -> int:
        return self.codes.shape[1]

    @property
    def codes_T(self) -> np.ndarray:
        """Feature-major ``(F, n)`` contiguous codes for per-node gathers."""
        if self._codes_T is None:
            self._codes_T = np.ascontiguousarray(self.codes.T)
        return self._codes_T

    @property
    def n_bins_max(self) -> int:
        """Histogram width: the widest feature's bin count."""
        return self.mapper.max_num_bins

    def take(self, rows: np.ndarray) -> "BinnedDataset":
        """A row subset sharing this dataset's mapper (no re-binning).

        This is what makes bin-once grid search possible: a CV fold's
        training subset is a uint8 row gather, not a fresh quantile pass.
        The fold therefore uses cut points learned on the full split matrix
        — the standard histogram-GBM approximation, documented in DESIGN.md.
        """
        return BinnedDataset(self.mapper, self.codes[np.asarray(rows)])


def as_binned_dataset(
    binned, X: np.ndarray | None, max_bins: int = MAX_BINS
) -> BinnedDataset:
    """Coerce an estimator's ``binned`` argument into a :class:`BinnedDataset`.

    Accepts a ready dataset, the legacy ``(mapper, codes)`` tuple, or
    ``None`` (bin ``X`` now — the standalone-estimator path).
    """
    if binned is None:
        if X is None:
            raise ValueError("either X or binned data must be provided")
        return BinnedDataset.from_matrix(X, max_bins)
    if isinstance(binned, BinnedDataset):
        return binned
    mapper, codes = binned
    return BinnedDataset(mapper, np.asarray(codes, dtype=np.uint8))
