"""Feature binning for fast histogram-based tree construction.

Exact CART split search sorts every feature at every node — O(n log n) per
feature per node.  Like modern gradient-boosting libraries, we instead
quantise each feature into at most 256 bins *once*, and every node split
search becomes a histogram scan.  With the small-integer and
piecewise-smooth features of this problem (counts, capacities, loads), 256
quantile bins lose essentially nothing: most features have far fewer
distinct values than bins.

The mapper records the candidate cut value of every bin boundary so the
final tree stores *real-valued* thresholds and can classify unbinned data.
Convention: a split at boundary ``b`` sends samples with ``x < b`` left,
matching ``code <= c  ⇔  x < edges[c]`` under ``code = searchsorted(edges,
x, side='right')``.
"""

from __future__ import annotations

import numpy as np

MAX_BINS = 256


class BinMapper:
    """Learns per-feature quantile bin edges and encodes data to uint8."""

    def __init__(self, max_bins: int = MAX_BINS):
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256]")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Choose up to ``max_bins - 1`` cut points per feature."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        edges: list[np.ndarray] = []
        for j in range(X.shape[1]):
            col = X[:, j]
            distinct = np.unique(col)
            if len(distinct) <= 1:
                edges.append(np.empty(0))
                continue
            if len(distinct) <= self.max_bins:
                # cut between every pair of adjacent distinct values
                cuts = (distinct[:-1] + distinct[1:]) / 2.0
            else:
                qs = np.linspace(0, 1, self.max_bins + 1)[1:-1]
                cuts = np.unique(np.quantile(col, qs))
            edges.append(cuts)
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Encode to uint8 codes; code c means edges[c-1] <= x < edges[c]."""
        if self.edges_ is None:
            raise RuntimeError("BinMapper not fitted")
        X = np.asarray(X, dtype=np.float64)
        codes = np.empty(X.shape, dtype=np.uint8)
        for j, cuts in enumerate(self.edges_):
            if len(cuts) == 0:
                codes[:, j] = 0
            else:
                codes[:, j] = np.searchsorted(cuts, X[:, j], side="right")
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def num_bins(self, feature: int) -> int:
        if self.edges_ is None:
            raise RuntimeError("BinMapper not fitted")
        return len(self.edges_[feature]) + 1

    def threshold_value(self, feature: int, code: int) -> float:
        """Real-valued cut: samples with ``x < value`` have code <= ``code``."""
        if self.edges_ is None:
            raise RuntimeError("BinMapper not fitted")
        return float(self.edges_[feature][code])
