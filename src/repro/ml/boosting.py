"""RUSBoost: random undersampling + AdaBoost (Seiffert et al. 2010).

The comparison model from the paper's [4] (Tabrizi et al., VLSI-DAT'17).
Each boosting round draws a *balanced* subsample — every minority (hotspot)
sample plus an equal-weight random draw of majority samples according to the
current boosting distribution — fits a shallow CART on it, and performs a
standard discrete AdaBoost weight update **on the full training set**.

Scores are the usual weighted-vote margin mapped through a logistic link so
``predict_proba`` is well-behaved; ranking metrics (A_prc) only depend on
the margin ordering.
"""

from __future__ import annotations

import numpy as np

from .binning import BinMapper, BinnedDataset, as_binned_dataset
from .forest import ForestArrays
from .tree import DecisionTreeClassifier, TreeArrays


class RUSBoostClassifier:
    """Boosted shallow trees over balanced undersamples."""

    #: grid search / experiment drivers may pass a shared BinnedDataset
    accepts_binned = True

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        minority_ratio: float = 1.0,
        learning_rate: float = 1.0,
        max_bins: int = 256,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        #: majority samples drawn per minority sample in each round
        self.minority_ratio = minority_ratio
        self.learning_rate = learning_rate
        self.max_bins = max_bins
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] = []
        self.alphas_: list[float] = []
        self._stacked: ForestArrays | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        binned: BinnedDataset | tuple[BinMapper, np.ndarray] | None = None,
    ) -> "RUSBoostClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).astype(np.int8).ravel()
        n = len(X)
        pos_idx = np.flatnonzero(y == 1)
        neg_idx = np.flatnonzero(y == 0)
        if len(pos_idx) == 0 or len(neg_idx) == 0:
            raise ValueError("RUSBoost needs both classes")
        rng = np.random.default_rng(self.random_state)
        dataset = as_binned_dataset(binned, X, self.max_bins)
        if dataset.n_samples != n:
            raise ValueError("binned codes / y length mismatch")
        self._stacked = None

        D = np.full(n, 1.0 / n)  # boosting distribution over the full set
        self.estimators_ = []
        self.alphas_ = []
        for _ in range(self.n_estimators):
            # --- random undersampling according to D -------------------------
            n_neg_draw = max(1, int(len(pos_idx) * self.minority_ratio))
            n_neg_draw = min(n_neg_draw, len(neg_idx))
            p_neg = D[neg_idx] / D[neg_idx].sum()
            drawn_neg = rng.choice(neg_idx, size=n_neg_draw, replace=False, p=p_neg)
            sample_w = np.zeros(n)
            sample_w[pos_idx] = D[pos_idx]
            sample_w[drawn_neg] = D[drawn_neg]
            # re-balance classes inside the round
            wp, wn = sample_w[pos_idx].sum(), sample_w[drawn_neg].sum()
            if wn > 0:
                sample_w[drawn_neg] *= wp / wn

            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=None,  # boosting's trees see all features
                max_bins=self.max_bins,
                random_state=rng,
            )
            tree.fit(X, y, sample_weight=sample_w, binned=dataset)

            # --- AdaBoost update on the FULL set ------------------------------
            pred = tree.predict(X)
            miss = pred != y
            err = float(D[miss].sum())
            err = min(max(err, 1e-10), 1 - 1e-10)
            if err >= 0.5:
                # Worse than chance on the weighted full set — with heavy
                # imbalance this happens when the balanced weak learner
                # over-predicts positives.  Standard remedy: discard the
                # round and restart the boosting distribution.
                D = np.full(n, 1.0 / n)
                continue
            alpha = self.learning_rate * 0.5 * np.log((1 - err) / err)
            D *= np.exp(alpha * np.where(miss, 1.0, -1.0))
            D /= D.sum()
            self.estimators_.append(tree)
            self.alphas_.append(float(alpha))

        if not self.estimators_:
            # Degenerate data (no round ever beat chance): fall back to a
            # single balanced tree so the model still ranks sensibly.
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=None,
                max_bins=self.max_bins,
                random_state=rng,
            )
            w = np.zeros(n)
            w[pos_idx] = 0.5 / len(pos_idx)
            w[neg_idx] = 0.5 / len(neg_idx)
            tree.fit(X, y, sample_weight=w, binned=dataset)
            self.estimators_.append(tree)
            self.alphas_.append(1.0)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Normalised margin in [-1, 1].

        Uses the trees' probability estimates (Real-AdaBoost-style
        aggregation, 2p−1 per tree) rather than hard ±1 votes: the weight
        updates are classic discrete AdaBoost, but continuous leaf
        probabilities give the margin enough granularity to rank samples —
        essential for the threshold-free metrics (A_prc) the paper uses.
        """
        if not self.estimators_:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        if self._stacked is None:
            self._stacked = ForestArrays.from_trees(self.trees)
        leaf_p = self._stacked.leaf_values(X)  # (n, T) per-tree P(class 1)
        alphas = np.asarray(self.alphas_, dtype=np.float64)
        return (2.0 * leaf_p - 1.0) @ alphas / alphas.sum()

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        margin = self.decision_function(X)
        p1 = 1.0 / (1.0 + np.exp(-3.0 * margin))  # logistic link on the margin
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int8)

    @property
    def trees(self) -> list[TreeArrays]:
        out = []
        for est in self.estimators_:
            if est.tree_ is None:
                raise RuntimeError("model not fitted")
            out.append(est.tree_)
        return out

    def num_parameters(self) -> int:
        """Stored parameters: per-node tuple per tree plus one alpha each."""
        total = len(self.alphas_)
        for t in self.trees:
            internal = t.node_count - t.n_leaves
            total += 4 * internal + t.n_leaves
        return total
