"""Checkpoint store: atomic, checksummed, version-stamped artefact persistence.

A :class:`CheckpointStore` manages a flat directory of artefact files plus a
``manifest.json`` recording, per key, the SHA-256 of the payload and the
store format version.  All writes go through write-temp-then-``os.replace``
so an interrupt can never leave a half-written payload *and* a manifest entry
claiming it is complete: the manifest is only updated after the payload
rename, and a payload whose bytes don't match the manifest checksum is
rejected as :class:`~repro.runtime.errors.CacheCorruptionError` on load.

Layout of a store rooted at ``suite_scale1.ckpt/``::

    suite_scale1.ckpt/
        manifest.json          {"format_version": 2, "entries": {key: {...}}}
        des_perf_b.npz         one payload file per checkpoint key
        des_perf_b.stats.json
        ...
"""

from __future__ import annotations

import hashlib
import io
import itertools
import json
import os
import re
import time
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from . import faults
from .errors import CacheCorruptionError
from .telemetry import get_tracer

#: Bump when the on-disk layout of checkpoints changes; old stores are
#: invalidated wholesale rather than migrated.
CHECKPOINT_FORMAT_VERSION = 2

_KEY_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]*$")

#: Filename of the per-store manifest; never a valid payload key, or a
#: ``save_bytes("manifest.json", ...)`` would overwrite the manifest itself.
_MANIFEST_NAME = "manifest.json"


def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def sha256_of(path: str | Path, chunk: int = 1 << 20) -> str:
    """SHA-256 hex digest of a file, streamed."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


#: Process-wide monotonic counter for temp-file names.  A pid alone is not
#: unique enough: two writers sharing a process (threads, or a re-entrant
#: call) would race on the same temp path and could tear each other's write.
_TMP_COUNTER = itertools.count()

#: How old an orphaned ``.*.tmp*`` file must be before the startup sweep
#: deletes it.  Generous on purpose: a *live* writer's temp file exists for
#: seconds, so an hour-old one can only be the residue of a killed process.
ORPHAN_TMP_MAX_AGE_S = 3600.0

#: Glob matching every temp name this module ever creates
#: (``.{name}.tmp{pid}-{n}`` and the suite writer's ``.{stem}.tmp{pid}-{n}.npz``).
_TMP_GLOB = ".*.tmp*"


def unique_tmp_suffix() -> str:
    """A temp-name component unique per (process, call): ``<pid>-<counter>``."""
    return f"{os.getpid()}-{next(_TMP_COUNTER)}"


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes the rename atomic against *crashes of the writer*,
    but the new directory entry itself lives in the page cache until the
    directory inode is flushed — on power loss the file can revert to its
    old name (or vanish).  Best-effort: platforms that cannot open
    directories (Windows) or filesystems that reject directory fsync are
    silently tolerated, matching POSIX durability folklore.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def sweep_orphan_temps(
    root: str | Path, max_age_s: float = ORPHAN_TMP_MAX_AGE_S
) -> int:
    """Delete orphaned atomic-write temp files older than the safety window.

    A process killed between ``tmp.write_bytes`` and ``os.replace`` leaves
    its ``.*.tmp*`` sibling behind forever (the ``finally: unlink`` never
    ran).  Call this once at startup on every cache/checkpoint directory;
    the age window guarantees a concurrently *running* writer's temp files
    are never touched.  Returns how many files were removed and counts them
    on the ``runtime.cache.orphans_swept`` counter.
    """
    root = Path(root)
    swept = 0
    if not root.is_dir():
        return 0
    cutoff = time.time() - max(0.0, max_age_s)
    for tmp in root.glob(_TMP_GLOB):
        try:
            if not tmp.is_file() or tmp.stat().st_mtime > cutoff:
                continue
            tmp.unlink()
            swept += 1
        except OSError:
            continue  # vanished underneath us, or not ours to delete
    if swept:
        get_tracer().counter("runtime.cache.orphans_swept", swept)
    return swept


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` via a same-directory temp file + rename.

    The temp file is flushed to disk before the rename and the containing
    directory is fsynced after it, so the artefact is durable against power
    loss, not just against writer crashes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp{unique_tmp_suffix()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"))


class CheckpointStore:
    """A directory of checksummed checkpoint artefacts keyed by filename."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.manifest_path = self.root / _MANIFEST_NAME
        # startup hygiene: a writer killed mid-write (SIGKILL, power loss)
        # leaves temp siblings behind; reclaim them once they are safely old
        sweep_orphan_temps(self.root)

    # -- manifest -----------------------------------------------------------------

    def _read_manifest(self) -> dict[str, dict[str, Any]]:
        if not self.manifest_path.exists():
            return {}
        try:
            doc = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}  # torn manifest: treat the whole store as empty
        if not isinstance(doc, dict) or doc.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            return {}  # older/newer store layout: invalidate wholesale
        entries = doc.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_manifest(self, entries: dict[str, dict[str, Any]]) -> None:
        atomic_write_text(
            self.manifest_path,
            json.dumps(
                {"format_version": CHECKPOINT_FORMAT_VERSION, "entries": entries},
                indent=0,
                sort_keys=True,
            ),
        )

    # -- primitives ---------------------------------------------------------------

    def _path_of(self, key: str) -> Path:
        if not _KEY_RE.match(key) or key == _MANIFEST_NAME:
            raise ValueError(f"invalid checkpoint key {key!r}")
        return self.root / key

    def save_bytes(self, key: str, data: bytes) -> Path:
        """Atomically persist ``data`` under ``key`` and record its checksum.

        The checksum is computed from the in-memory payload *before* the
        fault-injection corruption hook runs, so injected (or real) post-write
        corruption is caught by the next :meth:`load_bytes`.
        """
        path = self._path_of(key)
        checksum = sha256_bytes(data)
        atomic_write_bytes(path, data)
        get_tracer().counter("checkpoint.writes")
        faults.corrupt_artifact(f"checkpoint/{key}", path)
        entries = self._read_manifest()
        entries[key] = {
            "sha256": checksum,
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "size": len(data),
        }
        self._write_manifest(entries)
        return path

    def load_bytes(self, key: str) -> bytes:
        """Load and checksum-verify the payload stored under ``key``."""
        path = self._path_of(key)
        entry = self._read_manifest().get(key)
        if entry is None:
            raise CacheCorruptionError(f"{path}: no manifest entry for {key!r}")
        if entry.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise CacheCorruptionError(
                f"{path}: checkpoint format {entry.get('format_version')} != "
                f"{CHECKPOINT_FORMAT_VERSION}; regenerate with the current code"
            )
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CacheCorruptionError(f"{path}: unreadable checkpoint") from exc
        if sha256_bytes(data) != entry.get("sha256"):
            raise CacheCorruptionError(f"{path}: checksum mismatch (corrupted checkpoint)")
        get_tracer().counter("checkpoint.reads")
        return data

    # -- typed convenience layers -------------------------------------------------

    def save_arrays(self, key: str, **arrays: np.ndarray) -> Path:
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        return self.save_bytes(key, buf.getvalue())

    def load_arrays(self, key: str) -> dict[str, np.ndarray]:
        buf = io.BytesIO(self.load_bytes(key))
        try:
            with np.load(buf, allow_pickle=False) as data:
                return {name: data[name] for name in data.files}
        except (ValueError, OSError, EOFError) as exc:
            raise CacheCorruptionError(f"{key}: undecodable array payload") from exc

    def save_json(self, key: str, obj: Any) -> Path:
        return self.save_bytes(key, json.dumps(obj, sort_keys=True).encode("utf-8"))

    def load_json(self, key: str) -> Any:
        try:
            return json.loads(self.load_bytes(key).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CacheCorruptionError(f"{key}: undecodable JSON payload") from exc

    # -- queries & maintenance ----------------------------------------------------

    def has(self, key: str) -> bool:
        """Cheap existence check: manifest entry + payload file present."""
        return key in self._read_manifest() and self._path_of(key).exists()

    def verify(self, key: str) -> bool:
        """Full checksum verification of one key."""
        try:
            self.load_bytes(key)
        except CacheCorruptionError:
            return False
        return True

    def keys(self) -> Iterator[str]:
        yield from sorted(self._read_manifest())

    def invalidate(self, key: str) -> None:
        """Drop a key's payload and manifest entry (idempotent)."""
        self._path_of(key).unlink(missing_ok=True)
        entries = self._read_manifest()
        if entries.pop(key, None) is not None:
            get_tracer().counter("checkpoint.invalidated")
            self._write_manifest(entries)

    def clear(self) -> None:
        for key in list(self._read_manifest()):
            self._path_of(key).unlink(missing_ok=True)
        self.manifest_path.unlink(missing_ok=True)
