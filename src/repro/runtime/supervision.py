"""Graceful-shutdown coordination for long-running commands.

A suite or Table II run is hours of work guarded by per-unit checkpoints, so
a SIGTERM (preemption, ``kubectl delete``, a user's Ctrl-C) should never cost
more than the units currently in flight.  :func:`graceful_shutdown` installs
signal handlers with two-stage semantics:

* **first signal** — sets a process-wide flag (checked by the runners via
  :func:`shutdown_requested` between unit dispatches), bumps the
  ``runner.signal_shutdowns`` counter, and prints a one-line notice.  The
  runners stop dispatching, let in-flight units drain, flush their
  checkpoints, and raise :class:`~repro.runtime.errors.ShutdownRequested`;
  the CLI then writes the telemetry sinks and exits with the documented
  resumable exit code (4) so ``--resume`` continues exactly where the run
  stopped;
* **second signal** — the user means it: restore the default disposition and
  re-raise the signal against the process, producing an immediate hard exit
  with the conventional ``128 + signum`` status.

The coordinator is intentionally a module-level ambient (like the fault plan
and the tracer): exactly one command runs per process, and worker processes
never install it — a worker hit by SIGTERM simply dies and is handled by the
supervision layer in :mod:`repro.runtime.parallel`.
"""

from __future__ import annotations

import os
import signal
import sys
from contextlib import contextmanager
from typing import Iterator

from .telemetry import get_tracer

#: Signals the coordinator turns into graceful shutdowns.
SHUTDOWN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class ShutdownCoordinator:
    """Two-stage signal state: request on first signal, hard-exit on second."""

    def __init__(self) -> None:
        self.signum: int | None = None

    @property
    def requested(self) -> bool:
        return self.signum is not None

    def _handle(self, signum: int, frame) -> None:  # noqa: ARG002 - signal API
        if self.requested:
            # second signal: hard exit with the conventional fatal-signal
            # status; default disposition re-raised so the exit reason is
            # visible to the parent (shell, CI runner, supervisor)
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        self.signum = signum
        get_tracer().counter("runner.signal_shutdowns")
        print(
            f"\nshutdown requested (signal {signum}): finishing in-flight "
            "units, flushing checkpoints — signal again to hard-exit",
            file=sys.stderr,
            flush=True,
        )


#: The active coordinator (None outside ``graceful_shutdown`` blocks).
_ACTIVE: ShutdownCoordinator | None = None


def shutdown_requested() -> bool:
    """Whether a graceful-shutdown signal has been received (ambient check)."""
    return _ACTIVE is not None and _ACTIVE.requested


def shutdown_signum() -> int:
    """The signal number that requested shutdown (0 when none did)."""
    if _ACTIVE is not None and _ACTIVE.signum is not None:
        return _ACTIVE.signum
    return 0


@contextmanager
def graceful_shutdown() -> Iterator[ShutdownCoordinator]:
    """Install two-stage SIGTERM/SIGINT handling for the ``with`` block.

    Nested activation (or activation off the main thread, where Python
    forbids ``signal.signal``) degrades to a no-op coordinator that never
    reports a request, so library callers can wrap unconditionally.
    """
    global _ACTIVE
    coordinator = ShutdownCoordinator()
    if _ACTIVE is not None:
        yield coordinator
        return
    previous: dict[int, object] = {}
    try:
        for sig in SHUTDOWN_SIGNALS:
            previous[sig] = signal.signal(sig, coordinator._handle)
    except ValueError:  # not the main thread: signals are not ours to manage
        for sig, old in previous.items():
            signal.signal(sig, old)  # pragma: no cover - partial install
        yield coordinator
        return
    _ACTIVE = coordinator
    try:
        yield coordinator
    finally:
        _ACTIVE = None
        for sig, old in previous.items():
            signal.signal(sig, old)
