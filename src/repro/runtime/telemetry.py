"""Zero-dependency tracing + metrics layer for the whole pipeline.

The paper's efficiency argument (Table II CPU times, the ~1.4 s/sample Tree
SHAP cost) is a *measurement* claim, so the runtime carries a first-class
telemetry substrate instead of scattered ad-hoc timers:

* :class:`Tracer` — hierarchical ``span(name, **attrs)`` context managers
  measuring monotonic wall and process-CPU durations into a process-local
  span tree, plus ``counter``/``gauge`` instruments (router rip-up and maze
  statistics, cache hits/misses/invalidations, checkpoint resume skips,
  retry/timeout/degrade counts, SHAP rows-per-chunk, ...);
* **sinks** — a schema-versioned JSONL trace (one event per span/metric,
  :func:`write_trace`/:func:`load_trace`) and an aggregated
  ``run_manifest.json`` (:func:`build_manifest`/:func:`write_manifest`) with
  a per-stage timing table, metric totals, environment versions and
  failure-log cross-references, written atomically via the checkpoint-store
  primitives;
* **parallel support** — a worker process collects its spans into a local
  tracer, ships the picklable :class:`TelemetrySnapshot` back inside its
  result envelope (``FlowPayload``/``GroupUnitResult``), and the parent
  :meth:`Tracer.adopt`\\ s the subtree in deterministic (recipe/group)
  order.  Serial and parallel runs therefore produce semantically identical
  manifests — compare them with :func:`stable_view`, which strips the
  volatile timing/pid/run-id fields.

Overhead contract: a *disabled* tracer's ``span`` yields a shared no-op
node and ``counter``/``gauge`` return after one branch, so instrumented
code paths cost nothing measurable when telemetry is off, and no sink file
is ever created unless the caller explicitly writes one.

The active tracer is a module-level ambient (:func:`get_tracer` /
:func:`activate`), not thread-local: the runtime executes at most one unit
body per process at a time (the serial runner's timeout thread included),
and worker processes each install their own tracer.  A timed-out, abandoned
attempt thread may keep writing spans into a tracer that is no longer
active; telemetry is best-effort accounting, never load-bearing state.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Version stamp of the JSONL trace event schema and the manifest layout.
TELEMETRY_SCHEMA_VERSION = 1


@dataclass
class SpanNode:
    """One finished (or open) span: a named, timed node of the span tree."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    pid: int = 0
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_s(self) -> float:
        """Wall time spent in this span excluding its children."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    def set(self, **attrs: Any) -> None:
        """Attach result attributes to the span (e.g. iteration counts)."""
        self.attrs.update(attrs)


class _NullNode:
    """The span a disabled tracer yields: every operation is a no-op."""

    __slots__ = ()
    name = ""
    wall_s = cpu_s = self_s = 0.0

    def set(self, **attrs: Any) -> None:
        pass


_NULL_NODE = _NullNode()


@dataclass
class TelemetrySnapshot:
    """Picklable envelope of one tracer's state, for worker → parent shipping."""

    spans: list[SpanNode] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)


def new_run_id() -> str:
    """A human-sortable run identifier: UTC timestamp + pid."""
    return f"{time.strftime('%Y%m%dT%H%M%SZ', time.gmtime())}-{os.getpid()}"


class Tracer:
    """Collects a span tree plus counter/gauge totals for one run.

    A disabled tracer (``enabled=False``) is the ambient default: spans
    yield a shared no-op node and metric calls return immediately, so
    instrumentation stays in place at zero cost.
    """

    def __init__(self, enabled: bool = True, run_id: str = ""):
        self.enabled = enabled
        self.run_id = run_id
        self.roots: list[SpanNode] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.failures: list[dict[str, Any]] = []
        self._stack: list[SpanNode] = []

    # -- spans --------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanNode | _NullNode]:
        """Time a named block; nests under the innermost open span."""
        if not self.enabled:
            yield _NULL_NODE
            return
        node = SpanNode(name=name, attrs=dict(attrs), pid=os.getpid())
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(node)
        self._stack.append(node)
        w0 = time.perf_counter()
        c0 = time.process_time()
        try:
            yield node
        finally:
            node.wall_s = time.perf_counter() - w0
            node.cpu_s = time.process_time() - c0
            if self._stack and self._stack[-1] is node:
                self._stack.pop()

    # -- instruments --------------------------------------------------------------

    def counter(self, name: str, n: float = 1) -> None:
        """Add ``n`` to a named monotonic counter (``n=0`` registers it)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of a named gauge."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def note_failure(self, record: dict[str, Any]) -> None:
        """Cross-reference a failure-log record into this run's telemetry."""
        if not self.enabled:
            return
        self.failures.append(dict(record))

    # -- worker <-> parent --------------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """The tracer's whole state as a picklable envelope."""
        return TelemetrySnapshot(
            spans=list(self.roots),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
        )

    def adopt(self, snapshot: TelemetrySnapshot | None) -> None:
        """Merge a worker's snapshot under the innermost open span.

        Counters add, gauges take the snapshot's value (callers adopt in
        deterministic recipe/group order, so serial and parallel runs merge
        identically), and the snapshot's root spans become children of the
        current span (or new roots).
        """
        if snapshot is None or not self.enabled:
            return
        dest = self._stack[-1].children if self._stack else self.roots
        dest.extend(snapshot.spans)
        for name, n in snapshot.counters.items():
            self.counters[name] = self.counters.get(name, 0) + n
        self.gauges.update(snapshot.gauges)


#: The ambient tracer; disabled unless a run installs one via ``activate``.
_DISABLED = Tracer(enabled=False)
_active: Tracer = _DISABLED


def get_tracer() -> Tracer:
    """The currently active tracer (a disabled no-op outside ``activate``)."""
    return _active


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` block."""
    global _active
    prev = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = prev


# -- JSONL trace sink ---------------------------------------------------------------


def trace_events(
    tracer: Tracer, command: str = "", argv: list[str] | None = None
) -> Iterator[dict[str, Any]]:
    """All trace events of a run: meta, spans (DFS order), metrics, failures."""
    yield {
        "ev": "meta",
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "run_id": tracer.run_id,
        "command": command,
        "argv": list(argv or []),
    }
    next_id = iter(range(1, 1 << 31))

    def walk(node: SpanNode, parent_id: int) -> Iterator[dict[str, Any]]:
        span_id = next(next_id)
        yield {
            "ev": "span",
            "id": span_id,
            "parent": parent_id,
            "name": node.name,
            "attrs": node.attrs,
            "wall_s": round(node.wall_s, 6),
            "cpu_s": round(node.cpu_s, 6),
            "pid": node.pid,
        }
        for child in node.children:
            yield from walk(child, span_id)

    for root in tracer.roots:
        yield from walk(root, 0)
    for name in sorted(tracer.counters):
        yield {"ev": "counter", "name": name, "value": tracer.counters[name]}
    for name in sorted(tracer.gauges):
        yield {"ev": "gauge", "name": name, "value": tracer.gauges[name]}
    for rec in tracer.failures:
        yield {"ev": "failure", **rec}


def write_trace(
    tracer: Tracer,
    path: str | Path,
    command: str = "",
    argv: list[str] | None = None,
) -> Path:
    """Atomically write the run's JSONL trace file."""
    from .checkpoint import atomic_write_text  # deferred: avoids an import cycle

    lines = [json.dumps(ev, sort_keys=False) for ev in trace_events(tracer, command, argv)]
    return atomic_write_text(Path(path), "\n".join(lines) + "\n")


@dataclass
class TraceDoc:
    """A trace file loaded back into memory.

    ``dropped`` counts lines skipped by a lenient (``strict=False``) load —
    the truncated or corrupt residue a killed writer leaves behind.
    """

    meta: dict[str, Any]
    roots: list[SpanNode]
    counters: dict[str, float]
    gauges: dict[str, float]
    failures: list[dict[str, Any]]
    dropped: int = 0


def load_trace(path: str | Path, strict: bool = True) -> TraceDoc:
    """Parse a JSONL trace, rebuilding the span tree from id/parent links.

    ``strict=True`` (the default, for tests and tooling that must notice
    corruption) raises on any malformed line.  ``strict=False`` — what the
    ``drcshap trace`` inspector uses — skips truncated or corrupt lines (a
    process killed mid-write tears at most the final line) and reports how
    many were dropped via :attr:`TraceDoc.dropped`.  A wrong schema version
    or a missing meta event stays an error either way: that is a different
    file, not a torn one.
    """
    meta: dict[str, Any] = {}
    roots: list[SpanNode] = []
    by_id: dict[int, SpanNode] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    failures: list[dict[str, Any]] = []
    dropped = 0
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            ev = json.loads(line)
            kind = ev["ev"]
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            if strict:
                raise ValueError(f"{path}:{lineno}: not a trace event line") from exc
            dropped += 1
            continue
        try:
            if kind == "meta":
                if ev.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: unsupported trace schema "
                        f"{ev.get('schema_version')!r} (expected {TELEMETRY_SCHEMA_VERSION})"
                    )
                meta = ev
            elif kind == "span":
                node = SpanNode(
                    name=str(ev["name"]),
                    attrs=dict(ev.get("attrs") or {}),
                    wall_s=float(ev.get("wall_s", 0.0)),
                    cpu_s=float(ev.get("cpu_s", 0.0)),
                    pid=int(ev.get("pid", 0)),
                )
                by_id[int(ev["id"])] = node
                parent = by_id.get(int(ev.get("parent", 0)))
                (parent.children if parent is not None else roots).append(node)
            elif kind == "counter":
                counters[str(ev["name"])] = ev["value"]
            elif kind == "gauge":
                gauges[str(ev["name"])] = ev["value"]
            elif kind == "failure":
                failures.append({k: v for k, v in ev.items() if k != "ev"})
            else:
                raise ValueError(f"{path}:{lineno}: unknown event kind {kind!r}")
        except ValueError as exc:
            if strict or "unsupported trace schema" in str(exc):
                raise
            dropped += 1
        except (KeyError, TypeError) as exc:
            if strict:
                raise ValueError(f"{path}:{lineno}: malformed trace event") from exc
            dropped += 1
    if not meta:
        raise ValueError(f"{path}: missing meta event (not a trace file?)")
    return TraceDoc(meta=meta, roots=roots, counters=counters,
                    gauges=gauges, failures=failures, dropped=dropped)


# -- run manifest -------------------------------------------------------------------


def summarize_stages(roots: list[SpanNode]) -> list[dict[str, Any]]:
    """Aggregate the span tree into a per-stage timing table.

    Spans aggregate by their slash-joined *name* path (attributes such as
    the design name are deliberately excluded), so the fourteen per-design
    ``flow/place`` spans collapse into one row with ``count=14``.  Rows are
    sorted by path, making the table deterministic in content ordering.
    """
    table: dict[str, dict[str, Any]] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        path = f"{prefix}/{node.name}" if prefix else node.name
        row = table.setdefault(
            path, {"path": path, "count": 0, "wall_s": 0.0, "cpu_s": 0.0, "self_s": 0.0}
        )
        row["count"] += 1
        row["wall_s"] += node.wall_s
        row["cpu_s"] += node.cpu_s
        row["self_s"] += node.self_s
        for child in node.children:
            walk(child, path)

    for root in roots:
        walk(root, "")
    rows = [table[p] for p in sorted(table)]
    for row in rows:
        for k in ("wall_s", "cpu_s", "self_s"):
            row[k] = round(row[k], 6)
    return rows


def _git_revision() -> str | None:
    """Best-effort git HEAD of the source checkout (no subprocesses)."""
    root = Path(__file__).resolve().parents[3]
    head = root / ".git" / "HEAD"
    try:
        text = head.read_text().strip()
        if text.startswith("ref: "):
            ref = root / ".git" / text[5:]
            return ref.read_text().strip()[:40]
        return text[:40] or None
    except OSError:
        return None


def build_manifest(
    tracer: Tracer,
    command: str = "",
    argv: list[str] | None = None,
    config: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Aggregate a run's telemetry into the ``run_manifest.json`` document."""
    import numpy as np

    return {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "run_id": tracer.run_id,
        "command": command,
        "argv": list(argv or []),
        "config": dict(config or {}),
        "versions": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": sys.platform,
            "git": _git_revision(),
        },
        "pid": os.getpid(),
        "stages": summarize_stages(tracer.roots),
        "counters": {k: tracer.counters[k] for k in sorted(tracer.counters)},
        "gauges": {k: tracer.gauges[k] for k in sorted(tracer.gauges)},
        "failures": list(tracer.failures),
    }


def write_manifest(manifest: dict[str, Any], path: str | Path) -> Path:
    """Atomically persist a manifest document."""
    from .checkpoint import atomic_write_text  # deferred: avoids an import cycle

    return atomic_write_text(Path(path), json.dumps(manifest, indent=2) + "\n")


def manifest_path_for(trace_path: str | Path) -> Path:
    """Canonical manifest location next to a trace file."""
    return Path(trace_path).with_suffix(".manifest.json")


#: Failure-record fields that vary between otherwise identical runs.
_VOLATILE_FAILURE_FIELDS = ("elapsed_s", "last_attempt_s", "run_id")


def stable_view(manifest: dict[str, Any]) -> dict[str, Any]:
    """The deterministic projection of a manifest.

    Strips everything that legitimately varies between two semantically
    identical runs — run id, argv/config (``--jobs`` differs), environment
    versions, pids, and every timing field — leaving span structure, span
    counts, metric totals and failure identities.  Serial and parallel runs
    of the same work must compare equal under this view.
    """
    return {
        "schema_version": manifest.get("schema_version"),
        "command": manifest.get("command"),
        "stages": [
            {"path": s["path"], "count": s["count"]}
            for s in manifest.get("stages", [])
        ],
        "counters": manifest.get("counters", {}),
        "gauges": manifest.get("gauges", {}),
        "failures": [
            {k: v for k, v in f.items() if k not in _VOLATILE_FAILURE_FIELDS}
            for f in manifest.get("failures", [])
        ],
    }


# -- rendering (the `drcshap trace` inspector) --------------------------------------


def format_span_tree(roots: list[SpanNode]) -> str:
    """Indented span tree with cumulative / self wall and CPU seconds."""
    lines = [f"{'span':<46s} {'wall_s':>9s} {'self_s':>9s} {'cpu_s':>9s}"]

    def label(node: SpanNode) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in node.attrs.items())
        return f"{node.name} {attrs}".rstrip()

    def walk(node: SpanNode, depth: int) -> None:
        text = f"{'  ' * depth}{label(node)}"
        lines.append(
            f"{text:<46s} {node.wall_s:>9.3f} {node.self_s:>9.3f} {node.cpu_s:>9.3f}"
        )
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def format_top_spans(roots: list[SpanNode], n: int = 5) -> str:
    """The ``n`` slowest spans by self time, with their full paths."""
    flat: list[tuple[float, str]] = []

    def walk(node: SpanNode, prefix: str) -> None:
        path = f"{prefix}/{node.name}" if prefix else node.name
        flat.append((node.self_s, path))
        for child in node.children:
            walk(child, path)

    for root in roots:
        walk(root, "")
    flat.sort(key=lambda t: (-t[0], t[1]))
    lines = [f"top {min(n, len(flat))} spans by self time:"]
    for self_s, path in flat[:n]:
        lines.append(f"  {self_s:>9.3f}s  {path}")
    return "\n".join(lines)


def format_metrics(counters: dict[str, float], gauges: dict[str, float]) -> str:
    """Counter and gauge totals, sorted by name."""
    lines = ["counters:"]
    if not counters:
        lines.append("  (none)")
    for name in sorted(counters):
        value = counters[name]
        lines.append(f"  {name:<36s} {value:g}")
    lines.append("gauges:")
    if not gauges:
        lines.append("  (none)")
    for name in sorted(gauges):
        lines.append(f"  {name:<36s} {gauges[name]:g}")
    return "\n".join(lines)
