"""Fault-tolerant unit runner: isolation, retries, timeouts, failure log.

A *unit* is one independently restartable chunk of pipeline work — one
design's Fig. 1 flow, or one (model, group) cell of the leave-one-group-out
grid.  :class:`FaultTolerantRunner` executes units so that one bad unit
degrades the run instead of killing it:

* every attempt is wrapped in try/except; non-``BaseException`` errors are
  caught, ``KeyboardInterrupt``/``SystemExit`` propagate;
* a :class:`RetryPolicy` grants each unit ``1 + max_retries`` attempts with
  exponential backoff between them;
* an optional wall-clock timeout per attempt (enforced by running the unit
  on a worker thread — a timed-out unit's thread is abandoned, which is safe
  for our pure-compute units but means the budget should be generous);
* exhausted units are recorded in a structured :class:`FailureLog` and the
  runner either raises :class:`~repro.runtime.errors.StageFailure`
  (``fail_fast=True``) or returns a not-ok :class:`UnitOutcome` so the
  caller can skip the unit, mirroring the paper's footnote-3 skip semantics.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from . import faults
from .checkpoint import atomic_write_text
from .errors import ShutdownRequested, StageFailure, StageTimeout
from .telemetry import get_tracer

#: One schedulable unit of work: ``(unit_name, fn, args, kwargs)``.
UnitSpec = tuple[str, Callable[..., Any], tuple, dict]


class _AttemptTimeout(Exception):
    """Internal marker: an attempt exhausted its wall-clock budget.

    Distinct from :class:`TimeoutError` on purpose — on Python 3.11+ the
    builtin is an alias of ``concurrent.futures.TimeoutError`` (and of
    socket/asyncio timeouts), so a unit function raising its *own*
    ``TimeoutError`` must stay an ordinary unit failure, not be mistaken
    for the runner's stage timeout.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout budget applied to every unit of a runner."""

    max_retries: int = 0
    backoff_base_s: float = 0.0  # sleep backoff_base * 2**attempt between tries
    backoff_cap_s: float = 30.0
    timeout_s: float | None = None  # wall-clock budget per attempt

    @property
    def max_attempts(self) -> int:
        return 1 + max(0, self.max_retries)

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt number ``attempt`` (1-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1))


@dataclass
class FailureRecord:
    """One permanently failed unit.

    ``elapsed_s`` spans all attempts (backoff included); ``last_attempt_s``
    is the wall clock of the final attempt alone.  ``run_id`` ties the
    record to the telemetry run that produced it, so a failure log can be
    joined against the run's trace/manifest.  ``kind`` classifies the
    failure mode — ``"error"`` (the unit raised), ``"timeout"`` (wall-clock
    budget), or ``"worker_crash"`` (the unit repeatedly took worker
    processes down and was quarantined by the supervision layer).
    """

    stage: str
    unit: str
    attempts: int
    error_type: str
    message: str
    elapsed_s: float
    last_attempt_s: float = 0.0
    run_id: str = ""
    kind: str = "error"

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "unit": self.unit,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed_s": round(self.elapsed_s, 3),
            "last_attempt_s": round(self.last_attempt_s, 3),
            "run_id": self.run_id,
            "kind": self.kind,
        }


class FailureLog:
    """Structured record of every unit that exhausted its retry budget."""

    def __init__(self) -> None:
        self.records: list[FailureRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def record(self, rec: FailureRecord) -> None:
        """Append a record and cross-reference it into the active trace."""
        self.records.append(rec)
        get_tracer().note_failure(rec.to_dict())

    def units(self) -> list[str]:
        return [f"{r.stage}/{r.unit}" for r in self.records]

    def summary(self) -> str:
        if not self.records:
            return "no failures"
        lines = [f"{len(self.records)} failed unit(s):"]
        for r in self.records:
            lines.append(
                f"  {r.stage}/{r.unit}: {r.error_type} after "
                f"{r.attempts} attempt(s) — {r.message}"
            )
        return "\n".join(lines)

    def save(self, path: str | Path) -> Path:
        """Persist the log as JSON (atomic, for post-mortem tooling)."""
        return atomic_write_text(
            Path(path), json.dumps([r.to_dict() for r in self.records], indent=2)
        )


@dataclass
class UnitOutcome:
    """Result of running one unit: a value, or a recorded failure."""

    value: Any = None
    failure: FailureRecord | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


class FaultTolerantRunner:
    """Executes pipeline units under a retry/timeout/isolation policy."""

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        fail_fast: bool = False,
        verbose: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.policy = policy or RetryPolicy()
        self.fail_fast = fail_fast
        self.verbose = verbose
        self.failures = FailureLog()
        self._sleep = sleep

    def run_unit(
        self,
        stage: str,
        unit: str,
        fn: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> UnitOutcome:
        """Run ``fn(*args, **kwargs)`` as the unit ``stage/unit``.

        Returns an ok :class:`UnitOutcome` on (eventual) success.  On a
        permanently failed unit: records it in :attr:`failures`, then raises
        :class:`StageFailure` if ``fail_fast`` else returns a not-ok outcome.
        """
        name = f"{stage}/{unit}"
        tracer = get_tracer()
        t_start = time.monotonic()
        t_attempt = t_start
        last_exc: BaseException | None = None
        timed_out = False
        for attempt in range(1, self.policy.max_attempts + 1):
            t_attempt = time.monotonic()
            try:
                value = self._attempt(name, fn, args, kwargs)
                return UnitOutcome(value=value)
            except _AttemptTimeout:
                timed_out = True
                last_exc = None
                tracer.counter("runner.timeouts")
            except Exception as exc:
                timed_out = False
                last_exc = exc
            if attempt < self.policy.max_attempts:
                pause = self.policy.backoff(attempt)
                tracer.counter("runner.retries")
                if self.verbose:
                    print(
                        f"  retrying {name} (attempt {attempt} failed: "
                        f"{_describe(last_exc, timed_out, self.policy)})",
                        flush=True,
                    )
                if pause > 0:
                    self._sleep(pause)

        attempts = self.policy.max_attempts
        rec = FailureRecord(
            stage=stage,
            unit=unit,
            attempts=attempts,
            error_type="StageTimeout" if timed_out else type(last_exc).__name__,
            message=_describe(last_exc, timed_out, self.policy),
            elapsed_s=time.monotonic() - t_start,
            last_attempt_s=time.monotonic() - t_attempt,
            run_id=tracer.run_id,
            kind="timeout" if timed_out else "error",
        )
        tracer.counter("runner.failed_units")
        self.failures.record(rec)
        if self.verbose:
            print(f"  FAILED {name}: {rec.message}", flush=True)
        if self.fail_fast:
            if timed_out:
                raise StageTimeout(stage, unit, attempts, self.policy.timeout_s or 0.0)
            raise StageFailure(stage, unit, attempts, rec.message) from last_exc
        return UnitOutcome(failure=rec)

    def run_units(
        self,
        stage: str,
        units: list[UnitSpec],
        on_result: Callable[[str, UnitOutcome], None] | None = None,
    ) -> list[UnitOutcome]:
        """Run a batch of units; returns outcomes in the order given.

        ``on_result(unit_name, outcome)`` is invoked in the *calling* process
        as each unit finishes, which is where callers must perform checkpoint
        writes — parallel runners dispatch the unit bodies to workers but keep
        this callback in the parent so the atomic-write invariants of the
        checkpoint store hold (exactly one writer process per store).

        The serial implementation runs units in order; ``fail_fast`` raises
        out of the loop exactly like repeated :meth:`run_unit` calls would.
        A graceful-shutdown request (see :mod:`repro.runtime.supervision`)
        is honoured *between* units: the current unit finishes and is
        checkpointed via ``on_result``, then the loop raises
        :class:`~repro.runtime.errors.ShutdownRequested` naming the units
        that were never started, so ``--resume`` picks up exactly there.
        """
        from .supervision import shutdown_requested, shutdown_signum

        self._register_counters()
        outcomes: list[UnitOutcome] = []
        for i, (unit, fn, args, kwargs) in enumerate(units):
            if shutdown_requested():
                raise ShutdownRequested(
                    stage, shutdown_signum(), [u for u, *_ in units[i:]]
                )
            outcome = self.run_unit(stage, unit, fn, *args, **kwargs)
            if on_result is not None:
                on_result(unit, outcome)
            outcomes.append(outcome)
        return outcomes

    @staticmethod
    def _register_counters() -> None:
        """Zero-register the runner's metric keys so every run reports them.

        The supervision counters are registered here too — a serial run can
        never crash a worker, but its manifest must stay semantically
        identical to a ``--jobs N`` run's (``stable_view`` equality).
        """
        tracer = get_tracer()
        for key in (
            "runner.retries",
            "runner.timeouts",
            "runner.failed_units",
            "runner.worker_crashes",
            "runner.pool_respawns",
            "runner.quarantined",
            "runner.signal_shutdowns",
        ):
            tracer.counter(key, 0)

    def _attempt(
        self, name: str, fn: Callable[..., Any], args: tuple, kwargs: dict
    ) -> Any:
        def run() -> Any:
            faults.fire(name)
            return fn(*args, **kwargs)

        if self.policy.timeout_s is None:
            return run()
        pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"unit-{name}")
        try:
            fut = pool.submit(run)
            try:
                return fut.result(timeout=self.policy.timeout_s)
            except FutureTimeoutError:
                if fut.done():
                    # the unit finished in the race window between the budget
                    # expiring and this check — its own result/exception wins
                    # (a unit raising TimeoutError itself lands here too and
                    # propagates as an ordinary unit failure)
                    return fut.result()
                raise _AttemptTimeout(name) from None
        finally:
            pool.shutdown(wait=False)


def _describe(
    exc: BaseException | None, timed_out: bool, policy: RetryPolicy
) -> str:
    if timed_out:
        if policy.timeout_s is None:
            return "timed out"
        return f"timed out after {policy.timeout_s:g}s"
    return f"{type(exc).__name__}: {exc}"
