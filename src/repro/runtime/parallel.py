"""Process-pool execution of fault-tolerant units, under supervision.

:class:`ParallelRunner` is a drop-in :class:`~repro.runtime.runner.FaultTolerantRunner`
whose :meth:`run_units` dispatches unit bodies to a
``concurrent.futures.ProcessPoolExecutor`` while keeping every serial-runner
semantic:

* **retry/backoff** — each unit gets ``1 + max_retries`` attempts; a failed
  attempt re-queues the unit and it becomes eligible again only after its
  exponential backoff elapses (other units keep the workers busy meanwhile);
* **wall-clock timeout** — enforced *inside* the worker process with the same
  abandoned-thread technique the serial runner uses, so a timed-out attempt
  reports back immediately and is retried or recorded as
  :class:`~repro.runtime.errors.StageTimeout`.  The abandoned daemon thread
  keeps computing until its unit body returns (safe for our pure-compute
  units), which also means per-attempt CPU measurements must happen inside
  the unit body, not in the parent — a child's CPU time is invisible to the
  parent's ``time.process_time()``;
* **structured failure log / fail-fast vs. degrade** — permanently failed
  units land in :attr:`failures`; ``fail_fast=True`` raises and cancels
  whatever has not started yet;
* **fault injection** — :func:`repro.runtime.faults.fire` runs in the
  *parent* at the start of every attempt, and worker-side kill/hang faults
  are consumed in the parent too (:func:`repro.runtime.faults.worker_directive`)
  and shipped to the worker as a plain directive, so ``inject_faults``
  scenarios stay deterministic under parallel execution;
* **parent-side checkpointing** — the ``on_result`` callback runs in the
  parent as each unit completes, so all checkpoint-store and cache writes
  keep a single writer process and the atomic-write invariants hold.

On top of those, the runner *supervises* its pool — a SIGKILLed worker (OOM
killer, preemption, a segfaulting native lib) costs one unit re-dispatch,
never the run:

* **crash detection** — a dead worker surfaces as ``BrokenProcessPool``;
  every in-flight unit of the broken pool is re-queued and the pool is
  respawned with exponential backoff, up to :attr:`max_pool_respawns`
  breakages per ``run_units`` call (beyond that the machine itself is
  suspect and :class:`~repro.runtime.errors.PoolRespawnLimitError` aborts
  the stage);
* **heartbeat timeout** — with :attr:`heartbeat_s` set, an attempt that has
  produced no completion for that long is declared hung (a worker stuck in
  uncooperative native code never trips the in-worker timeout); its workers
  are killed, breaking the pool into the same respawn path, and the hung
  unit alone is charged with the crash;
* **poison-task quarantine** — a unit charged with
  :attr:`quarantine_threshold` crashes stops being re-dispatched and
  becomes a structured :class:`~repro.runtime.runner.FailureRecord` with
  ``kind="worker_crash"`` instead of breaking pools forever.  Attribution
  uses start announcements: each worker reports "task N started" over a
  pipe before touching the unit body, so units still queued inside the
  executor when the pool broke re-queue for free and only units that had
  *started and not completed* are charged.  With several workers the
  culprit among those is still unknowable, so an innocent unit repeatedly
  co-resident with a poison one can be quarantined too — re-running with
  ``--resume`` recomputes exactly the quarantined units;
* **graceful shutdown** — once :func:`repro.runtime.supervision.shutdown_requested`
  is set (first SIGTERM/SIGINT), nothing new is dispatched; in-flight units
  drain and are checkpointed via ``on_result``, then
  :class:`~repro.runtime.errors.ShutdownRequested` carries the undispatched
  unit names out to the CLI, which exits with the resumable exit code.

Telemetry counters: ``runner.worker_crashes`` (pool-breakage events),
``runner.pool_respawns``, ``runner.quarantined``, and (from the shutdown
coordinator) ``runner.signal_shutdowns``.

Workers receive ``(fn, args, kwargs)`` by pickle; unit functions and their
arguments must therefore be module-level picklable objects.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from . import faults
from .errors import PoolRespawnLimitError, ShutdownRequested, StageFailure, StageTimeout, WorkerCrashError
from .runner import (
    FailureRecord,
    FaultTolerantRunner,
    RetryPolicy,
    UnitOutcome,
    UnitSpec,
    _describe,
)
from .supervision import shutdown_requested, shutdown_signum
from .telemetry import get_tracer

#: How long the dispatch loop blocks waiting for worker completions before
#: re-checking backoff expiries, heartbeats and the shutdown flag (seconds).
_POLL_S = 0.05


class _WorkerTimeout(Exception):
    """Picklable marker: a worker-side attempt exhausted its wall-clock budget."""


#: Worker-side start-announcement channel, installed by ``_worker_init``.
_ANNOUNCE: Any = None


def _worker_init(announce: Any) -> None:
    """Pool initializer: announcement queue + clean signal dispositions.

    Forked workers inherit the parent's graceful-shutdown handlers
    (:mod:`repro.runtime.supervision`); left in place they would swallow the
    SIGTERM that ``ProcessPoolExecutor`` sends when tearing down a broken
    pool, leaving an unkillable worker the executor joins forever.  SIGTERM
    is restored to its default so ``Process.terminate()`` works; SIGINT is
    ignored so a terminal Ctrl-C (delivered to the whole foreground process
    group) is coordinated by the parent alone.
    """
    global _ANNOUNCE
    _ANNOUNCE = announce
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _announce_start(task_id: int) -> None:
    """Tell the parent this task began executing (crash attribution).

    Uses ``multiprocessing.SimpleQueue`` because its ``put`` writes the pipe
    synchronously — no feeder thread that a SIGKILL could take down with the
    message still buffered.
    """
    if _ANNOUNCE is None or task_id < 0:
        return
    try:
        _ANNOUNCE.put((task_id, os.getpid()))
    except (OSError, ValueError):
        pass  # parent gone or queue closed: attribution degrades gracefully


def _worker_attempt(
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    timeout_s: float | None,
    directive: tuple[str, float] | None = None,
    task_id: int = -1,
) -> Any:
    """Run one unit attempt inside a worker process, enforcing the budget.

    ``directive`` is a parent-consumed kill/hang fault: it executes *before*
    the timeout thread starts, so an injected hang is uncooperative — only
    the parent's heartbeat can catch it, exactly like a stuck native call.

    Mirrors the serial runner's thread trick: the unit body runs on a daemon
    thread and the budget is a ``join`` timeout.  A unit that finishes inside
    the race window between expiry and the liveness check wins with its own
    result/exception, exactly like the serial path; a unit raising its own
    ``TimeoutError`` stays an ordinary unit failure.
    """
    _announce_start(task_id)
    faults.execute_directive(directive)
    if timeout_s is None:
        return fn(*args, **kwargs)
    result: list[Any] = []
    error: list[BaseException] = []

    def body() -> None:
        try:
            result.append(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: B036 - re-raised below, to the parent
            error.append(exc)

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise _WorkerTimeout()
    if error:
        raise error[0]
    return result[0]


@dataclass
class _UnitState:
    """Parent-side bookkeeping for one unit's attempts."""

    index: int
    unit: str
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict
    attempt: int = 0
    t_start: float | None = None
    t_attempt: float = 0.0  # submit time of the latest attempt
    eligible_at: float = 0.0
    timed_out: bool = field(default=False, compare=False)
    last_exc: BaseException | None = None
    crashes: int = 0  # worker deaths this unit has been charged with
    hung: bool = False  # latest attempt exceeded the heartbeat deadline
    task_id: int = -1  # unique id of the latest submitted attempt


class ParallelRunner(FaultTolerantRunner):
    """A fault-tolerant runner that fans units out to supervised workers."""

    def __init__(
        self,
        jobs: int,
        policy: RetryPolicy | None = None,
        fail_fast: bool = False,
        verbose: bool = False,
        sleep: Callable[[float], None] = time.sleep,
        *,
        max_pool_respawns: int = 3,
        quarantine_threshold: int = 2,
        heartbeat_s: float | None = None,
        respawn_backoff_s: float = 0.5,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_pool_respawns < 0:
            raise ValueError(f"max_pool_respawns must be >= 0, got {max_pool_respawns}")
        if quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be >= 1, got {quarantine_threshold}"
            )
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        super().__init__(policy, fail_fast=fail_fast, verbose=verbose, sleep=sleep)
        self.jobs = jobs
        self.max_pool_respawns = max_pool_respawns
        self.quarantine_threshold = quarantine_threshold
        self.heartbeat_s = heartbeat_s
        self.respawn_backoff_s = respawn_backoff_s

    def respawn_backoff(self, respawn: int) -> float:
        """Seconds to pause before pool respawn number ``respawn`` (1-based)."""
        if self.respawn_backoff_s <= 0:
            return 0.0
        return min(30.0, self.respawn_backoff_s * 2 ** (respawn - 1))

    def run_units(
        self,
        stage: str,
        units: list[UnitSpec],
        on_result: Callable[[str, UnitOutcome], None] | None = None,
    ) -> list[UnitOutcome]:
        """Run a batch of units on the pool; outcomes return in input order."""
        if self.jobs == 1 or len(units) <= 1:
            return super().run_units(stage, units, on_result)

        self._register_counters()
        outcomes: dict[int, UnitOutcome] = {}
        states = [
            _UnitState(index=i, unit=u, fn=fn, args=a, kwargs=k)
            for i, (u, fn, a, k) in enumerate(units)
        ]
        queue: list[_UnitState] = list(states)  # waiting for (re-)submission
        running: dict[Future, _UnitState] = {}
        abandoned: list[_UnitState] = []  # undispatched due to shutdown
        respawns = 0
        next_task_id = 0
        announce = multiprocessing.SimpleQueue()
        started: set[int] = set()  # task ids a worker announced before a break

        def finish(st: _UnitState, outcome: UnitOutcome) -> None:
            outcomes[st.index] = outcome
            if on_result is not None:
                on_result(st.unit, outcome)

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_worker_init,
                initargs=(announce,),
            )

        pool = make_pool()
        try:
            while queue or running:
                if shutdown_requested() and queue:
                    # first signal: stop dispatching, drain what is in flight
                    abandoned.extend(queue)
                    queue = []
                now = time.monotonic()
                backlog: list[_UnitState] = []
                broken = False
                for st in queue:
                    # At most ``jobs`` attempts in flight: a submitted attempt
                    # starts (almost) immediately, so the heartbeat clock
                    # measures *running* time, not executor-queue waiting —
                    # and a shutdown signal finds re-dispatchable units here
                    # in the parent queue instead of buried inside the pool.
                    if broken or st.eligible_at > now or len(running) >= self.jobs:
                        backlog.append(st)
                        continue
                    if st.t_start is None:
                        st.t_start = now
                    st.attempt += 1
                    st.t_attempt = now
                    st.hung = False
                    try:
                        # the fault plan lives in the parent: fire here,
                        # not in the worker, so injection is deterministic
                        faults.fire(f"{stage}/{st.unit}")
                    except Exception as exc:
                        retry = self._attempt_failed(stage, st, False, exc)
                        if retry is not None:
                            backlog.append(st)
                        else:
                            finish(st, UnitOutcome(failure=self.failures.records[-1]))
                        continue
                    directive = faults.worker_directive(f"{stage}/{st.unit}")
                    st.task_id = next_task_id
                    next_task_id += 1
                    try:
                        fut = pool.submit(
                            _worker_attempt, st.fn, st.args, st.kwargs,
                            self.policy.timeout_s, directive, st.task_id,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        # the pool died under us before this attempt started:
                        # the attempt never ran, so hand it back unconsumed
                        st.attempt -= 1
                        backlog.append(st)
                        broken = True
                        continue
                    running[fut] = st
                queue = backlog

                if broken:
                    _drain_announcements(announce, started)
                    pool, respawns = self._recover_pool(
                        stage, pool, running, queue, finish, respawns,
                        started, make_pool,
                    )
                    continue

                if not running:
                    if queue:  # everything is backing off: sleep it out
                        pause = min(st.eligible_at for st in queue) - time.monotonic()
                        if pause > 0:
                            self._sleep(pause)
                    continue

                done, _ = wait(running, timeout=_POLL_S, return_when=FIRST_COMPLETED)
                for fut in done:
                    st = running.pop(fut)
                    if self._consume_future(stage, fut, st, queue, finish):
                        # this unit was in flight when its worker died;
                        # recovery below decides re-dispatch vs quarantine
                        running[fut] = st
                        broken = True

                if not broken and self.heartbeat_s is not None:
                    deadline_missed = [
                        st for fut, st in running.items()
                        if not fut.done() and now - st.t_attempt > self.heartbeat_s
                    ]
                    if deadline_missed:
                        for st in deadline_missed:
                            st.hung = True
                        _kill_pool_workers(pool)
                        broken = True

                if broken:
                    _drain_announcements(announce, started)
                    pool, respawns = self._recover_pool(
                        stage, pool, running, queue, finish, respawns,
                        started, make_pool,
                    )
        except BaseException:
            for fut in running:
                fut.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            announce.close()
            raise
        pool.shutdown(wait=True)
        announce.close()
        if abandoned:
            raise ShutdownRequested(
                stage, shutdown_signum(), [st.unit for st in abandoned]
            )
        return [outcomes[i] for i in range(len(units))]

    # -- supervision --------------------------------------------------------------

    def _consume_future(
        self,
        stage: str,
        fut: Future,
        st: _UnitState,
        queue: list[_UnitState],
        finish: Callable[[_UnitState, UnitOutcome], None],
    ) -> bool:
        """Settle one completed future: finish, retry-queue, or report broken.

        Returns ``True`` when the future carries ``BrokenProcessPool`` — the
        unit is still unresolved and pool recovery must decide its fate.
        """
        try:
            value = fut.result()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BrokenProcessPool:
            return True
        except _WorkerTimeout:
            if self._attempt_failed(stage, st, True, None) is not None:
                queue.append(st)
            else:
                finish(st, UnitOutcome(failure=self.failures.records[-1]))
        except Exception as exc:
            if self._attempt_failed(stage, st, False, exc) is not None:
                queue.append(st)
            else:
                finish(st, UnitOutcome(failure=self.failures.records[-1]))
        else:
            finish(st, UnitOutcome(value=value))
        return False

    def _recover_pool(
        self,
        stage: str,
        pool: ProcessPoolExecutor,
        running: dict[Future, _UnitState],
        queue: list[_UnitState],
        finish: Callable[[_UnitState, UnitOutcome], None],
        respawns: int,
        started: set[int],
        make_pool: Callable[[], ProcessPoolExecutor],
    ) -> tuple[ProcessPoolExecutor, int]:
        """Handle a broken pool: charge crashes, quarantine or re-queue, respawn.

        Crash charges go to the units that can actually be guilty: on a
        heartbeat kill, exactly the units marked hung; on an organic
        breakage, the in-flight units whose task a worker announced as
        started (``started``) but that never completed.  Units still queued
        inside the dead executor re-queue for free.  If no in-flight unit
        had started (a worker died while idle or mid-spawn), nobody is
        charged — the respawn limit still bounds that failure mode.
        """
        tracer = get_tracer()
        tracer.counter("runner.worker_crashes")
        # Harvest futures that settled before the breakage reached them — a
        # completed unit must keep its result, not be re-run or charged.
        in_flight: list[_UnitState] = []
        for fut, st in list(running.items()):
            if fut.done():
                if self._consume_future(stage, fut, st, queue, finish):
                    in_flight.append(st)
            else:
                fut.cancel()
                in_flight.append(st)
        running.clear()
        pool.shutdown(wait=False, cancel_futures=True)

        hung = [st for st in in_flight if st.hung]
        if hung:
            culprits = hung
            detail = "heartbeat expired"
        else:
            culprits = [st for st in in_flight if st.task_id in started]
            detail = "worker process died"
        for st in in_flight:
            if st not in culprits:
                # not chargeable (never started, or another unit hung): the
                # attempt never ran to a verdict, so hand it back unconsumed
                st.attempt -= 1
                st.eligible_at = 0.0
                queue.append(st)
                continue
            st.crashes += 1
            if self.verbose:
                print(
                    f"  worker crash running {stage}/{st.unit} "
                    f"({detail}; crash #{st.crashes})",
                    flush=True,
                )
            if st.crashes >= self.quarantine_threshold:
                self._quarantine(stage, st, detail, finish)
            else:
                st.attempt -= 1  # infrastructure failure: no retry consumed
                st.eligible_at = 0.0
                queue.append(st)

        respawns += 1
        if respawns > self.max_pool_respawns:
            raise PoolRespawnLimitError(stage, respawns, self.max_pool_respawns)
        tracer.counter("runner.pool_respawns")
        pause = self.respawn_backoff(respawns)
        if self.verbose:
            print(
                f"  respawning worker pool (break {respawns}/"
                f"{self.max_pool_respawns}, backoff {pause:g}s)",
                flush=True,
            )
        if pause > 0:
            self._sleep(pause)
        return make_pool(), respawns

    def _quarantine(
        self,
        stage: str,
        st: _UnitState,
        detail: str,
        finish: Callable[[_UnitState, UnitOutcome], None],
    ) -> None:
        """Permanently fail a unit that keeps taking workers down."""
        tracer = get_tracer()
        tracer.counter("runner.quarantined")
        now = time.monotonic()
        rec = FailureRecord(
            stage=stage,
            unit=st.unit,
            attempts=st.attempt,
            error_type=WorkerCrashError.__name__,
            message=(
                f"{detail}; {st.crashes} crash(es) charged to this unit — "
                "quarantined as a poison task"
            ),
            elapsed_s=now - (st.t_start or now),
            last_attempt_s=now - st.t_attempt if st.t_attempt else 0.0,
            run_id=tracer.run_id,
            kind="worker_crash",
        )
        self.failures.record(rec)
        if self.verbose:
            print(f"  QUARANTINED {stage}/{st.unit}: {rec.message}", flush=True)
        if self.fail_fast:
            raise WorkerCrashError(stage, st.unit, st.crashes, detail)
        finish(st, UnitOutcome(failure=rec))

    def _attempt_failed(
        self,
        stage: str,
        st: _UnitState,
        timed_out: bool,
        exc: BaseException | None,
    ) -> _UnitState | None:
        """Handle one failed attempt: schedule a retry or record the failure.

        Returns the state when the unit should be re-queued, ``None`` when it
        is permanently failed (recorded; raises when ``fail_fast``).
        """
        st.timed_out = timed_out
        st.last_exc = exc
        name = f"{stage}/{st.unit}"
        tracer = get_tracer()
        if timed_out:
            tracer.counter("runner.timeouts")
        if st.attempt < self.policy.max_attempts:
            tracer.counter("runner.retries")
            st.eligible_at = time.monotonic() + self.policy.backoff(st.attempt)
            if self.verbose:
                print(
                    f"  retrying {name} (attempt {st.attempt} failed: "
                    f"{_describe(exc, timed_out, self.policy)})",
                    flush=True,
                )
            return st

        rec = FailureRecord(
            stage=stage,
            unit=st.unit,
            attempts=st.attempt,
            error_type="StageTimeout" if timed_out else type(exc).__name__,
            message=_describe(exc, timed_out, self.policy),
            elapsed_s=time.monotonic() - (st.t_start or time.monotonic()),
            # submit-to-completion of the final attempt (queue wait included)
            last_attempt_s=time.monotonic() - st.t_attempt if st.t_attempt else 0.0,
            run_id=tracer.run_id,
            kind="timeout" if timed_out else "error",
        )
        tracer.counter("runner.failed_units")
        self.failures.record(rec)
        if self.verbose:
            print(f"  FAILED {name}: {rec.message}", flush=True)
        if self.fail_fast:
            if timed_out:
                raise StageTimeout(stage, st.unit, st.attempt, self.policy.timeout_s or 0.0)
            raise StageFailure(stage, st.unit, st.attempt, rec.message) from exc
        return None


def _drain_announcements(announce: Any, started: set[int]) -> None:
    """Pull all pending start announcements into ``started`` (parent side)."""
    try:
        while not announce.empty():
            task_id, _pid = announce.get()
            started.add(task_id)
    except (OSError, EOFError, ValueError):
        pass  # torn pipe after a crash: attribution degrades gracefully


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every live worker of a pool whose tasks stopped heartbeating.

    Reaches into ``ProcessPoolExecutor._processes`` (a pid → Process map);
    there is no public API for this, but a hung worker ignores cooperative
    shutdown by definition.  Killing the workers breaks the pool, which the
    dispatch loop then recovers exactly like an organic worker death.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.kill()
        except (OSError, AttributeError, ValueError):
            pass  # already dead, or platform without kill(): best effort
