"""Process-pool execution of fault-tolerant units.

:class:`ParallelRunner` is a drop-in :class:`~repro.runtime.runner.FaultTolerantRunner`
whose :meth:`run_units` dispatches unit bodies to a
``concurrent.futures.ProcessPoolExecutor`` while keeping every serial-runner
semantic:

* **retry/backoff** — each unit gets ``1 + max_retries`` attempts; a failed
  attempt re-queues the unit and it becomes eligible again only after its
  exponential backoff elapses (other units keep the workers busy meanwhile);
* **wall-clock timeout** — enforced *inside* the worker process with the same
  abandoned-thread technique the serial runner uses, so a timed-out attempt
  reports back immediately and is retried or recorded as
  :class:`~repro.runtime.errors.StageTimeout`.  The abandoned daemon thread
  keeps computing until its unit body returns (safe for our pure-compute
  units), which also means per-attempt CPU measurements must happen inside
  the unit body, not in the parent — a child's CPU time is invisible to the
  parent's ``time.process_time()``;
* **structured failure log / fail-fast vs. degrade** — permanently failed
  units land in :attr:`failures`; ``fail_fast=True`` raises and cancels
  whatever has not started yet;
* **fault injection** — :func:`repro.runtime.faults.fire` runs in the
  *parent* at the start of every attempt (worker processes never see the
  fault plan), so ``inject_faults`` scenarios stay deterministic under
  parallel execution;
* **parent-side checkpointing** — the ``on_result`` callback runs in the
  parent as each unit completes, so all checkpoint-store and cache writes
  keep a single writer process and the atomic-write invariants hold.

Workers receive ``(fn, args, kwargs)`` by pickle; unit functions and their
arguments must therefore be module-level picklable objects.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable

from . import faults
from .errors import StageFailure, StageTimeout
from .runner import (
    FailureRecord,
    FaultTolerantRunner,
    RetryPolicy,
    UnitOutcome,
    UnitSpec,
    _describe,
)
from .telemetry import get_tracer

#: How long the dispatch loop blocks waiting for worker completions before
#: re-checking backoff expiries (seconds).
_POLL_S = 0.05


class _WorkerTimeout(Exception):
    """Picklable marker: a worker-side attempt exhausted its wall-clock budget."""


def _worker_attempt(
    fn: Callable[..., Any], args: tuple, kwargs: dict, timeout_s: float | None
) -> Any:
    """Run one unit attempt inside a worker process, enforcing the budget.

    Mirrors the serial runner's thread trick: the unit body runs on a daemon
    thread and the budget is a ``join`` timeout.  A unit that finishes inside
    the race window between expiry and the liveness check wins with its own
    result/exception, exactly like the serial path; a unit raising its own
    ``TimeoutError`` stays an ordinary unit failure.
    """
    if timeout_s is None:
        return fn(*args, **kwargs)
    result: list[Any] = []
    error: list[BaseException] = []

    def body() -> None:
        try:
            result.append(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: B036 - re-raised below, to the parent
            error.append(exc)

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise _WorkerTimeout()
    if error:
        raise error[0]
    return result[0]


@dataclass
class _UnitState:
    """Parent-side bookkeeping for one unit's attempts."""

    index: int
    unit: str
    fn: Callable[..., Any]
    args: tuple
    kwargs: dict
    attempt: int = 0
    t_start: float | None = None
    t_attempt: float = 0.0  # submit time of the latest attempt
    eligible_at: float = 0.0
    timed_out: bool = field(default=False, compare=False)
    last_exc: BaseException | None = None


class ParallelRunner(FaultTolerantRunner):
    """A fault-tolerant runner that fans units out to worker processes."""

    def __init__(
        self,
        jobs: int,
        policy: RetryPolicy | None = None,
        fail_fast: bool = False,
        verbose: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        super().__init__(policy, fail_fast=fail_fast, verbose=verbose, sleep=sleep)
        self.jobs = jobs

    def run_units(
        self,
        stage: str,
        units: list[UnitSpec],
        on_result: Callable[[str, UnitOutcome], None] | None = None,
    ) -> list[UnitOutcome]:
        """Run a batch of units on the pool; outcomes return in input order."""
        if self.jobs == 1 or len(units) <= 1:
            return super().run_units(stage, units, on_result)

        self._register_counters()
        outcomes: dict[int, UnitOutcome] = {}
        states = [
            _UnitState(index=i, unit=u, fn=fn, args=a, kwargs=k)
            for i, (u, fn, a, k) in enumerate(units)
        ]
        queue: list[_UnitState] = list(states)  # waiting for (re-)submission
        running: dict[Future, _UnitState] = {}

        def finish(st: _UnitState, outcome: UnitOutcome) -> None:
            outcomes[st.index] = outcome
            if on_result is not None:
                on_result(st.unit, outcome)

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            try:
                while queue or running:
                    now = time.monotonic()
                    backlog: list[_UnitState] = []
                    for st in queue:
                        if st.eligible_at > now:
                            backlog.append(st)
                            continue
                        if st.t_start is None:
                            st.t_start = now
                        st.attempt += 1
                        st.t_attempt = now
                        try:
                            # the fault plan lives in the parent: fire here,
                            # not in the worker, so injection is deterministic
                            faults.fire(f"{stage}/{st.unit}")
                        except Exception as exc:
                            retry = self._attempt_failed(stage, st, False, exc)
                            if retry is not None:
                                backlog.append(st)
                            else:
                                finish(st, UnitOutcome(failure=self.failures.records[-1]))
                            continue
                        fut = pool.submit(
                            _worker_attempt, st.fn, st.args, st.kwargs,
                            self.policy.timeout_s,
                        )
                        running[fut] = st
                    queue = backlog

                    if not running:
                        if queue:  # everything is backing off: sleep it out
                            pause = min(st.eligible_at for st in queue) - time.monotonic()
                            if pause > 0:
                                self._sleep(pause)
                        continue

                    done, _ = wait(running, timeout=_POLL_S, return_when=FIRST_COMPLETED)
                    for fut in done:
                        st = running.pop(fut)
                        try:
                            value = fut.result()
                        except (KeyboardInterrupt, SystemExit):
                            raise
                        except _WorkerTimeout:
                            if self._attempt_failed(stage, st, True, None) is not None:
                                queue.append(st)
                            else:
                                finish(st, UnitOutcome(failure=self.failures.records[-1]))
                        except Exception as exc:
                            if self._attempt_failed(stage, st, False, exc) is not None:
                                queue.append(st)
                            else:
                                finish(st, UnitOutcome(failure=self.failures.records[-1]))
                        else:
                            finish(st, UnitOutcome(value=value))
            except BaseException:
                for fut in running:
                    fut.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return [outcomes[i] for i in range(len(units))]

    def _attempt_failed(
        self,
        stage: str,
        st: _UnitState,
        timed_out: bool,
        exc: BaseException | None,
    ) -> _UnitState | None:
        """Handle one failed attempt: schedule a retry or record the failure.

        Returns the state when the unit should be re-queued, ``None`` when it
        is permanently failed (recorded; raises when ``fail_fast``).
        """
        st.timed_out = timed_out
        st.last_exc = exc
        name = f"{stage}/{st.unit}"
        tracer = get_tracer()
        if timed_out:
            tracer.counter("runner.timeouts")
        if st.attempt < self.policy.max_attempts:
            tracer.counter("runner.retries")
            st.eligible_at = time.monotonic() + self.policy.backoff(st.attempt)
            if self.verbose:
                print(
                    f"  retrying {name} (attempt {st.attempt} failed: "
                    f"{_describe(exc, timed_out, self.policy)})",
                    flush=True,
                )
            return st

        rec = FailureRecord(
            stage=stage,
            unit=st.unit,
            attempts=st.attempt,
            error_type="StageTimeout" if timed_out else type(exc).__name__,
            message=_describe(exc, timed_out, self.policy),
            elapsed_s=time.monotonic() - (st.t_start or time.monotonic()),
            # submit-to-completion of the final attempt (queue wait included)
            last_attempt_s=time.monotonic() - st.t_attempt if st.t_attempt else 0.0,
            run_id=tracer.run_id,
        )
        tracer.counter("runner.failed_units")
        self.failures.record(rec)
        if self.verbose:
            print(f"  FAILED {name}: {rec.message}", flush=True)
        if self.fail_fast:
            if timed_out:
                raise StageTimeout(stage, st.unit, st.attempt, self.policy.timeout_s or 0.0)
            raise StageFailure(stage, st.unit, st.attempt, rec.message) from exc
        return None
