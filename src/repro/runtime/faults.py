"""Deterministic fault injection into named runtime stages.

CI cannot rely on real crashes, slow disks, or bit-rot to exercise the
fault-tolerant runtime, so this module lets tests *schedule* them::

    with inject_faults(
        FaultSpec(stage="flow/mult_1", kind="error", times=1),
        FaultSpec(stage="checkpoint/fft_b*", kind="corrupt"),
    ) as plan:
        build_suite_dataset(...)
    assert plan.triggered == [...]

Stages are hierarchical names (``"flow/mult_1"``, ``"experiment/RF__g2"``,
``"checkpoint/<key>"``) matched with :func:`fnmatch.fnmatch`, so a spec can
target one unit or a whole family.  Each spec fires a bounded number of
``times`` (after skipping the first ``after`` matches), which makes
retry-then-succeed scenarios deterministic.

Five fault kinds:

* ``"error"``  — raise ``exception(message)`` from inside the unit;
* ``"delay"``  — sleep ``delay_s`` inside the unit (trips timeouts);
* ``"corrupt"`` — flip bytes of an artefact file just after it is written
  (trips checksums on the next load);
* ``"kill"``   — ``os.kill(os.getpid(), SIGKILL)`` *inside a worker
  process* (exercises pool breakage and the supervision layer);
* ``"hang"``   — sleep ``delay_s`` inside a worker without returning
  (exercises the per-task heartbeat timeout).

``kill`` and ``hang`` are worker-side faults: the parent consumes the spec
deterministically at submit time (:func:`worker_directive`) and ships a
plain directive tuple to the worker, so the plan's trigger bookkeeping
stays in one process even though the crash happens in another.  They are
deliberately ignored by :func:`fire` — a serial runner SIGKILLing itself
would take the whole run (and the test harness) down with it.

Production code calls the module-level hooks :func:`fire`,
:func:`worker_directive` and :func:`corrupt_artifact`; all are no-ops
unless a plan is active, so the hooks cost one attribute check on the hot
path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Iterator

from .errors import FaultInjected


@dataclass
class FaultSpec:
    """One scheduled fault against a stage-name pattern."""

    stage: str  # fnmatch pattern against hierarchical stage names
    kind: str = "error"  # "error" | "delay" | "corrupt" | "kill" | "hang"
    times: int = 1  # how many matching calls trigger before the spec disarms
    after: int = 0  # skip this many matching calls first
    exception: type[Exception] = FaultInjected
    message: str = "injected fault"
    delay_s: float = 0.05

    #: mutable trigger bookkeeping (not part of the spec identity)
    seen: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("error", "delay", "corrupt", "kill", "hang"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def should_fire(self, stage: str) -> bool:
        if not fnmatch(stage, self.stage):
            return False
        self.seen += 1
        if self.seen <= self.after or self.fired >= self.times:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """An active set of fault specs plus a record of what actually fired."""

    def __init__(self, *specs: FaultSpec, sleep: Callable[[float], None] = time.sleep):
        self.specs = list(specs)
        self.triggered: list[tuple[str, str]] = []  # (stage, kind) in fire order
        self._sleep = sleep

    def fire(self, stage: str) -> None:
        """Raise/delay per any armed error- or delay-spec matching ``stage``."""
        for spec in self.specs:
            if spec.kind not in ("error", "delay") or not spec.should_fire(stage):
                continue
            self.triggered.append((stage, spec.kind))
            if spec.kind == "delay":
                self._sleep(spec.delay_s)
            else:
                raise spec.exception(f"{spec.message} @ {stage}")

    def worker_directive(self, stage: str) -> tuple[str, float] | None:
        """Consume an armed kill/hang spec for ``stage`` (parent-side).

        Returns the picklable ``(kind, delay_s)`` directive that the worker
        executes, or ``None``.  Consuming in the parent keeps the plan's
        trigger bookkeeping deterministic regardless of worker scheduling.
        """
        for spec in self.specs:
            if spec.kind not in ("kill", "hang") or not spec.should_fire(stage):
                continue
            self.triggered.append((stage, spec.kind))
            return (spec.kind, spec.delay_s)
        return None

    def corrupt_artifact(self, stage: str, path: Path) -> bool:
        """Flip bytes in ``path`` per any armed corrupt-spec matching ``stage``."""
        corrupted = False
        for spec in self.specs:
            if spec.kind != "corrupt" or not spec.should_fire(stage):
                continue
            self.triggered.append((stage, spec.kind))
            _flip_bytes(Path(path))
            corrupted = True
        return corrupted


def _flip_bytes(path: Path, n: int = 16) -> None:
    """Deterministically invert ``n`` bytes in the middle of the file."""
    data = bytearray(path.read_bytes())
    if not data:
        return
    start = len(data) // 2
    for i in range(start, min(start + n, len(data))):
        data[i] ^= 0xFF
    path.write_bytes(bytes(data))


#: The currently active plan (None outside ``inject_faults`` blocks).
_ACTIVE: FaultPlan | None = None


@contextmanager
def inject_faults(*specs: FaultSpec, sleep: Callable[[float], None] = time.sleep) -> Iterator[FaultPlan]:
    """Activate a fault plan for the duration of the ``with`` block."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("fault plans do not nest")
    plan = FaultPlan(*specs, sleep=sleep)
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None


def fire(stage: str) -> None:
    """Hook called by the runner at the start of every unit attempt."""
    if _ACTIVE is not None:
        _ACTIVE.fire(stage)


def worker_directive(stage: str) -> tuple[str, float] | None:
    """Hook called by the parallel runner when submitting a unit attempt."""
    if _ACTIVE is not None:
        return _ACTIVE.worker_directive(stage)
    return None


def corrupt_artifact(stage: str, path: Path) -> bool:
    """Hook called by the checkpoint store after writing an artefact."""
    if _ACTIVE is not None:
        return _ACTIVE.corrupt_artifact(stage, path)
    return False


def execute_directive(directive: tuple[str, float] | None) -> None:
    """Execute a kill/hang directive inside a worker process.

    ``kill`` raises SIGKILL against the *current* process — exactly what the
    OOM killer or a preempting scheduler does — after sleeping ``delay_s``
    (a deterministic window for co-resident units to finish, keeping crash
    schedules reproducible); ``hang`` sleeps ``delay_s`` without any
    cooperation with timeouts, which is how a stuck native library looks
    from the parent.
    """
    if directive is None:
        return
    kind, delay_s = directive
    if kind == "kill":
        import os
        import signal

        if delay_s > 0:
            time.sleep(delay_s)
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "hang":
        time.sleep(delay_s)
