"""Fault-tolerant flow runtime: checkpoints, retries, validation, faults.

The paper's protocol (Sec. IV) is an hours-scale pipeline — 14 design flows
feeding a 5-group leave-one-group-out grid search.  This package makes every
long-running path resumable and failure-isolated:

* :mod:`repro.runtime.checkpoint` — atomic write-temp-then-rename persistence
  with SHA-256 content checksums and format-version stamping;
* :mod:`repro.runtime.runner` — per-unit try/except isolation, retry with
  backoff, wall-clock timeouts, and a structured failure log;
* :mod:`repro.runtime.parallel` — a process-pool runner with the same unit
  semantics, for fanning independent units out across CPU cores;
* :mod:`repro.runtime.validation` — NaN/Inf/shape/dtype guards on feature
  matrices and label vectors;
* :mod:`repro.runtime.errors` — the typed error taxonomy
  (:class:`CacheCorruptionError`, :class:`StageFailure`,
  :class:`ValidationError`);
* :mod:`repro.runtime.faults` — a deterministic fault-injection hook so the
  whole machinery is testable in CI;
* :mod:`repro.runtime.telemetry` — hierarchical span tracing, counters and
  gauges, JSONL trace + ``run_manifest.json`` sinks, and picklable
  snapshots so worker telemetry merges deterministically into the parent.
"""

from .checkpoint import CHECKPOINT_FORMAT_VERSION, CheckpointStore, atomic_write_bytes, sha256_of
from .errors import (
    CacheCorruptionError,
    FaultInjected,
    ReproRuntimeError,
    StageFailure,
    StageTimeout,
    ValidationError,
)
from .faults import FaultSpec, inject_faults
from .parallel import ParallelRunner
from .runner import FailureLog, FailureRecord, FaultTolerantRunner, RetryPolicy, UnitOutcome
from .telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    SpanNode,
    TelemetrySnapshot,
    Tracer,
    activate,
    build_manifest,
    get_tracer,
    load_trace,
    manifest_path_for,
    new_run_id,
    stable_view,
    write_manifest,
    write_trace,
)
from .validation import validate_features

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "CacheCorruptionError",
    "CheckpointStore",
    "FailureLog",
    "FailureRecord",
    "FaultInjected",
    "FaultSpec",
    "FaultTolerantRunner",
    "ParallelRunner",
    "ReproRuntimeError",
    "RetryPolicy",
    "SpanNode",
    "StageFailure",
    "StageTimeout",
    "TelemetrySnapshot",
    "Tracer",
    "UnitOutcome",
    "ValidationError",
    "activate",
    "atomic_write_bytes",
    "build_manifest",
    "get_tracer",
    "inject_faults",
    "load_trace",
    "manifest_path_for",
    "new_run_id",
    "sha256_of",
    "stable_view",
    "validate_features",
    "write_manifest",
    "write_trace",
]
