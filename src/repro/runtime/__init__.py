"""Fault-tolerant flow runtime: checkpoints, retries, validation, faults.

The paper's protocol (Sec. IV) is an hours-scale pipeline — 14 design flows
feeding a 5-group leave-one-group-out grid search.  This package makes every
long-running path resumable and failure-isolated:

* :mod:`repro.runtime.checkpoint` — atomic write-temp-then-rename persistence
  with SHA-256 content checksums and format-version stamping;
* :mod:`repro.runtime.runner` — per-unit try/except isolation, retry with
  backoff, wall-clock timeouts, and a structured failure log;
* :mod:`repro.runtime.parallel` — a process-pool runner with the same unit
  semantics, for fanning independent units out across CPU cores; the pool is
  *supervised*: dead workers are detected and respawned with backoff, hung
  attempts are heartbeat-killed, and poison units are quarantined as
  structured ``worker_crash`` failures instead of breaking pools forever;
* :mod:`repro.runtime.supervision` — two-stage SIGTERM/SIGINT handling:
  first signal drains, checkpoints and flushes (resumable exit), second
  hard-exits;
* :mod:`repro.runtime.validation` — NaN/Inf/shape/dtype guards on feature
  matrices and label vectors;
* :mod:`repro.runtime.errors` — the typed error taxonomy
  (:class:`CacheCorruptionError`, :class:`StageFailure`,
  :class:`ValidationError`);
* :mod:`repro.runtime.faults` — a deterministic fault-injection hook so the
  whole machinery is testable in CI;
* :mod:`repro.runtime.telemetry` — hierarchical span tracing, counters and
  gauges, JSONL trace + ``run_manifest.json`` sinks, and picklable
  snapshots so worker telemetry merges deterministically into the parent.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    atomic_write_bytes,
    fsync_dir,
    sha256_of,
    sweep_orphan_temps,
)
from .errors import (
    CacheCorruptionError,
    FaultInjected,
    PoolRespawnLimitError,
    ReproRuntimeError,
    ShutdownRequested,
    StageFailure,
    StageTimeout,
    ValidationError,
    WorkerCrashError,
)
from .faults import FaultSpec, inject_faults
from .parallel import ParallelRunner
from .runner import FailureLog, FailureRecord, FaultTolerantRunner, RetryPolicy, UnitOutcome
from .supervision import graceful_shutdown, shutdown_requested
from .telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    SpanNode,
    TelemetrySnapshot,
    Tracer,
    activate,
    build_manifest,
    get_tracer,
    load_trace,
    manifest_path_for,
    new_run_id,
    stable_view,
    write_manifest,
    write_trace,
)
from .validation import validate_features

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "CacheCorruptionError",
    "CheckpointStore",
    "FailureLog",
    "FailureRecord",
    "FaultInjected",
    "FaultSpec",
    "FaultTolerantRunner",
    "ParallelRunner",
    "PoolRespawnLimitError",
    "ReproRuntimeError",
    "RetryPolicy",
    "ShutdownRequested",
    "SpanNode",
    "StageFailure",
    "StageTimeout",
    "TelemetrySnapshot",
    "Tracer",
    "UnitOutcome",
    "ValidationError",
    "WorkerCrashError",
    "activate",
    "atomic_write_bytes",
    "build_manifest",
    "fsync_dir",
    "get_tracer",
    "graceful_shutdown",
    "inject_faults",
    "load_trace",
    "manifest_path_for",
    "new_run_id",
    "sha256_of",
    "shutdown_requested",
    "stable_view",
    "sweep_orphan_temps",
    "validate_features",
    "write_manifest",
    "write_trace",
]
