"""The typed error taxonomy of the fault-tolerant runtime.

Every failure the runtime can surface is one of these, so callers (the CLI,
the suite builder, tests) can branch on *kind* of failure instead of string
matching.  :class:`CacheCorruptionError` and :class:`ValidationError` also
subclass :class:`ValueError` so pre-runtime callers that caught ``ValueError``
keep working.
"""

from __future__ import annotations


class ReproRuntimeError(Exception):
    """Base class for every error raised by :mod:`repro.runtime`."""


class CacheCorruptionError(ReproRuntimeError, ValueError):
    """A cached artefact is truncated, checksum-mismatched, or the wrong
    format version.  The remedy is always the same: invalidate and rebuild."""


class ValidationError(ReproRuntimeError, ValueError):
    """A feature matrix or label vector failed an integrity guard
    (NaN/Inf values, wrong shape, wrong dtype, non-binary labels)."""


class StageFailure(ReproRuntimeError):
    """A pipeline unit exhausted its retry budget (or ``fail_fast`` was set).

    Carries the stage/unit identity and the attempt count; the causing
    exception is chained via ``__cause__``.
    """

    def __init__(self, stage: str, unit: str, attempts: int, message: str = ""):
        self.stage = stage
        self.unit = unit
        self.attempts = attempts
        detail = message or "failed"
        super().__init__(
            f"{stage}/{unit}: {detail} after {attempts} attempt(s)"
        )


class StageTimeout(StageFailure):
    """A unit exceeded its wall-clock timeout budget."""

    def __init__(self, stage: str, unit: str, attempts: int, timeout_s: float):
        self.timeout_s = timeout_s
        super().__init__(stage, unit, attempts, f"timed out after {timeout_s:g}s")


class WorkerCrashError(ReproRuntimeError):
    """A worker process died mid-unit (SIGKILL, OOM, segfault) or stopped
    heartbeating.  Carries the unit identity and how many times that unit has
    now been co-resident with a crash, so the supervisor can decide between
    re-dispatch and quarantine."""

    def __init__(self, stage: str, unit: str, crashes: int, detail: str = ""):
        self.stage = stage
        self.unit = unit
        self.crashes = crashes
        super().__init__(
            f"{stage}/{unit}: worker crashed ({detail or 'process died'}; "
            f"crash #{crashes} for this unit)"
        )


class PoolRespawnLimitError(ReproRuntimeError):
    """The supervised pool broke more times than ``max_pool_respawns`` allows.

    This is an infrastructure failure (the machine keeps killing workers),
    not a per-unit one, so it aborts the stage instead of degrading it.
    """

    def __init__(self, stage: str, respawns: int, limit: int):
        self.stage = stage
        self.respawns = respawns
        self.limit = limit
        super().__init__(
            f"{stage}: worker pool broke {respawns} time(s); respawn limit "
            f"is {limit} — aborting (is the machine out of memory?)"
        )


class ShutdownRequested(ReproRuntimeError):
    """A graceful-shutdown signal (SIGTERM/SIGINT) interrupted the run.

    Raised by the runners *between* units once the shutdown coordinator's
    flag is set: everything already completed has been checkpointed, so the
    run is resumable with ``--resume``.  ``pending`` lists the units that
    were never dispatched or had to be abandoned.
    """

    def __init__(self, stage: str, signum: int, pending: list[str] | None = None):
        self.stage = stage
        self.signum = signum
        self.pending = list(pending or [])
        left = f"; {len(self.pending)} unit(s) left" if self.pending else ""
        super().__init__(
            f"{stage}: shutdown requested by signal {signum}{left} — "
            "checkpoints flushed, rerun with --resume to continue"
        )


class FaultInjected(ReproRuntimeError):
    """Default exception raised by the fault-injection harness."""
