"""The typed error taxonomy of the fault-tolerant runtime.

Every failure the runtime can surface is one of these, so callers (the CLI,
the suite builder, tests) can branch on *kind* of failure instead of string
matching.  :class:`CacheCorruptionError` and :class:`ValidationError` also
subclass :class:`ValueError` so pre-runtime callers that caught ``ValueError``
keep working.
"""

from __future__ import annotations


class ReproRuntimeError(Exception):
    """Base class for every error raised by :mod:`repro.runtime`."""


class CacheCorruptionError(ReproRuntimeError, ValueError):
    """A cached artefact is truncated, checksum-mismatched, or the wrong
    format version.  The remedy is always the same: invalidate and rebuild."""


class ValidationError(ReproRuntimeError, ValueError):
    """A feature matrix or label vector failed an integrity guard
    (NaN/Inf values, wrong shape, wrong dtype, non-binary labels)."""


class StageFailure(ReproRuntimeError):
    """A pipeline unit exhausted its retry budget (or ``fail_fast`` was set).

    Carries the stage/unit identity and the attempt count; the causing
    exception is chained via ``__cause__``.
    """

    def __init__(self, stage: str, unit: str, attempts: int, message: str = ""):
        self.stage = stage
        self.unit = unit
        self.attempts = attempts
        detail = message or "failed"
        super().__init__(
            f"{stage}/{unit}: {detail} after {attempts} attempt(s)"
        )


class StageTimeout(StageFailure):
    """A unit exceeded its wall-clock timeout budget."""

    def __init__(self, stage: str, unit: str, attempts: int, timeout_s: float):
        self.timeout_s = timeout_s
        super().__init__(stage, unit, attempts, f"timed out after {timeout_s:g}s")


class FaultInjected(ReproRuntimeError):
    """Default exception raised by the fault-injection harness."""
