"""Integrity guards for feature matrices and label vectors.

Checkpoints and caches reintroduce data the flow did not just compute, so
everything loaded from disk — and everything about to enter ``fit``/
``predict`` — passes through :func:`validate_features`.  A silent NaN in one
g-cell's 387 features would otherwise surface as a cryptic failure deep in a
model, or worse, as a quietly wrong Table II row.
"""

from __future__ import annotations

import numpy as np

from .errors import ValidationError


def validate_features(
    X: np.ndarray,
    y: np.ndarray | None = None,
    *,
    name: str = "dataset",
    expect_features: int | None = None,
) -> None:
    """Raise :class:`ValidationError` unless ``X`` (and ``y``) are sound.

    Checks: ``X`` is a 2-D floating matrix of finite values with
    ``expect_features`` columns (when given); ``y`` is a 1-D integer-like
    vector of the matching length whose values are all 0/1.
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValidationError(f"{name}: X must be 2-D, got shape {X.shape}")
    if expect_features is not None and X.shape[1] != expect_features:
        raise ValidationError(
            f"{name}: X has {X.shape[1]} features, expected {expect_features}"
        )
    if not np.issubdtype(X.dtype, np.floating):
        raise ValidationError(f"{name}: X dtype {X.dtype} is not floating")
    if not np.isfinite(X).all():
        bad = int(np.size(X) - np.count_nonzero(np.isfinite(X)))
        raise ValidationError(f"{name}: X contains {bad} NaN/Inf value(s)")

    if y is None:
        return
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValidationError(f"{name}: y must be 1-D, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValidationError(
            f"{name}: y length {y.shape[0]} != X rows {X.shape[0]}"
        )
    if not (np.issubdtype(y.dtype, np.integer) or np.issubdtype(y.dtype, np.bool_)):
        raise ValidationError(f"{name}: y dtype {y.dtype} is not integer/bool")
    if not np.isin(y, (0, 1)).all():
        raise ValidationError(f"{name}: y contains non-binary labels")
