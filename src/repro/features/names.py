"""Canonical names and ordering of the 387 features.

The paper extracts 387 features per sample (Sec. II-A):

* 9 window cells × 11 placement features                      =  99
* 12 window edges × 5 metal layers × {C, L, C−L}              = 180
* 9 window cells × 4 via layers × {C, L, C−L}                 = 108

Naming follows the convention of the paper's Fig. 3(d) as closely as the
text allows:

* ``ec``/``el``/``ed`` prefixes are the edge **c**apacity, **l**oad and
  margin (**d**ifference C−L) — the paper's ``edM4_4V`` is our ``edM4_4V``
  too; window-edge labels (``1H`` .. ``12H``) are defined in
  :mod:`repro.layout.grid`.
* ``vc``/``vl``/``vd`` are the via capacity / load / margin; the paper's
  ``v1V2_E`` (via load, layer V2, east cell) corresponds to our ``vlV2_E``.
* Placement features carry the window-position suffix:
  ``x_o, y_o, cells_N, pins_NE, clkpins_o, lnets_o, lpins_o, ndrpins_o,
  pinspace_o, blkg_o, cellarea_o`` etc.

The *order* of the list is the column order of every feature matrix in this
repository.
"""

from __future__ import annotations

from functools import lru_cache

from ..layout.grid import WINDOW_EDGES, WINDOW_POSITIONS

#: Placement feature stems, in column order, one block per window position.
PLACEMENT_STEMS: tuple[str, ...] = (
    "x",         # normalised centre x of the g-cell
    "y",         # normalised centre y
    "cells",     # standard cells fully inside
    "pins",      # pins inside
    "clkpins",   # clock pins inside
    "lnets",     # local nets (all pins inside this g-cell)
    "lpins",     # pins belonging to local nets
    "ndrpins",   # pins with non-default rules
    "pinspace",  # mean pair-wise Manhattan pin distance
    "blkg",      # fraction of area under blockages
    "cellarea",  # fraction of area under standard cells
)

#: Metal layers in feature order (all five, as the paper counts them).
FEATURE_METAL_LAYERS: tuple[int, ...] = (1, 2, 3, 4, 5)

#: Via layers in feature order.
FEATURE_VIA_LAYERS: tuple[int, ...] = (1, 2, 3, 4)

#: Congestion value kinds, in column order per edge/cell.
CONGESTION_KINDS: tuple[str, ...] = ("c", "l", "d")  # capacity, load, margin


@lru_cache(maxsize=1)
def feature_names() -> tuple[str, ...]:
    """All 387 feature names in canonical column order."""
    names: list[str] = []
    # 1) placement block: position-major, stem-minor
    for pos in WINDOW_POSITIONS:
        for stem in PLACEMENT_STEMS:
            names.append(f"{stem}_{pos}")
    # 2) edge congestion: layer-major, edge-minor, kind-innermost
    for m in FEATURE_METAL_LAYERS:
        for edge in WINDOW_EDGES:
            for kind in CONGESTION_KINDS:
                names.append(f"e{kind}M{m}_{edge.label}")
    # 3) via congestion: layer-major, position-minor, kind-innermost
    for v in FEATURE_VIA_LAYERS:
        for pos in WINDOW_POSITIONS:
            for kind in CONGESTION_KINDS:
                names.append(f"v{kind}V{v}_{pos}")
    return tuple(names)


NUM_FEATURES = 387


@lru_cache(maxsize=1)
def feature_index() -> dict[str, int]:
    """Name → column index lookup."""
    return {name: i for i, name in enumerate(feature_names())}


def describe_feature(name: str) -> str:
    """Human-readable description of one feature, for explanation reports."""
    idx = feature_index().get(name)
    if idx is None:
        raise KeyError(f"unknown feature {name!r}")
    stem, _, suffix = name.partition("_")
    if stem.startswith("e") and stem[1] in "cld":
        kind = {"c": "capacity", "l": "load", "d": "margin (C-L)"}[stem[1]]
        return f"GR edge {kind} on {stem[2:]} at window edge {suffix}"
    if stem.startswith("v") and stem[1] in "cld":
        kind = {"c": "capacity", "l": "load", "d": "margin (C-L)"}[stem[1]]
        return f"via {kind} on {stem[2:]} in window cell {suffix}"
    descriptions = {
        "x": "normalised centre x",
        "y": "normalised centre y",
        "cells": "standard cells fully inside",
        "pins": "pins inside",
        "clkpins": "clock pins inside",
        "lnets": "local nets",
        "lpins": "pins on local nets",
        "ndrpins": "pins with non-default rules",
        "pinspace": "mean pair-wise Manhattan pin spacing",
        "blkg": "blockage area fraction",
        "cellarea": "standard-cell area fraction",
    }
    return f"{descriptions[stem]} in window cell {suffix}"
