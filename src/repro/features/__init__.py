"""Feature subsystem: the paper's 387 features, naming and dataset containers."""

from .dataset import DesignDataset, SuiteDataset
from .extractor import FeatureExtractor, extract_features
from .names import (
    CONGESTION_KINDS,
    FEATURE_METAL_LAYERS,
    FEATURE_VIA_LAYERS,
    NUM_FEATURES,
    PLACEMENT_STEMS,
    describe_feature,
    feature_index,
    feature_names,
)

__all__ = [
    "DesignDataset",
    "SuiteDataset",
    "FeatureExtractor",
    "extract_features",
    "CONGESTION_KINDS",
    "FEATURE_METAL_LAYERS",
    "FEATURE_VIA_LAYERS",
    "NUM_FEATURES",
    "PLACEMENT_STEMS",
    "describe_feature",
    "feature_index",
    "feature_names",
]
