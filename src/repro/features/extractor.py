"""Vectorised extraction of the 387 features for every g-cell of a design.

One sample per g-cell, in the grid's raster order.  Each feature column is
computed as a single shifted-array lookup over the whole grid, so extraction
is O(#features × #g-cells) in numpy rather than a nested Python loop.

Padding follows the paper's footnote 2: window cells outside the die are
*blank* — zero counts, zero congestion.  For the two coordinate features we
still emit the would-be normalised coordinate of the padded cell (it can
fall slightly outside [0, 1]); this keeps the coordinate features smooth at
the die boundary.
"""

from __future__ import annotations

import numpy as np

from ..layout.grid import (
    GCellGrid,
    WINDOW_EDGES,
    WINDOW_OFFSETS,
    WINDOW_POSITIONS,
)
from ..layout.placemap import PlacementMaps
from ..route.graph import RoutingGrid
from .names import (
    CONGESTION_KINDS,
    FEATURE_METAL_LAYERS,
    FEATURE_VIA_LAYERS,
    NUM_FEATURES,
    PLACEMENT_STEMS,
    feature_names,
)


def _shifted_lookup(
    arr: np.ndarray, dx: int, dy: int, out_shape: tuple[int, int]
) -> np.ndarray:
    """``out[ix, iy] = arr[ix+dx, iy+dy]`` with zero padding out of range.

    ``arr`` may have a different shape than ``out_shape`` (edge arrays are
    one short along their axis); indices outside ``arr`` yield 0.
    """
    nx, ny = out_shape
    ax, ay = arr.shape
    out = np.zeros(out_shape, dtype=np.float64)
    # destination range whose source indices are valid
    x0 = max(0, -dx)
    x1 = min(nx, ax - dx)
    y0 = max(0, -dy)
    y1 = min(ny, ay - dy)
    if x0 < x1 and y0 < y1:
        out[x0:x1, y0:y1] = arr[x0 + dx : x1 + dx, y0 + dy : y1 + dy]
    return out


def _raster(arr: np.ndarray) -> np.ndarray:
    """Flatten an (nx, ny) array to raster (iy-major) sample order."""
    return arr.T.reshape(-1)


class FeatureExtractor:
    """Builds the (num_gcells, 387) feature matrix for one routed design."""

    def __init__(
        self,
        grid: GCellGrid,
        rgrid: RoutingGrid,
        placemaps: PlacementMaps,
    ):
        self.grid = grid
        self.rgrid = rgrid
        self.placemaps = placemaps
        self.names = feature_names()

    # -- public API ----------------------------------------------------------------

    def extract(self) -> np.ndarray:
        """The full feature matrix, columns in :func:`feature_names` order."""
        nx, ny = self.grid.nx, self.grid.ny
        columns: list[np.ndarray] = []
        columns.extend(self._placement_columns())
        columns.extend(self._edge_congestion_columns())
        columns.extend(self._via_congestion_columns())
        X = np.column_stack(columns)
        if X.shape != (nx * ny, NUM_FEATURES):
            raise AssertionError(
                f"feature matrix shape {X.shape} != ({nx * ny}, {NUM_FEATURES})"
            )
        return X

    # -- placement block ---------------------------------------------------------------

    def _placement_stat_arrays(self) -> dict[str, np.ndarray]:
        pm = self.placemaps
        grid = self.grid
        # normalised centre coordinates of every in-die g-cell
        xs = (np.arange(grid.nx) + 0.5) / grid.nx
        ys = (np.arange(grid.ny) + 0.5) / grid.ny
        return {
            "x": np.repeat(xs[:, None], grid.ny, axis=1),
            "y": np.repeat(ys[None, :], grid.nx, axis=0),
            "cells": pm.num_cells.astype(np.float64),
            "pins": pm.num_pins.astype(np.float64),
            "clkpins": pm.num_clock_pins.astype(np.float64),
            "lnets": pm.num_local_nets.astype(np.float64),
            "lpins": pm.num_local_net_pins.astype(np.float64),
            "ndrpins": pm.num_ndr_pins.astype(np.float64),
            "pinspace": pm.pin_spacing,
            "blkg": pm.blockage_frac,
            "cellarea": pm.cell_area_frac,
        }

    def _placement_columns(self) -> list[np.ndarray]:
        grid = self.grid
        shape = (grid.nx, grid.ny)
        stats = self._placement_stat_arrays()
        cols: list[np.ndarray] = []
        for pos in WINDOW_POSITIONS:
            dx, dy = WINDOW_OFFSETS[pos]
            for stem in PLACEMENT_STEMS:
                if stem == "x":
                    # would-be coordinate of the window cell (may pad off-die)
                    xs = (np.arange(grid.nx) + dx + 0.5) / grid.nx
                    col = np.repeat(xs[:, None], grid.ny, axis=1)
                elif stem == "y":
                    ys = (np.arange(grid.ny) + dy + 0.5) / grid.ny
                    col = np.repeat(ys[None, :], grid.nx, axis=0)
                else:
                    col = _shifted_lookup(stats[stem], dx, dy, shape)
                cols.append(_raster(col))
        return cols

    # -- congestion blocks --------------------------------------------------------------

    def _edge_congestion_columns(self) -> list[np.ndarray]:
        grid = self.grid
        shape = (grid.nx, grid.ny)
        rgrid = self.rgrid
        zeros = np.zeros(grid.num_cells)
        cols: list[np.ndarray] = []
        for m in FEATURE_METAL_LAYERS:
            layer = rgrid.tech.metal(m)
            layer_dir = "H" if layer.is_horizontal else "V"
            cap_arr = rgrid.metal_cap[m].astype(np.float64)
            load_arr = rgrid.metal_load[m]
            for edge in WINDOW_EDGES:
                if edge.orientation != layer_dir:
                    # direction mismatch: no tracks of this layer cross the
                    # edge; all three features are structurally zero
                    for _ in CONGESTION_KINDS:
                        cols.append(zeros)
                    continue
                if edge.orientation == "H":
                    # edge between (dxa, dy) and (dxa+1, dy): h-edge index
                    # (ix + dxa, iy + dy)
                    dx, dy = edge.cell_a
                else:
                    # v-edge index (ix + dx, iy + dya)
                    dx, dy = edge.cell_a
                cap = _shifted_lookup(cap_arr, dx, dy, shape)
                load = _shifted_lookup(load_arr, dx, dy, shape)
                cols.append(_raster(cap))
                cols.append(_raster(load))
                cols.append(_raster(cap - load))
        return cols

    def _via_congestion_columns(self) -> list[np.ndarray]:
        grid = self.grid
        shape = (grid.nx, grid.ny)
        rgrid = self.rgrid
        cols: list[np.ndarray] = []
        for v in FEATURE_VIA_LAYERS:
            cap_arr = rgrid.via_cap[v].astype(np.float64)
            load_arr = rgrid.via_load[v]
            for pos in WINDOW_POSITIONS:
                dx, dy = WINDOW_OFFSETS[pos]
                cap = _shifted_lookup(cap_arr, dx, dy, shape)
                load = _shifted_lookup(load_arr, dx, dy, shape)
                cols.append(_raster(cap))
                cols.append(_raster(load))
                cols.append(_raster(cap - load))
        return cols


def extract_features(
    grid: GCellGrid, rgrid: RoutingGrid, placemaps: PlacementMaps
) -> np.ndarray:
    """Convenience wrapper around :class:`FeatureExtractor`."""
    return FeatureExtractor(grid, rgrid, placemaps).extract()
