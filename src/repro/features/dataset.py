"""Dataset containers: per-design feature matrices, labels and grouping.

The experiment protocol of the paper is *design-grouped*: the 14 designs are
split into 5 fixed groups; testing on a design excludes its whole group from
training.  These containers keep the design and group identity attached to
every sample so :mod:`repro.core.experiment` can enforce that protocol.

Datasets cache to a single compressed ``.npz`` per suite, so benchmarks can
re-run without re-routing all 14 designs.
"""

from __future__ import annotations

import io
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np
from numpy.lib import format as npy_format

from .names import NUM_FEATURES

#: Fixed zip-entry timestamp (the DOS epoch).  ``np.savez`` stamps each
#: archive member with wall-clock time, so two runs producing identical
#: arrays still yield different bytes; suite caches must instead be
#: byte-identical whenever their contents are (serial vs. parallel builds,
#: checksum-stable artefacts), so we write the archive ourselves.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def _write_npz_deterministic(path: Path, payload: dict[str, np.ndarray]) -> None:
    """Write an ``np.load``-compatible .npz whose bytes depend only on data."""
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, arr in payload.items():
            buf = io.BytesIO()
            npy_format.write_array(buf, np.asanyarray(arr), allow_pickle=False)
            info = zipfile.ZipInfo(f"{name}.npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o644 << 16
            zf.writestr(info, buf.getvalue())


@dataclass
class DesignDataset:
    """All samples of one design."""

    name: str
    group: int  # 0-based Table I group index
    X: np.ndarray  # (n, 387) float64
    y: np.ndarray  # (n,) int8
    grid_nx: int
    grid_ny: int

    def __post_init__(self) -> None:
        if self.X.ndim != 2 or self.X.shape[1] != NUM_FEATURES:
            raise ValueError(
                f"{self.name}: X shape {self.X.shape} != (n, {NUM_FEATURES})"
            )
        if self.y.shape != (self.X.shape[0],):
            raise ValueError(f"{self.name}: y shape {self.y.shape} mismatches X")
        if self.X.shape[0] != self.grid_nx * self.grid_ny:
            raise ValueError(f"{self.name}: sample count != grid size")

    @property
    def num_samples(self) -> int:
        return self.X.shape[0]

    @property
    def num_hotspots(self) -> int:
        return int(self.y.sum())

    def sample_index(self, ix: int, iy: int) -> int:
        """Row index of the g-cell (ix, iy) (raster order)."""
        if not (0 <= ix < self.grid_nx and 0 <= iy < self.grid_ny):
            raise IndexError(f"({ix}, {iy}) outside {self.grid_nx}x{self.grid_ny}")
        return iy * self.grid_nx + ix

    def cell_of_sample(self, row: int) -> tuple[int, int]:
        return (row % self.grid_nx, row // self.grid_nx)


@dataclass
class SuiteDataset:
    """The full suite: a list of per-design datasets in Table I order."""

    designs: list[DesignDataset]

    def __post_init__(self) -> None:
        names = [d.name for d in self.designs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate design names in suite")

    # -- queries -----------------------------------------------------------------

    def by_name(self, name: str) -> DesignDataset:
        for d in self.designs:
            if d.name == name:
                return d
        raise KeyError(f"design {name!r} not in suite")

    @property
    def names(self) -> list[str]:
        return [d.name for d in self.designs]

    @property
    def num_samples(self) -> int:
        return sum(d.num_samples for d in self.designs)

    def stacked(
        self, exclude_groups: tuple[int, ...] = ()
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(X, y, groups) over all designs not in ``exclude_groups``.

        ``groups`` carries each sample's 0-based group index, the key the
        grouped cross-validation splits on.
        """
        keep = [d for d in self.designs if d.group not in exclude_groups]
        if not keep:
            raise ValueError("all groups excluded")
        X = np.vstack([d.X for d in keep])
        y = np.concatenate([d.y for d in keep]).astype(np.int8)
        groups = np.concatenate(
            [np.full(d.num_samples, d.group, dtype=np.int32) for d in keep]
        )
        return X, y, groups

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the whole suite to one compressed .npz file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload: dict[str, np.ndarray] = {
            "names": np.array(self.names),
            "groups": np.array([d.group for d in self.designs], dtype=np.int32),
            "grids": np.array(
                [[d.grid_nx, d.grid_ny] for d in self.designs], dtype=np.int32
            ),
        }
        for d in self.designs:
            payload[f"X_{d.name}"] = d.X.astype(np.float32)  # compact on disk
            payload[f"y_{d.name}"] = d.y
        _write_npz_deterministic(path, payload)
        return path

    @staticmethod
    def load(path: str | Path) -> "SuiteDataset":
        with np.load(path, allow_pickle=False) as data:
            names = [str(n) for n in data["names"]]
            groups = data["groups"]
            grids = data["grids"]
            designs = [
                DesignDataset(
                    name=name,
                    group=int(groups[i]),
                    X=data[f"X_{name}"].astype(np.float64),
                    y=data[f"y_{name}"].astype(np.int8),
                    grid_nx=int(grids[i][0]),
                    grid_ny=int(grids[i][1]),
                )
                for i, name in enumerate(names)
            ]
        return SuiteDataset(designs=designs)
