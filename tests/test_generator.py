"""Tests for the synthetic design generator and the 14-design suite."""

import numpy as np
import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.bench.suite import (
    GROUPS,
    SUITE_ORDER,
    SUITE_RECIPES,
    group_index_of,
    group_of,
    suite_recipes,
)


class TestGenerator:
    def test_deterministic(self):
        r = DesignRecipe(name="det", grid_nx=10, grid_ny=10, seed=5)
        d1 = generate_design(r)
        d2 = generate_design(r)
        assert d1.num_cells == d2.num_cells
        assert d1.num_nets == d2.num_nets
        assert [n.degree for n in d1.nets] == [n.degree for n in d2.nets]

    def test_seed_changes_netlist(self):
        r1 = DesignRecipe(name="s1", grid_nx=10, grid_ny=10, seed=1)
        r2 = DesignRecipe(name="s2", grid_nx=10, grid_ny=10, seed=2)
        d1, d2 = generate_design(r1), generate_design(r2)
        degrees1 = [n.degree for n in d1.nets][:50]
        degrees2 = [n.degree for n in d2.nets][:50]
        assert degrees1 != degrees2

    def test_utilization_controls_cell_count(self):
        lo = generate_design(DesignRecipe(name="lo", grid_nx=12, grid_ny=12, utilization=0.4))
        hi = generate_design(DesignRecipe(name="hi", grid_nx=12, grid_ny=12, utilization=0.7))
        assert hi.num_cells > lo.num_cells * 1.4

    def test_cell_area_matches_utilization(self):
        r = DesignRecipe(name="u", grid_nx=12, grid_ny=12, utilization=0.6)
        d = generate_design(r)
        assert d.total_cell_area() / d.die.area == pytest.approx(0.6, rel=0.1)

    def test_macros_disjoint_and_inside(self):
        r = DesignRecipe(
            name="m", grid_nx=16, grid_ny=16, num_macros=4, macro_area_frac=0.15
        )
        d = generate_design(r)
        assert len(d.macros) == 4
        for i, a in enumerate(d.macros):
            assert d.die.contains_rect(a.bbox)
            for b in d.macros[i + 1 :]:
                assert not a.bbox.overlaps(b.bbox)

    def test_ndr_fraction_applied(self):
        r = DesignRecipe(name="ndr", grid_nx=14, grid_ny=14, ndr_frac=0.2, seed=3)
        d = generate_design(r)
        frac = sum(1 for n in d.signal_nets() if n.ndr) / len(d.signal_nets())
        assert 0.1 < frac < 0.3

    def test_clock_nets_present(self):
        r = DesignRecipe(name="clk", grid_nx=12, grid_ny=12, num_clock_nets=3)
        d = generate_design(r)
        clocks = [n for n in d.nets if n.is_clock]
        assert len(clocks) == 3
        assert all(p.is_clock for n in clocks for p in n.pins)

    def test_net_degrees_at_least_two(self):
        d = generate_design(DesignRecipe(name="deg", grid_nx=12, grid_ny=12))
        assert all(n.degree >= 2 for n in d.nets)

    def test_validates(self):
        d = generate_design(DesignRecipe(name="v", grid_nx=10, grid_ny=10))
        d.validate()  # should not raise


class TestSuite:
    def test_fourteen_designs_five_groups(self):
        assert len(SUITE_ORDER) == 14
        assert len(GROUPS) == 5
        assert set(SUITE_ORDER) == set(SUITE_RECIPES)

    def test_group_lookup(self):
        assert group_of("des_perf_1") == "Group 4"
        assert group_index_of("fft_b") == 1
        with pytest.raises(KeyError):
            group_of("nonexistent")

    def test_recipe_names_match_keys(self):
        for name, recipe in SUITE_RECIPES.items():
            assert recipe.name == name

    def test_macro_counts_match_table1(self):
        # Table I macro column of the paper
        expected = {
            "des_perf_b": 0, "fft_2": 0, "mult_1": 0, "mult_2": 0,
            "fft_b": 6, "mult_a": 5, "mult_b": 7, "bridge32_a": 4,
            "des_perf_1": 0, "mult_c": 7, "des_perf_a": 4, "fft_1": 0,
            "fft_a": 6, "bridge32_b": 6,
        }
        for name, macros in expected.items():
            assert SUITE_RECIPES[name].num_macros == macros

    def test_scaled_recipes_shrink(self):
        full = suite_recipes(1.0)
        small = suite_recipes(0.5)
        for f, s in zip(full, small):
            assert s.grid_nx <= f.grid_nx
            assert s.grid_nx >= 6

    def test_relative_sizes_match_paper_order(self):
        # mult_a/b/c are the big dies; fft_1 the smallest
        sizes = {n: SUITE_RECIPES[n].grid_nx * SUITE_RECIPES[n].grid_ny for n in SUITE_ORDER}
        assert sizes["fft_1"] == min(sizes.values())
        assert sizes["mult_c"] == max(sizes.values())
