"""Tests for the DRC checker, the track-stress model and the simulator."""

import numpy as np
import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.drc.checker import DRCReport, Violation, ViolationType
from repro.drc.detailed import DRCSimConfig, simulate_drc
from repro.drc.labels import hotspot_cells, hotspot_labels
from repro.drc.tracks import TrackStressModel
from repro.layout.geometry import Rect
from repro.layout.grid import GCellGrid
from repro.layout.placemap import PlacementMaps
from repro.layout.technology import make_ispd2015_like_technology
from repro.place import place_design
from repro.route import route_design


def _toy_grid():
    tech = make_ispd2015_like_technology()
    g = tech.gcell_size
    die = Rect(0, 0, 4 * g, 4 * g)
    return GCellGrid.for_design_die(die, tech), g


class TestChecker:
    def test_hotspot_rule_single_cell(self):
        grid, g = _toy_grid()
        v = Violation(ViolationType.SHORT, "M3", Rect(10, 10, 20, 20))
        report = DRCReport("toy", [v])
        mask = report.hotspot_mask(grid)
        assert mask[0, 0]
        assert mask.sum() == 1

    def test_hotspot_rule_straddling_box(self):
        grid, g = _toy_grid()
        v = Violation(ViolationType.EOL, "M4", Rect(g - 5, 10, g + 5, 20))
        report = DRCReport("toy", [v])
        mask = report.hotspot_mask(grid)
        assert mask[0, 0] and mask[1, 0]
        assert mask.sum() == 2

    def test_touching_boundary_counts_both(self):
        # paper rule: overlap includes touching
        grid, g = _toy_grid()
        v = Violation(ViolationType.SPACING, "M2", Rect(g, 10, g + 8, 20))
        mask = DRCReport("toy", [v]).hotspot_mask(grid)
        assert mask[0, 0] and mask[1, 0]

    def test_counts_by_type_and_layer(self):
        grid, g = _toy_grid()
        vs = [
            Violation(ViolationType.SHORT, "M3", Rect(0, 0, 5, 5)),
            Violation(ViolationType.SHORT, "M4", Rect(0, 0, 5, 5)),
            Violation(ViolationType.EOL, "M3", Rect(0, 0, 5, 5)),
        ]
        report = DRCReport("toy", vs)
        assert report.counts_by_type()[ViolationType.SHORT] == 2
        assert report.counts_by_layer()["M3"] == 2

    def test_describe_cell(self):
        grid, g = _toy_grid()
        v = Violation(ViolationType.SHORT, "M3", Rect(10, 10, 20, 20))
        report = DRCReport("toy", [v])
        text = report.describe_cell(grid, (0, 0))
        assert "short" in text and "M3" in text
        assert "no DRC errors" in report.describe_cell(grid, (3, 3))

    def test_labels_match_mask(self, small_flow):
        report = small_flow.drc_report
        grid = small_flow.grid
        labels = hotspot_labels(report, grid)
        mask = report.hotspot_mask(grid)
        assert labels.sum() == mask.sum()
        for ix, iy in hotspot_cells(report, grid):
            assert mask[ix, iy]
            assert labels[grid.flat_index(ix, iy)] == 1


class TestStressModel:
    def test_shapes_and_nonneg(self, small_flow):
        model = TrackStressModel(small_flow.routing.rgrid, small_flow.placemaps)
        stress = model.layer_stress()
        vu = model.via_utilization()
        shape = (small_flow.grid.nx, small_flow.grid.ny)
        for m in range(1, 6):
            assert stress[m].shape == shape
            assert (stress[m] >= 0).all()
        for v in range(1, 5):
            assert vu[v].shape == shape
            assert (vu[v] >= 0).all()

    def test_stress_tracks_congestion(self, small_flow):
        """Cells next to heavily loaded edges have higher stress."""
        model = TrackStressModel(small_flow.routing.rgrid, small_flow.placemaps)
        stress = model.layer_stress()
        rg = small_flow.routing.rgrid
        m = 3  # a horizontal GR layer
        load = rg.metal_load[m]
        if load.max() == 0:
            pytest.skip("design routed with zero M3 load")
        hot_edge = np.unravel_index(np.argmax(load), load.shape)
        cell = (hot_edge[0], hot_edge[1])
        assert stress[m][cell] > np.median(stress[m])


class TestSimulator:
    def test_deterministic_per_design_name(self, small_flow):
        r1 = simulate_drc(
            small_flow.design, small_flow.routing.rgrid, small_flow.placemaps
        )
        r2 = simulate_drc(
            small_flow.design, small_flow.routing.rgrid, small_flow.placemaps
        )
        assert r1.num_violations == r2.num_violations
        assert [v.bbox.as_tuple() for v in r1.violations] == [
            v.bbox.as_tuple() for v in r2.violations
        ]

    def test_boxes_inside_die(self, small_flow):
        for v in small_flow.drc_report.violations:
            assert small_flow.grid.die.contains_rect(v.bbox)

    def test_rates_scale_monotonically(self, small_flow):
        """Doubling the rate constants cannot reduce expected violations."""
        base_cfg = DRCSimConfig()
        hot_cfg = DRCSimConfig(
            short_rate=base_cfg.short_rate * 4,
            spacing_rate=base_cfg.spacing_rate * 4,
            eol_rate=base_cfg.eol_rate * 4,
            pin_short_rate=base_cfg.pin_short_rate * 4,
            short_threshold=base_cfg.short_threshold * 0.7,
            spacing_threshold=base_cfg.spacing_threshold * 0.7,
            eol_threshold=base_cfg.eol_threshold * 0.7,
            pin_count_threshold=base_cfg.pin_count_threshold * 0.7,
        )
        base = simulate_drc(
            small_flow.design, small_flow.routing.rgrid, small_flow.placemaps, base_cfg
        )
        hot = simulate_drc(
            small_flow.design, small_flow.routing.rgrid, small_flow.placemaps, hot_cfg
        )
        assert hot.num_violations >= base.num_violations

    def test_violation_layers_are_gr_layers(self, small_flow):
        layers = set(small_flow.drc_report.counts_by_layer())
        assert layers <= {"M2", "M3", "M4", "M5"}

    def test_congested_design_has_more_hotspots(self):
        def run(util, boost, name):
            recipe = DesignRecipe(
                name=name, grid_nx=10, grid_ny=10, utilization=util,
                dense_net_boost=boost, dense_cluster_frac=0.3, seed=31,
            )
            d = generate_design(recipe)
            place_design(d)
            grid = GCellGrid.for_design_die(d.die, d.technology)
            rr = route_design(d, grid)
            pm = PlacementMaps(d, grid)
            return simulate_drc(d, rr.rgrid, pm).num_hotspots(grid)

        cold = run(0.4, 1.1, "cold_mono")
        hot = run(0.72, 2.2, "hot_mono")
        assert hot > cold
