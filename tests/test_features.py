"""Tests for feature naming and the 387-feature extractor."""

import numpy as np
import pytest

from repro.features.names import (
    NUM_FEATURES,
    describe_feature,
    feature_index,
    feature_names,
)
from repro.layout.grid import WINDOW_EDGES, WINDOW_OFFSETS
from repro.route.congestion import (
    window_cell_via_cap_load,
    window_edge_cap_load,
)


class TestNames:
    def test_exactly_387(self):
        names = feature_names()
        assert len(names) == NUM_FEATURES == 387

    def test_unique(self):
        names = feature_names()
        assert len(set(names)) == len(names)

    def test_block_sizes(self):
        names = feature_names()
        placement = [n for n in names if not n[0] in "ev" or "_" not in n]
        edges = [n for n in names if n.startswith(("ec", "el", "ed"))]
        vias = [n for n in names if n.startswith(("vc", "vl", "vd"))]
        assert len(edges) == 180  # 12 edges x 5 layers x 3 kinds
        assert len(vias) == 108  # 9 cells x 4 layers x 3 kinds
        assert len(names) - len(edges) - len(vias) == 99

    def test_paper_examples_exist(self):
        idx = feature_index()
        # the paper's Fig. 4 features, translated to our convention
        assert "edM4_4V" in idx  # same name as the paper
        assert "edM5_7H" in idx
        assert "vlV2_o" in idx  # paper's v1V2_o (via load, centre cell)
        assert "vlV3_NE" in idx

    def test_index_roundtrip(self):
        names = feature_names()
        idx = feature_index()
        for i in (0, 50, 150, 386):
            assert idx[names[i]] == i

    def test_describe(self):
        assert "margin" in describe_feature("edM4_4V")
        assert "load" in describe_feature("vlV2_N")
        assert "pin spacing" in describe_feature("pinspace_o")
        with pytest.raises(KeyError):
            describe_feature("bogus_x")


class TestExtractor:
    def test_shape_and_finite(self, small_flow):
        assert small_flow.X.shape == (small_flow.grid.num_cells, 387)
        assert np.isfinite(small_flow.X).all()

    def test_raster_order_matches_grid(self, small_flow):
        """Row k of X describes g-cell grid.from_flat_index(k)."""
        X = small_flow.X
        grid = small_flow.grid
        idx = feature_index()
        for flat in (0, 7, grid.num_cells - 1):
            ix, iy = grid.from_flat_index(flat)
            x_norm, y_norm = grid.normalized_center(ix, iy)
            assert X[flat, idx["x_o"]] == pytest.approx(x_norm)
            assert X[flat, idx["y_o"]] == pytest.approx(y_norm)

    def test_placement_features_match_placemaps(self, small_flow):
        X = small_flow.X
        grid = small_flow.grid
        pm = small_flow.placemaps
        idx = feature_index()
        for cell in [(2, 2), (5, 7), (0, 0)]:
            row = grid.flat_index(*cell)
            assert X[row, idx["pins_o"]] == pm.num_pins[cell]
            assert X[row, idx["cells_o"]] == pm.num_cells[cell]
            assert X[row, idx["lnets_o"]] == pm.num_local_nets[cell]
            assert X[row, idx["blkg_o"]] == pytest.approx(pm.blockage_frac[cell])

    def test_neighbor_shift_correct(self, small_flow):
        """pins_E of cell (x,y) equals pins_o of cell (x+1,y)."""
        X = small_flow.X
        grid = small_flow.grid
        idx = feature_index()
        for cell in [(2, 2), (4, 5)]:
            row = grid.flat_index(*cell)
            east = grid.flat_index(cell[0] + 1, cell[1])
            assert X[row, idx["pins_E"]] == X[east, idx["pins_o"]]
            north = grid.flat_index(cell[0], cell[1] + 1)
            assert X[row, idx["cells_N"]] == X[north, idx["cells_o"]]

    def test_boundary_padding_zero(self, small_flow):
        """Window cells off-die contribute zero counts."""
        X = small_flow.X
        grid = small_flow.grid
        idx = feature_index()
        corner = grid.flat_index(0, 0)
        for stem in ("cells", "pins", "lnets", "vlV1", "vcV1"):
            for pos in ("SW", "S", "W"):
                assert X[corner, idx[f"{stem}_{pos}"]] == 0.0

    def test_congestion_features_match_direct_lookup(self, small_flow):
        X = small_flow.X
        grid = small_flow.grid
        rgrid = small_flow.routing.rgrid
        idx = feature_index()
        cell = (4, 4)
        row = grid.flat_index(*cell)
        for edge in WINDOW_EDGES:
            for m in (2, 3, 4, 5):
                cap, load = window_edge_cap_load(rgrid, cell, edge, m)
                assert X[row, idx[f"ecM{m}_{edge.label}"]] == pytest.approx(cap)
                assert X[row, idx[f"elM{m}_{edge.label}"]] == pytest.approx(load)
                assert X[row, idx[f"edM{m}_{edge.label}"]] == pytest.approx(cap - load)

    def test_via_features_match_direct_lookup(self, small_flow):
        X = small_flow.X
        grid = small_flow.grid
        rgrid = small_flow.routing.rgrid
        idx = feature_index()
        cell = (5, 5)
        row = grid.flat_index(*cell)
        for pos, off in WINDOW_OFFSETS.items():
            for v in (1, 2, 3, 4):
                cap, load = window_cell_via_cap_load(rgrid, cell, off, v)
                assert X[row, idx[f"vcV{v}_{pos}"]] == pytest.approx(cap)
                assert X[row, idx[f"vlV{v}_{pos}"]] == pytest.approx(load)
                assert X[row, idx[f"vdV{v}_{pos}"]] == pytest.approx(cap - load)

    def test_direction_mismatched_edges_zero(self, small_flow):
        """V-oriented edges carry no M3/M5 (horizontal) congestion."""
        X = small_flow.X
        idx = feature_index()
        v_edges = [e for e in WINDOW_EDGES if e.orientation == "V"]
        for e in v_edges:
            assert (X[:, idx[f"ecM3_{e.label}"]] == 0).all()
            assert (X[:, idx[f"elM5_{e.label}"]] == 0).all()

    def test_m1_congestion_zero(self, small_flow):
        """M1 is not used by GR: its features are structurally zero."""
        X = small_flow.X
        idx = feature_index()
        h_edges = [e for e in WINDOW_EDGES if e.orientation == "H"]
        for e in h_edges:
            assert (X[:, idx[f"elM1_{e.label}"]] == 0).all()
