"""Tests for the numpy MLP."""

import numpy as np
import pytest

from repro.ml.metrics import auc_roc
from repro.ml.nn import MLPClassifier
from repro.ml.scaling import StandardScaler
from tests.conftest import make_separable


class TestMLP:
    def test_learns_linear_signal(self):
        X, y = make_separable(n=900, seed=50)
        Xte, yte = make_separable(n=400, seed=51)
        sc = StandardScaler().fit(X)
        m = MLPClassifier(hidden_layers=(40,), epochs=30, random_state=0).fit(
            sc.transform(X), y
        )
        assert auc_roc(yte, m.predict_proba(sc.transform(Xte))[:, 1]) > 0.85

    def test_learns_xor(self):
        """A hidden layer must solve what a linear model cannot."""
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(1200, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        m = MLPClassifier(
            hidden_layers=(16,), epochs=80, learning_rate=3e-3,
            early_stopping_patience=None, random_state=0,
        ).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.9

    def test_two_hidden_layers(self):
        X, y = make_separable(n=600, seed=52)
        m = MLPClassifier(hidden_layers=(40, 10), epochs=15, random_state=0).fit(X, y)
        assert len(m.weights_) == 3
        assert m.weights_[0].shape == (X.shape[1], 40)
        assert m.weights_[1].shape == (40, 10)
        assert m.weights_[2].shape == (10, 1)

    def test_num_parameters_matches_architecture(self):
        X, y = make_separable(n=300, n_features=12, seed=53)
        m = MLPClassifier(hidden_layers=(40, 10), epochs=2, random_state=0).fit(X, y)
        expected = (12 * 40 + 40) + (40 * 10 + 10) + (10 * 1 + 1)
        assert m.num_parameters() == expected

    def test_proba_bounds(self):
        X, y = make_separable(n=300, seed=54)
        m = MLPClassifier(epochs=3, random_state=0).fit(X, y)
        p = m.predict_proba(X)
        assert (p >= 0).all() and (p <= 1).all()
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_deterministic(self):
        X, y = make_separable(n=300, seed=55)
        p1 = MLPClassifier(epochs=5, random_state=9).fit(X, y).predict_proba(X)
        p2 = MLPClassifier(epochs=5, random_state=9).fit(X, y).predict_proba(X)
        assert np.array_equal(p1, p2)

    def test_loss_decreases(self):
        X, y = make_separable(n=600, seed=56)
        m = MLPClassifier(
            epochs=20, early_stopping_patience=None, random_state=0
        ).fit(StandardScaler().fit_transform(X), y)
        assert m.loss_curve_[-1] < m.loss_curve_[0]

    def test_early_stopping_cuts_epochs(self):
        X, y = make_separable(n=600, seed=57)
        m = MLPClassifier(
            epochs=200, early_stopping_patience=2, random_state=0
        ).fit(X, y)
        assert len(m.loss_curve_) < 200

    def test_empty_hidden_raises(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden_layers=())

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict_proba(np.zeros((1, 3)))


class TestScalers:
    def test_standard_roundtrip(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5, scale=3, size=(200, 4))
        sc = StandardScaler().fit(X)
        Xs = sc.transform(X)
        assert np.allclose(Xs.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Xs.std(axis=0), 1, atol=1e-9)
        assert np.allclose(sc.inverse_transform(Xs), X)

    def test_standard_constant_feature(self):
        X = np.column_stack([np.full(50, 7.0), np.arange(50.0)])
        Xs = StandardScaler().fit_transform(X)
        assert (Xs[:, 0] == 0).all()

    def test_minmax_range(self):
        from repro.ml.scaling import MinMaxScaler

        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3)) * 10
        Xs = MinMaxScaler().fit_transform(X)
        assert Xs.min() == pytest.approx(0.0)
        assert Xs.max() == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))
