"""Tests for the evaluation metrics (ROC/PR/A_prc/TPR*/Prec*)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.metrics import (
    auc_roc,
    average_precision,
    confusion_at_threshold,
    evaluate_scores,
    operating_point_at_fpr,
    pr_curve,
    roc_curve,
)


Y = np.array([0, 0, 1, 1])
S = np.array([0.1, 0.4, 0.35, 0.8])


class TestROC:
    def test_known_auc(self):
        # classic sklearn doc example: AUC = 0.75
        assert auc_roc(Y, S) == pytest.approx(0.75)

    def test_perfect(self):
        assert auc_roc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == pytest.approx(1.0)

    def test_inverted(self):
        assert auc_roc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == pytest.approx(0.0)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            auc_roc([1, 1, 1], [0.1, 0.2, 0.3])

    def test_curve_monotone(self):
        fpr, tpr, thr = roc_curve(Y, S)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()
        assert fpr[0] == 0 and tpr[0] == 0
        assert fpr[-1] == 1 and tpr[-1] == 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_auc_of_random_scores_near_half(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=500)
        if y.sum() in (0, 500):
            return
        s = rng.normal(size=500)
        assert 0.3 < auc_roc(y, s) < 0.7


class TestPR:
    def test_known_average_precision(self):
        # sklearn doc example: AP = 0.8333...
        assert average_precision(Y, S) == pytest.approx(0.8333333, abs=1e-6)

    def test_perfect_ap_is_one(self):
        assert average_precision([0, 1, 1], [0.1, 0.8, 0.9]) == pytest.approx(1.0)

    def test_constant_scores_ap_equals_prevalence(self):
        y = np.array([0] * 90 + [1] * 10)
        s = np.zeros(100)
        assert average_precision(y, s) == pytest.approx(0.1)

    def test_no_positives_raises(self):
        with pytest.raises(ValueError):
            average_precision([0, 0], [0.1, 0.2])

    def test_recall_reaches_one(self):
        precision, recall, _ = pr_curve(Y, S)
        assert recall[-1] == pytest.approx(1.0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_ap_bounds(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=200)
        if y.sum() == 0:
            return
        s = rng.normal(size=200)
        ap = average_precision(y, s)
        assert 0.0 <= ap <= 1.0

    @given(st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_score_shift_invariance(self, seed):
        """AP depends only on the ordering of scores."""
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=100)
        if y.sum() in (0, 100):
            return
        s = rng.normal(size=100)
        assert average_precision(y, s) == pytest.approx(
            average_precision(y, 10.0 + 2.0 * s)
        )


class TestOperatingPoint:
    def test_fpr_budget_respected(self):
        rng = np.random.default_rng(5)
        y = (rng.random(2000) < 0.05).astype(int)
        s = y * 0.5 + rng.normal(scale=0.3, size=2000)
        op = operating_point_at_fpr(y, s, 0.005)
        assert op.fpr <= 0.005

    def test_perfect_classifier(self):
        y = np.array([0] * 400 + [1] * 5)
        s = np.concatenate([np.linspace(0, 0.4, 400), np.full(5, 0.9)])
        op = operating_point_at_fpr(y, s, 0.005)
        # the operating point maximises recall within the FPR budget, so it
        # admits up to 0.5% of negatives (2 of 400) as false positives
        assert op.tpr == 1.0
        assert op.fp <= 2
        assert op.precision >= 5 / 7

    def test_confusion_consistency(self):
        op = operating_point_at_fpr(Y, S, 0.5)
        tp, fp, fn, tn = confusion_at_threshold(Y, S, op.threshold)
        assert (tp, fp, fn, tn) == (op.tp, op.fp, op.fn, op.tn)

    def test_counts_sum(self):
        op = operating_point_at_fpr(Y, S, 0.25)
        assert op.tp + op.fp + op.fn + op.tn == len(Y)


class TestEvaluateScores:
    def test_bundle(self):
        r = evaluate_scores(Y, S, target_fpr=0.5)
        assert r.num_samples == 4
        assert r.num_positives == 2
        assert 0 <= r.tpr_star <= 1
        assert 0 <= r.a_prc <= 1
        assert "0." in r.format_row()

    def test_better_model_scores_higher(self):
        rng = np.random.default_rng(0)
        y = (rng.random(1000) < 0.1).astype(int)
        good = y + rng.normal(scale=0.3, size=1000)
        bad = y + rng.normal(scale=3.0, size=1000)
        rg = evaluate_scores(y, good)
        rb = evaluate_scores(y, bad)
        assert rg.a_prc > rb.a_prc
        assert rg.a_roc > rb.a_roc
