"""Property-based tests for the feature extractor's shift machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.features.extractor import _raster, _shifted_lookup


class TestShiftedLookup:
    @given(
        st.integers(2, 9), st.integers(2, 9),
        st.integers(-2, 2), st.integers(-2, 2),
        st.integers(0, 10_000),
    )
    @settings(max_examples=80)
    def test_matches_naive(self, nx, ny, dx, dy, seed):
        rng = np.random.default_rng(seed)
        arr = rng.normal(size=(nx, ny))
        out = _shifted_lookup(arr, dx, dy, (nx, ny))
        for ix in range(nx):
            for iy in range(ny):
                sx, sy = ix + dx, iy + dy
                expected = arr[sx, sy] if 0 <= sx < nx and 0 <= sy < ny else 0.0
                assert out[ix, iy] == expected

    @given(st.integers(-2, 2), st.integers(-2, 2), st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_smaller_source_array(self, dx, dy, seed):
        """Edge arrays are one short along an axis — padding must kick in."""
        rng = np.random.default_rng(seed)
        arr = rng.normal(size=(5, 6))  # source smaller than output (6, 6)
        out = _shifted_lookup(arr, dx, dy, (6, 6))
        for ix in range(6):
            for iy in range(6):
                sx, sy = ix + dx, iy + dy
                expected = arr[sx, sy] if 0 <= sx < 5 and 0 <= sy < 6 else 0.0
                assert out[ix, iy] == expected

    def test_zero_shift_identity(self):
        arr = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(_shifted_lookup(arr, 0, 0, (3, 4)), arr)

    def test_shift_off_grid_all_zero(self):
        arr = np.ones((3, 3))
        assert (_shifted_lookup(arr, 5, 0, (3, 3)) == 0).all()


class TestRaster:
    def test_raster_order_is_iy_major(self):
        arr = np.array([[1, 4], [2, 5], [3, 6]])  # arr[ix, iy]
        flat = _raster(arr)
        # raster: iy=0 row first (ix=0..2), then iy=1
        assert flat.tolist() == [1, 2, 3, 4, 5, 6]

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=30)
    def test_raster_matches_flat_index(self, nx, ny, seed):
        rng = np.random.default_rng(seed)
        arr = rng.normal(size=(nx, ny))
        flat = _raster(arr)
        for ix in range(nx):
            for iy in range(ny):
                assert flat[iy * nx + ix] == arr[ix, iy]
