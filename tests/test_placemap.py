"""Tests for per-g-cell placement statistics."""

import numpy as np
import pytest

from repro.layout.geometry import Point, Rect
from repro.layout.grid import GCellGrid
from repro.layout.netlist import Design
from repro.layout.placemap import PlacementMaps
from repro.layout.technology import make_ispd2015_like_technology


@pytest.fixture()
def setup():
    tech = make_ispd2015_like_technology()
    g = tech.gcell_size
    design = Design(name="pm", technology=tech, die=Rect(0, 0, 4 * g, 4 * g))
    grid = GCellGrid.for_design_die(design.die, tech)
    return design, grid, g


class TestCounts:
    def test_unplaced_raises(self, setup):
        design, grid, g = setup
        design.add_cell("c", 40, 120)
        with pytest.raises(ValueError):
            PlacementMaps(design, grid)

    def test_cell_fully_inside_counted_once(self, setup):
        design, grid, g = setup
        c = design.add_cell("c", 40, 120)
        c.position = Point(10, 10)  # inside g-cell (0,0)
        pm = PlacementMaps(design, grid)
        assert pm.num_cells[0, 0] == 1
        assert pm.num_cells.sum() == 1

    def test_straddling_cell_not_fully_inside(self, setup):
        design, grid, g = setup
        c = design.add_cell("c", 40, 120)
        c.position = Point(g - 20, 10)  # straddles cells (0,0)/(1,0)
        pm = PlacementMaps(design, grid)
        assert pm.num_cells.sum() == 0  # "fully inside" in neither
        # but its area is split across both
        assert pm.cell_area_frac[0, 0] > 0
        assert pm.cell_area_frac[1, 0] > 0

    def test_cell_area_fraction_sums_to_total(self, setup):
        design, grid, g = setup
        c = design.add_cell("c", 60, 120)
        c.position = Point(g - 30, g - 60)  # straddles 4 g-cells
        pm = PlacementMaps(design, grid)
        total = pm.cell_area_frac.sum() * g * g
        assert total == pytest.approx(60 * 120)

    def test_pin_counts_and_flags(self, setup):
        design, grid, g = setup
        a = design.add_cell("a", 40, 120)
        b = design.add_cell("b", 40, 120)
        a.position = Point(10, 10)
        b.position = Point(g + 10, 10)
        pa = a.add_pin("p", Point(1, 1))
        pb = b.add_pin("p", Point(1, 1))
        pc = a.add_pin("q", Point(5, 5))
        net = design.add_net("n", ndr="ndr_2w2s")
        net.connect(pa)
        net.connect(pb)
        clk = design.add_net("clk", is_clock=True)
        clk.connect(pc)
        pm = PlacementMaps(design, grid)
        assert pm.num_pins[0, 0] == 2  # pa + pc (connected pins only)
        assert pm.num_pins[1, 0] == 1
        assert pm.num_ndr_pins[0, 0] == 1
        assert pm.num_clock_pins[0, 0] == 1

    def test_unconnected_pins_ignored(self, setup):
        design, grid, g = setup
        a = design.add_cell("a", 40, 120)
        a.position = Point(10, 10)
        a.add_pin("p", Point(1, 1))  # never connected
        pm = PlacementMaps(design, grid)
        assert pm.num_pins.sum() == 0

    def test_local_net_detection(self, setup):
        design, grid, g = setup
        a = design.add_cell("a", 40, 120)
        b = design.add_cell("b", 40, 120)
        a.position = Point(10, 10)
        b.position = Point(100, 10)  # same g-cell (0,0)
        net = design.add_net("n")
        net.connect(a.add_pin("p", Point(1, 1)))
        net.connect(b.add_pin("p", Point(1, 1)))
        pm = PlacementMaps(design, grid)
        assert pm.num_local_nets[0, 0] == 1
        assert pm.num_local_net_pins[0, 0] == 2

    def test_cross_cell_net_not_local(self, setup):
        design, grid, g = setup
        a = design.add_cell("a", 40, 120)
        b = design.add_cell("b", 40, 120)
        a.position = Point(10, 10)
        b.position = Point(g + 10, 10)
        net = design.add_net("n")
        net.connect(a.add_pin("p", Point(1, 1)))
        net.connect(b.add_pin("p", Point(1, 1)))
        pm = PlacementMaps(design, grid)
        assert pm.num_local_nets.sum() == 0

    def test_pin_spacing_matches_manual(self, setup):
        design, grid, g = setup
        a = design.add_cell("a", 100, 120)
        a.position = Point(0, 0)
        p1 = a.add_pin("p1", Point(0, 0))
        p2 = a.add_pin("p2", Point(30, 40))
        net = design.add_net("n")
        net.connect(p1)
        net.connect(p2)
        pm = PlacementMaps(design, grid)
        assert pm.pin_spacing[0, 0] == pytest.approx(70.0)

    def test_blockage_fraction(self, setup):
        design, grid, g = setup
        design.add_macro("m", Rect(0, 0, g, g))  # exactly g-cell (0,0)
        c = design.add_cell("c", 40, 120)
        c.position = Point(2 * g, 2 * g)
        pm = PlacementMaps(design, grid)
        assert pm.blockage_frac[0, 0] == pytest.approx(1.0)
        assert pm.blockage_frac[1, 1] == pytest.approx(0.0)

    def test_all_maps_have_grid_shape(self, small_flow):
        pm = small_flow.placemaps
        shape = (small_flow.grid.nx, small_flow.grid.ny)
        for arr in (
            pm.num_cells,
            pm.num_pins,
            pm.num_clock_pins,
            pm.num_ndr_pins,
            pm.num_local_nets,
            pm.num_local_net_pins,
            pm.pin_spacing,
            pm.blockage_frac,
            pm.cell_area_frac,
        ):
            assert arr.shape == shape

    def test_flow_design_sanity(self, small_flow):
        pm = small_flow.placemaps
        assert pm.num_pins.sum() > 0
        assert pm.num_local_nets.sum() > 0
        assert (pm.cell_area_frac <= 1.2).all()  # legal placement, no pileups
        assert (pm.blockage_frac <= 1.0 + 1e-9).all()
