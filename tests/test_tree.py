"""Tests for the binned CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tree import LEAF, DecisionTreeClassifier
from tests.conftest import make_separable


class TestFitting:
    def test_perfectly_separable_axis(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        t = DecisionTreeClassifier(max_features=None, random_state=0).fit(X, y)
        assert (t.predict(X) == y).all()
        assert t.tree_.n_leaves == 2

    def test_unpruned_fits_training_data(self):
        X, y = make_separable(n=300, seed=1)
        t = DecisionTreeClassifier(max_features=None, random_state=0).fit(X, y)
        assert (t.predict(X) == y).mean() == 1.0

    def test_max_depth_respected(self):
        X, y = make_separable(n=400, seed=2)
        t = DecisionTreeClassifier(max_depth=3, max_features=None, random_state=0).fit(X, y)
        assert t.tree_.max_depth() <= 3

    def test_min_samples_leaf(self):
        X, y = make_separable(n=400, seed=3)
        t = DecisionTreeClassifier(
            min_samples_leaf=20, max_features=None, random_state=0
        ).fit(X, y)
        leaves = t.tree_.children_left == LEAF
        assert (t.tree_.cover[leaves] >= 20 - 1e-9).all()

    def test_pure_node_stops(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        t = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert t.tree_.node_count == 1
        assert t.tree_.value[0] == 1.0

    def test_deterministic_given_seed(self):
        X, y = make_separable(n=300, seed=4)
        t1 = DecisionTreeClassifier(random_state=42).fit(X, y)
        t2 = DecisionTreeClassifier(random_state=42).fit(X, y)
        assert (t1.tree_.feature == t2.tree_.feature).all()
        assert t1.tree_.threshold[0] == t2.tree_.threshold[0]

    def test_sample_weight_zero_excludes(self):
        """Samples with zero weight must not influence the tree."""
        X, y = make_separable(n=200, seed=5)
        X_noise = np.vstack([X, X + 100])  # far-away junk
        y_noise = np.concatenate([y, 1 - y])
        w = np.concatenate([np.ones(200), np.zeros(200)])
        t_clean = DecisionTreeClassifier(max_features=None, random_state=0).fit(X, y)
        t_weighted = DecisionTreeClassifier(max_features=None, random_state=0).fit(
            X_noise, y_noise, sample_weight=w
        )
        assert (t_clean.predict(X) == t_weighted.predict(X)).all()

    def test_weight_scale_invariance(self):
        """Scaling all weights must not change the tree (normalisation)."""
        X, y = make_separable(n=200, seed=6)
        t1 = DecisionTreeClassifier(max_features=None, random_state=0).fit(
            X, y, sample_weight=np.full(200, 1e-5)
        )
        t2 = DecisionTreeClassifier(max_features=None, random_state=0).fit(
            X, y, sample_weight=np.full(200, 1.0)
        )
        assert (t1.tree_.feature == t2.tree_.feature).all()

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_entropy_criterion_works(self):
        X, y = make_separable(n=300, seed=7)
        t = DecisionTreeClassifier(criterion="entropy", max_features=None, random_state=0).fit(X, y)
        assert (t.predict(X) == y).mean() > 0.95

    def test_unknown_criterion_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="mse")


class TestPrediction:
    def test_proba_bounds_and_sum(self):
        X, y = make_separable(n=300, seed=8)
        t = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        p = t.predict_proba(X)
        assert p.shape == (300, 2)
        assert (p >= 0).all() and (p <= 1).all()
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_generalizes_on_separable(self):
        X, y = make_separable(n=800, seed=9)
        Xte, yte = make_separable(n=400, seed=10)
        t = DecisionTreeClassifier(max_depth=6, max_features=None, random_state=0).fit(X, y)
        assert (t.predict(Xte) == yte).mean() > 0.8

    def test_decision_path_lengths(self):
        X, y = make_separable(n=300, seed=11)
        t = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        lengths = t.tree_.decision_path_lengths(X)
        assert (lengths >= 1).all()
        assert (lengths <= 5).all()

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 3)))


class TestTreeArrays:
    def test_structure_consistency(self):
        X, y = make_separable(n=400, seed=12)
        t = DecisionTreeClassifier(random_state=0).fit(X, y).tree_
        for node in range(t.node_count):
            left, right = t.children_left[node], t.children_right[node]
            assert (left == LEAF) == (right == LEAF)
            if left != LEAF:
                assert t.feature[node] >= 0
                assert np.isfinite(t.threshold[node])
                # children partition the parent's cover
                assert t.cover[left] + t.cover[right] == pytest.approx(t.cover[node])
            else:
                assert t.feature[node] == LEAF

    def test_root_value_is_prevalence(self):
        X, y = make_separable(n=500, pos_rate=0.3, seed=13)
        t = DecisionTreeClassifier(random_state=0).fit(X, y).tree_
        assert t.value[0] == pytest.approx(y.mean())

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_values_are_probabilities(self, seed):
        X, y = make_separable(n=150, seed=seed)
        t = DecisionTreeClassifier(max_depth=4, random_state=seed).fit(X, y).tree_
        assert (t.value >= 0).all() and (t.value <= 1).all()
        assert (t.cover > 0).all()
