"""Tests for SHAP interaction values."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.shap.brute import conditional_expectation
from repro.ml.shap.interactions import (
    interaction_values,
    interaction_values_single_tree,
    top_interactions,
)
from repro.ml.shap.tree_explainer import TreeShapExplainer
from repro.ml.tree import DecisionTreeClassifier


def _and_forest(seed: int = 0):
    """A model with a genuine x0-x1 interaction (AND-like target)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(500, 4))
    y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(int)
    # all features at every node: a 4-tree forest under "sqrt" sampling can
    # miss the AND structure in some trees, making the interaction mass a
    # coin flip on the per-node draws rather than a property of the model
    rf = RandomForestClassifier(
        n_estimators=4, max_depth=3, max_features=None, random_state=seed
    ).fit(X, y)
    return rf, X


class TestInteractionValues:
    def test_symmetry(self):
        rf, X = _and_forest()
        mat = interaction_values(rf.trees, X[0], [0, 1, 2, 3])
        assert np.allclose(mat, mat.T)

    def test_matrix_total_matches_value_difference(self):
        """Σ_ij Phi_ij = v(features) − v(∅), exactly (restricted game)."""
        rf, X = _and_forest()
        feats = [0, 1, 2, 3]
        x = X[1]
        mat = interaction_values(rf.trees, x, feats)
        expect = np.mean(
            [
                conditional_expectation(t, x, frozenset(feats))
                - conditional_expectation(t, x, frozenset())
                for t in rf.trees
            ]
        )
        assert mat.sum() == pytest.approx(expect, abs=1e-10)

    def test_row_sums_equal_full_shap_when_all_features_included(self):
        """With the full feature set, row sums are the ordinary SHAP values."""
        rf, X = _and_forest(seed=1)
        x = X[2]
        mat = interaction_values(rf.trees, x, [0, 1, 2, 3])
        phi = TreeShapExplainer(rf.trees, 4).shap_values_single(x)
        assert np.allclose(mat.sum(axis=1), phi, atol=1e-10)

    def test_and_interaction_is_captured(self):
        """The AND structure puts real mass on the (x0, x1) off-diagonal."""
        rf, X = _and_forest(seed=2)
        both_high = X[(X[:, 0] > 0.5) & (X[:, 1] > 0.5)][0]
        mat = interaction_values(rf.trees, both_high, [0, 1, 2, 3])
        assert abs(mat[0, 1]) > 1e-3
        # the signal interaction dominates spurious noise-pair interactions
        assert abs(mat[0, 1]) > 10 * abs(mat[2, 3])

    def test_additive_model_has_no_interactions(self):
        """A sum of single-feature stumps has a diagonal interaction matrix."""
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 3))
        trees = []
        for j in range(3):
            y = (X[:, j] > 0).astype(int)
            t = DecisionTreeClassifier(max_depth=1, max_features=None, random_state=j)
            t.fit(X, y)
            trees.append(t.tree_)
        mat = interaction_values(trees, X[0], [0, 1, 2])
        off_diag = mat - np.diag(np.diag(mat))
        assert np.allclose(off_diag, 0.0, atol=1e-12)

    def test_needs_two_features(self):
        rf, X = _and_forest()
        with pytest.raises(ValueError):
            interaction_values_single_tree(rf.trees[0], X[0], [0])

    def test_top_interactions_workflow(self):
        rf, X = _and_forest(seed=4)
        explainer = TreeShapExplainer(rf.trees, 4)
        feats, mat = top_interactions(explainer, rf.trees, X[0], k=3)
        assert len(feats) == 3
        assert mat.shape == (3, 3)
        assert np.allclose(mat, mat.T)
