"""Tests for grouped CV, grid search and complexity accounting."""

import numpy as np
import pytest

from repro.ml.binning import BinnedDataset
from repro.ml.complexity import complexity_of
from repro.ml.boosting import RUSBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import (
    GroupKFold,
    grid_search,
    iterate_grid,
    positive_scores,
)
from repro.ml.nn import MLPClassifier
from repro.ml.svm import SVMClassifier
from tests.conftest import make_separable


class TestGroupKFold:
    def test_leave_one_group_out(self):
        groups = np.array([0, 0, 1, 1, 2, 2, 2])
        splits = GroupKFold().split(groups)
        assert len(splits) == 3
        for train, val, g in splits:
            assert set(groups[val]) == {g}
            assert g not in set(groups[train])
            assert len(train) + len(val) == len(groups)

    def test_no_sample_in_both(self):
        groups = np.array([0, 1, 0, 1, 2])
        for train, val, _ in GroupKFold().split(groups):
            assert not set(train) & set(val)


class TestGrid:
    def test_iterate_grid_combinations(self):
        grid = {"a": [1, 2], "b": ["x", "y", "z"]}
        combos = iterate_grid(grid)
        assert len(combos) == 6
        assert {"a": 1, "b": "x"} in combos

    def test_empty_grid(self):
        assert iterate_grid({}) == [{}]

    def test_grid_search_picks_better_depth(self):
        """Grid search must prefer a depth that actually validates better."""
        X, y = make_separable(n=1200, seed=60)
        groups = np.repeat(np.arange(4), 300)

        def factory(max_depth=1):
            return RandomForestClassifier(
                n_estimators=15, max_depth=max_depth, random_state=0
            )

        result = grid_search(factory, {"max_depth": [1, 8]}, X, y, groups)
        assert result.best_params == {"max_depth": 8}
        assert len(result.table) == 2
        assert result.best_score > 0.4
        assert "max_depth" in result.format_table()

    def test_skips_single_class_folds(self):
        X, y = make_separable(n=400, seed=61)
        y[:100] = 0  # group 0's fold has no positives
        groups = np.repeat(np.arange(4), 100)

        def factory():
            return RandomForestClassifier(n_estimators=5, random_state=0)

        result = grid_search(factory, {}, X, y, groups)
        (params, mean, folds) = result.table[0]
        assert len(folds) <= 3 or all(np.isfinite(folds))

    def test_all_folds_skipped_scores_minus_inf(self):
        """Every fold single-class: no config is ever fitted, every mean is
        -inf, and the first grid configuration wins deterministically."""
        rng = np.random.default_rng(66)
        X = rng.normal(size=(80, 4))
        groups = np.repeat([0, 1], 40)
        y = (groups == 0).astype(np.int8)  # each held-out group is pure

        def factory(max_depth=1):
            return RandomForestClassifier(
                n_estimators=3, max_depth=max_depth, random_state=0
            )

        result = grid_search(factory, {"max_depth": [1, 8]}, X, y, groups)
        assert result.best_score == float("-inf")
        assert result.best_params == {"max_depth": 1}
        for _, mean, folds in result.table:
            assert folds == [] and mean == float("-inf")

    def test_grid_search_with_shared_binned_dataset(self):
        """The bin-once path must pick the same winner as the plain path."""
        X, y = make_separable(n=1200, seed=60)
        groups = np.repeat(np.arange(4), 300)
        binned = BinnedDataset.from_matrix(X)

        def factory(max_depth=1):
            return RandomForestClassifier(
                n_estimators=15, max_depth=max_depth, random_state=0
            )

        result = grid_search(
            factory, {"max_depth": [1, 8]}, X, y, groups, binned=binned
        )
        assert result.best_params == {"max_depth": 8}
        assert result.best_score > 0.4

    def test_binned_row_mismatch_raises(self):
        X, y = make_separable(n=200, seed=67)
        binned = BinnedDataset.from_matrix(X)
        with pytest.raises(ValueError):
            grid_search(
                lambda: RandomForestClassifier(n_estimators=2, random_state=0),
                {},
                X[:100],
                y[:100],
                np.repeat([0, 1], 50),
                binned=binned,
            )


class TestPositiveScores:
    def test_extracts_positive_column(self):
        X, y = make_separable(n=200, seed=62)
        m = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        s = positive_scores(m, X)
        assert np.allclose(s, m.predict_proba(X)[:, 1])


class TestComplexity:
    def test_all_model_types_dispatch(self):
        X, y = make_separable(n=400, seed=63)
        X_ref = X[:100]
        models = [
            ("RF", RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)),
            ("RUSBoost", RUSBoostClassifier(n_estimators=5, random_state=0).fit(X, y)),
            ("SVM", SVMClassifier(max_train_samples=200, random_state=0).fit(X, y)),
            ("NN", MLPClassifier(epochs=2, random_state=0).fit(X, y)),
        ]
        for name, model in models:
            rep = complexity_of(model, X_ref, name)
            assert rep.num_parameters > 0
            assert rep.prediction_ops_per_sample > 0
            assert name in rep.format_row()

    def test_svm_ops_dominate_rf(self):
        """The paper's key complexity claim at any scale: SVM-RBF needs far
        more operations per prediction than RF."""
        X, y = make_separable(n=800, seed=64)
        rf = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        svm = SVMClassifier(max_train_samples=800, random_state=0).fit(X, y)
        rf_ops = complexity_of(rf, X[:100], "RF").prediction_ops_per_sample
        svm_ops = complexity_of(svm, X[:100], "SVM").prediction_ops_per_sample
        assert svm_ops > 10 * rf_ops

    def test_unknown_model_raises(self):
        with pytest.raises(TypeError):
            complexity_of(object(), np.zeros((1, 2)), "x")

    def test_mlp_params_match_ops_scale(self):
        X, y = make_separable(n=200, n_features=10, seed=65)
        m = MLPClassifier(hidden_layers=(20,), epochs=2, random_state=0).fit(X, y)
        rep = complexity_of(m, X, "NN")
        assert rep.prediction_ops_per_sample > rep.num_parameters  # ~2x MACs
