"""Tests for the routing grid and the negotiated-congestion global router."""

import numpy as np
import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.layout.grid import GCellGrid
from repro.place import place_design
from repro.route.graph import RoutingGrid
from repro.route.router import GlobalRouter, RouterConfig, route_design


@pytest.fixture(scope="module")
def routed():
    recipe = DesignRecipe(
        name="routeme", grid_nx=10, grid_ny=10, utilization=0.6,
        num_macros=1, macro_area_frac=0.08, ndr_frac=0.1, seed=17,
    )
    d = generate_design(recipe)
    place_design(d)
    grid = GCellGrid.for_design_die(d.die, d.technology)
    return d, grid, route_design(d, grid)


class TestRoutingGrid:
    def test_requires_placement(self):
        d = generate_design(DesignRecipe(name="unplaced", grid_nx=8, grid_ny=8))
        with pytest.raises(ValueError):
            GlobalRouter(d)

    def test_capacity_shapes(self, routed):
        d, grid, rr = routed
        rg = rr.rgrid
        for m in (1, 3, 5):  # horizontal layers
            assert rg.metal_cap[m].shape == (grid.nx - 1, grid.ny)
        for m in (2, 4):  # vertical layers
            assert rg.metal_cap[m].shape == (grid.nx, grid.ny - 1)
        for v in (1, 2, 3, 4):
            assert rg.via_cap[v].shape == (grid.nx, grid.ny)

    def test_m1_not_used_by_gr(self, routed):
        _, _, rr = routed
        assert (rr.rgrid.metal_cap[1] == 0).all()
        assert (rr.rgrid.metal_load[1] == 0).all()

    def test_macro_blocks_lower_layers(self, routed):
        d, grid, rr = routed
        macro = d.macros[0]
        # some M2/M3 edges under the macro must be capacity-0
        assert (rr.rgrid.metal_cap[2] == 0).any()
        assert (rr.rgrid.metal_cap[3] == 0).any()
        # the top layer keeps capacity everywhere
        assert (rr.rgrid.metal_cap[5] > 0).all()

    def test_add_remove_load_roundtrip(self, routed):
        d, grid, _ = routed
        rg = RoutingGrid(d, grid)
        path = [(0, 0), (1, 0), (1, 1), (2, 1)]
        rg.add_path_load(path, 2.0)
        assert rg.load2d_h[0, 0] == 2.0
        assert rg.load2d_v[1, 0] == 2.0
        assert rg.load2d_h[1, 1] == 2.0
        rg.remove_path_load(path, 2.0)
        assert rg.load2d_h.sum() == 0.0
        assert rg.load2d_v.sum() == 0.0

    def test_diagonal_path_rejected(self, routed):
        d, grid, _ = routed
        rg = RoutingGrid(d, grid)
        with pytest.raises(ValueError):
            rg.add_path_load([(0, 0), (1, 1)], 1.0)

    def test_history_bumps_only_overflowed(self, routed):
        d, grid, _ = routed
        rg = RoutingGrid(d, grid)
        rg.load2d_h[0, 0] = rg.cap2d_h[0, 0] + 1
        rg.bump_history(2.0)
        assert rg.hist_h[0, 0] == 2.0
        assert rg.hist_h[1, 0] == 0.0


class TestGlobalRouter:
    def test_all_segments_routed_and_connected(self, routed):
        _, _, rr = routed
        assert rr.segments
        for seg in rr.segments:
            assert seg.path[0] == seg.a
            assert seg.path[-1] == seg.b
            for p, q in zip(seg.path, seg.path[1:]):
                assert abs(p[0] - q[0]) + abs(p[1] - q[1]) == 1

    def test_2d_load_equals_wirelength_demand(self, routed):
        _, _, rr = routed
        expected = sum(
            (len(seg.path) - 1) * seg.demand for seg in rr.segments
        )
        total = rr.rgrid.load2d_h.sum() + rr.rgrid.load2d_v.sum()
        assert total == pytest.approx(expected)

    def test_layer_loads_match_2d_loads(self, routed):
        _, _, rr = routed
        rg = rr.rgrid
        h_layers = sum(rg.metal_load[m] for m in rg.h_layers)
        v_layers = sum(rg.metal_load[m] for m in rg.v_layers)
        assert h_layers.sum() == pytest.approx(rg.load2d_h.sum())
        assert v_layers.sum() == pytest.approx(rg.load2d_v.sum())

    def test_layer_direction_respected(self, routed):
        _, _, rr = routed
        rg = rr.rgrid
        # loads only exist on arrays of matching shape by construction;
        # check no negative loads anywhere
        for m, load in rg.metal_load.items():
            assert (load >= 0).all(), f"negative load on M{m}"
        for v, load in rg.via_load.items():
            assert (load >= 0).all(), f"negative load on V{v}"

    def test_ndr_demand_counted(self, routed):
        _, _, rr = routed
        ndr_segs = [s for s in rr.segments if s.demand > 1.0]
        assert ndr_segs, "recipe has ndr_frac=0.1; expected NDR segments"
        assert all(s.demand == 2.0 for s in ndr_segs)

    def test_via_loads_include_pin_access(self, routed):
        d, grid, rr = routed
        # every connected pin contributes one V1 via
        n_pins = sum(1 for p in d.all_pins() if p.net is not None)
        assert rr.rgrid.via_load[1].sum() >= n_pins

    def test_negotiation_reduces_overflow(self):
        recipe = DesignRecipe(
            name="hotroute", grid_nx=10, grid_ny=10, utilization=0.72,
            dense_net_boost=2.2, dense_cluster_frac=0.35, seed=23,
        )
        d = generate_design(recipe)
        place_design(d)
        grid = GCellGrid.for_design_die(d.die, d.technology)
        rr = route_design(d, grid, RouterConfig(negotiation_iterations=5))
        if rr.overflow_history[0] > 0:
            assert rr.overflow_history[-1] <= rr.overflow_history[0]

    def test_deterministic(self):
        recipe = DesignRecipe(name="det", grid_nx=8, grid_ny=8, seed=3)
        results = []
        for _ in range(2):
            d = generate_design(recipe)
            place_design(d)
            grid = GCellGrid.for_design_die(d.die, d.technology)
            rr = route_design(d, grid)
            results.append((rr.total_wirelength, rr.rgrid.load2d_h.sum()))
        assert results[0] == results[1]

    def test_runtime_recorded(self, routed):
        _, _, rr = routed
        assert rr.runtime_sec > 0
