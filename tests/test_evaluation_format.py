"""Unit tests for Table II formatting and shape summarisation."""

import pytest

from repro.core.evaluation import format_table2, summarize_shape
from repro.core.experiment import (
    DesignScore,
    ExperimentResult,
    ModelRunStats,
)
from repro.ml.metrics import EvaluationResult


def _metrics(tpr, prec, aprc):
    return EvaluationResult(
        tpr_star=tpr, prec_star=prec, a_prc=aprc, a_roc=0.9,
        num_samples=100, num_positives=10,
    )


@pytest.fixture()
def result():
    scores = [
        DesignScore("d1", "RF", _metrics(0.5, 0.6, 0.7)),
        DesignScore("d1", "SVM-RBF", _metrics(0.4, 0.5, 0.6)),
        DesignScore("d2", "RF", _metrics(0.3, 0.4, 0.5)),
        # SVM has no score for d2 (e.g. skipped) -> "--" cell
    ]
    stats = [
        ModelRunStats("RF", num_parameters=1000, prediction_ops=10,
                      train_minutes=1.0, predict_minutes_per_design=0.1),
        ModelRunStats("SVM-RBF", num_parameters=5000, prediction_ops=900,
                      train_minutes=0.5, predict_minutes_per_design=0.2),
    ]
    return ExperimentResult(
        scores=scores,
        run_stats=stats,
        design_order=["d1", "d2"],
        model_order=["RF", "SVM-RBF"],
        target_fpr=0.005,
    )


class TestFormatTable2:
    def test_missing_cell_shown_as_dashes(self, result):
        text = format_table2(result)
        assert "--" in text

    def test_winner_starred(self, result):
        text = format_table2(result)
        d1_row = next(l for l in text.splitlines() if l.startswith("d1"))
        # RF wins every d1 metric: all its cells starred
        assert "0.7000*" in d1_row
        # the losing SVM cells are unstarred
        assert "0.4000 " in d1_row and "0.4000*" not in d1_row

    def test_cost_rows_present(self, result):
        text = format_table2(result)
        assert "# Param (k)" in text
        assert "Train (min)" in text


class TestAggregates:
    def test_averages_over_scored_designs_only(self, result):
        tpr, prec, aprc = result.averages("SVM-RBF")
        assert aprc == pytest.approx(0.6)  # only d1 scored
        tpr, prec, aprc = result.averages("RF")
        assert aprc == pytest.approx(0.6)  # mean of 0.7 and 0.5

    def test_winning_designs_counts_ties_for_all(self):
        scores = [
            DesignScore("d1", "A", _metrics(0.5, 0.5, 0.5)),
            DesignScore("d1", "B", _metrics(0.5, 0.5, 0.5)),
        ]
        r = ExperimentResult(
            scores=scores,
            run_stats=[ModelRunStats("A"), ModelRunStats("B")],
            design_order=["d1"],
            model_order=["A", "B"],
            target_fpr=0.005,
        )
        assert r.winning_designs("A") == (1, 1, 1)
        assert r.winning_designs("B") == (1, 1, 1)

    def test_score_of_duplicate_keeps_first(self):
        """The (design, model) index must keep linear-scan first-wins order."""
        scores = [
            DesignScore("d1", "A", _metrics(0.1, 0.1, 0.1)),
            DesignScore("d1", "A", _metrics(0.9, 0.9, 0.9)),
        ]
        r = ExperimentResult(
            scores=scores,
            run_stats=[ModelRunStats("A")],
            design_order=["d1"],
            model_order=["A"],
            target_fpr=0.005,
        )
        assert r.score_of("d1", "A").a_prc == pytest.approx(0.1)

    def test_score_index_tracks_incremental_scores(self):
        """Callers build results incrementally; the index must not go stale."""
        r = ExperimentResult(
            scores=[DesignScore("d1", "A", _metrics(0.1, 0.2, 0.3))],
            run_stats=[ModelRunStats("A")],
            design_order=["d1", "d2"],
            model_order=["A"],
            target_fpr=0.005,
        )
        assert r.score_of("d2", "A") is None
        r.scores.append(DesignScore("d2", "A", _metrics(0.4, 0.5, 0.6)))
        assert r.score_of("d2", "A").a_prc == pytest.approx(0.6)

    def test_winning_designs_near_tie_within_tolerance(self):
        """A 1e-12-close runner-up still counts as a win (tie tolerance)."""
        scores = [
            DesignScore("d1", "A", _metrics(0.5, 0.5, 0.5)),
            DesignScore("d1", "B", _metrics(0.5 - 1e-13, 0.5, 0.5)),
            DesignScore("d2", "A", _metrics(0.2, 0.2, 0.2)),
            DesignScore("d2", "B", _metrics(0.8, 0.8, 0.8)),
        ]
        r = ExperimentResult(
            scores=scores,
            run_stats=[ModelRunStats("A"), ModelRunStats("B")],
            design_order=["d1", "d2"],
            model_order=["A", "B"],
            target_fpr=0.005,
        )
        assert r.winning_designs("A") == (1, 1, 1)
        assert r.winning_designs("B") == (2, 2, 2)

    def test_summarize_shape_gain(self, result):
        shape = summarize_shape(result)
        assert shape["rf_best_average_aprc"] is True
        assert shape["rf_vs_svm_aprc_gain"] == pytest.approx(0.6 / 0.6 - 1.0 + 0.0, abs=1e-9) or True
        # explicit: RF avg 0.6, SVM avg 0.6 -> gain 0.0
        assert shape["rf_vs_svm_aprc_gain"] == pytest.approx(0.0, abs=1e-9)
