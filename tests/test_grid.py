"""Tests for the g-cell grid, windows and the 12-edge convention."""

import pytest
from hypothesis import given, strategies as st

from repro.layout.geometry import Point, Rect
from repro.layout.grid import (
    GCellGrid,
    WINDOW_EDGES,
    WINDOW_OFFSETS,
    WINDOW_POSITIONS,
)
from repro.layout.technology import make_ispd2015_like_technology


@pytest.fixture()
def grid() -> GCellGrid:
    tech = make_ispd2015_like_technology()
    die = Rect(0, 0, 8 * tech.gcell_size, 5 * tech.gcell_size)
    return GCellGrid.for_design_die(die, tech)


class TestIndexing:
    def test_dimensions(self, grid):
        assert (grid.nx, grid.ny) == (8, 5)
        assert grid.num_cells == 40

    def test_cell_of_point_corners(self, grid):
        assert grid.cell_of_point(Point(0, 0)) == (0, 0)
        # the far corner clamps into the last cell
        assert grid.cell_of_point(Point(grid.die.xhi, grid.die.yhi)) == (7, 4)

    def test_cell_of_point_clamps_outside(self, grid):
        assert grid.cell_of_point(Point(-100, -100)) == (0, 0)
        assert grid.cell_of_point(Point(1e9, 1e9)) == (7, 4)

    def test_cell_bbox_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.cell_bbox(8, 0)

    def test_center_inside_bbox(self, grid):
        for ix, iy in grid.iter_cells():
            assert grid.cell_bbox(ix, iy).contains_point(grid.cell_center(ix, iy))

    def test_normalized_center_range(self, grid):
        for ix, iy in grid.iter_cells():
            x, y = grid.normalized_center(ix, iy)
            assert 0.0 < x < 1.0
            assert 0.0 < y < 1.0

    @given(st.integers(0, 7), st.integers(0, 4))
    def test_flat_index_roundtrip(self, ix, iy):
        tech = make_ispd2015_like_technology()
        g = GCellGrid(Rect(0, 0, 8 * tech.gcell_size, 5 * tech.gcell_size),
                      tech.gcell_size, 8, 5)
        assert g.from_flat_index(g.flat_index(ix, iy)) == (ix, iy)

    def test_iter_cells_matches_flat_order(self, grid):
        for flat, (ix, iy) in enumerate(grid.iter_cells()):
            assert grid.flat_index(ix, iy) == flat

    def test_point_roundtrip(self, grid):
        for ix, iy in grid.iter_cells():
            assert grid.cell_of_point(grid.cell_center(ix, iy)) == (ix, iy)


class TestWindow:
    def test_positions_count_and_center(self):
        assert len(WINDOW_POSITIONS) == 9
        assert "o" in WINDOW_POSITIONS
        assert WINDOW_OFFSETS["o"] == (0, 0)
        assert WINDOW_OFFSETS["NE"] == (1, 1)
        assert WINDOW_OFFSETS["SW"] == (-1, -1)

    def test_window_cells_interior(self, grid):
        cells = grid.window_cells(3, 2)
        assert len(cells) == 9
        assert all(c is not None for c in cells)
        names = [c[0] for c in cells]
        assert names == list(WINDOW_POSITIONS)

    def test_window_cells_corner_padded(self, grid):
        cells = grid.window_cells(0, 0)
        # SW, S, SE, W, NW are off-die for the lower-left corner
        padded = [c for c in cells if c is None]
        assert len(padded) == 5

    def test_twelve_edges_six_per_orientation(self):
        assert len(WINDOW_EDGES) == 12
        assert sum(1 for e in WINDOW_EDGES if e.orientation == "H") == 6
        assert sum(1 for e in WINDOW_EDGES if e.orientation == "V") == 6

    def test_edge_labels_unique_numbered(self):
        labels = [e.label for e in WINDOW_EDGES]
        assert len(set(labels)) == 12
        numbers = sorted(int(l[:-1]) for l in labels)
        assert numbers == list(range(1, 13))

    def test_edge_cells_are_adjacent(self):
        for e in WINDOW_EDGES:
            dx = e.cell_b[0] - e.cell_a[0]
            dy = e.cell_b[1] - e.cell_a[1]
            if e.orientation == "H":
                assert (dx, dy) == (1, 0)
            else:
                assert (dx, dy) == (0, 1)

    def test_edge_cells_inside_window(self):
        for e in WINDOW_EDGES:
            for cell in (e.cell_a, e.cell_b):
                assert -1 <= cell[0] <= 1
                assert -1 <= cell[1] <= 1

    def test_window_edge_cells_boundary_none(self, grid):
        edge = WINDOW_EDGES[0]  # 1H: between SW and S
        a, b = grid.window_edge_cells(0, 0, edge)
        assert a is None and b is None

    def test_window_edge_cells_interior(self, grid):
        for e in WINDOW_EDGES:
            a, b = grid.window_edge_cells(3, 2, e)
            assert a is not None and b is not None
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
