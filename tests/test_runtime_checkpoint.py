"""Tests for the checkpoint store: atomicity, checksums, version stamps."""

import json

import numpy as np
import pytest

from repro.runtime import CacheCorruptionError, CheckpointStore
from repro.runtime.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    atomic_write_bytes,
    sha256_of,
)


@pytest.fixture()
def store(tmp_path) -> CheckpointStore:
    return CheckpointStore(tmp_path / "ckpt")


class TestAtomicWrite:
    def test_roundtrip_and_no_temp_residue(self, tmp_path):
        path = tmp_path / "deep" / "a.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert [p.name for p in path.parent.iterdir()] == ["a.bin"]

    def test_overwrite_is_replace(self, tmp_path):
        path = tmp_path / "a.bin"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"

    def test_sha256_of_matches_hashlib(self, tmp_path):
        import hashlib

        path = tmp_path / "h.bin"
        path.write_bytes(b"x" * 100_000)
        assert sha256_of(path) == hashlib.sha256(b"x" * 100_000).hexdigest()


class TestCheckpointStore:
    def test_bytes_roundtrip(self, store):
        store.save_bytes("k.bin", b"\x00\x01hello")
        assert store.has("k.bin")
        assert store.verify("k.bin")
        assert store.load_bytes("k.bin") == b"\x00\x01hello"

    def test_arrays_roundtrip(self, store):
        X = np.arange(12, dtype=np.float32).reshape(3, 4)
        store.save_arrays("a.npz", X=X, y=np.array([1, 0, 1], dtype=np.int8))
        back = store.load_arrays("a.npz")
        assert np.array_equal(back["X"], X)
        assert back["y"].tolist() == [1, 0, 1]

    def test_json_roundtrip(self, store):
        store.save_json("m.json", {"a": [1, 2], "b": "x"})
        assert store.load_json("m.json") == {"a": [1, 2], "b": "x"}

    def test_missing_key(self, store):
        assert not store.has("ghost")
        with pytest.raises(CacheCorruptionError, match="no manifest entry"):
            store.load_bytes("ghost")

    def test_corruption_detected_by_checksum(self, store):
        store.save_bytes("c.bin", b"A" * 64)
        path = store.root / "c.bin"
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.has("c.bin")  # cheap check still true
        assert not store.verify("c.bin")
        with pytest.raises(CacheCorruptionError, match="checksum mismatch"):
            store.load_bytes("c.bin")

    def test_truncation_detected(self, store):
        store.save_bytes("t.bin", b"B" * 128)
        path = store.root / "t.bin"
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CacheCorruptionError):
            store.load_bytes("t.bin")

    def test_version_mismatch_rejected(self, store):
        store.save_bytes("v.bin", b"data")
        manifest = json.loads(store.manifest_path.read_text())
        manifest["entries"]["v.bin"]["format_version"] = CHECKPOINT_FORMAT_VERSION - 1
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CacheCorruptionError, match="format"):
            store.load_bytes("v.bin")

    def test_store_format_bump_invalidates_wholesale(self, store):
        store.save_bytes("w.bin", b"data")
        manifest = json.loads(store.manifest_path.read_text())
        manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        store.manifest_path.write_text(json.dumps(manifest))
        assert not store.has("w.bin")
        assert list(store.keys()) == []

    def test_torn_manifest_treated_as_empty(self, store):
        store.save_bytes("k.bin", b"data")
        store.manifest_path.write_text('{"format_version": 2, "entr')  # torn
        assert not store.has("k.bin")

    def test_invalidate(self, store):
        store.save_bytes("d.bin", b"data")
        store.invalidate("d.bin")
        assert not store.has("d.bin")
        assert not (store.root / "d.bin").exists()
        store.invalidate("d.bin")  # idempotent

    def test_clear(self, store):
        store.save_bytes("a", b"1")
        store.save_bytes("b", b"2")
        store.clear()
        assert list(store.keys()) == []

    def test_invalid_keys_rejected(self, store):
        for bad in ("../escape", "a/b", "", ".hidden"):
            with pytest.raises(ValueError):
                store.save_bytes(bad, b"x")

    def test_manifest_filename_is_a_reserved_key(self, store):
        store.save_bytes("k.bin", b"data")
        with pytest.raises(ValueError, match="invalid checkpoint key"):
            store.save_bytes("manifest.json", b"payload over the manifest")
        with pytest.raises(ValueError, match="invalid checkpoint key"):
            store.load_bytes("manifest.json")
        # the store survived the attempt intact
        assert store.verify("k.bin")
        assert list(store.keys()) == ["k.bin"]

    def test_undecodable_array_payload(self, store):
        store.save_bytes("x.npz", b"not an npz at all")
        with pytest.raises(CacheCorruptionError, match="array payload"):
            store.load_arrays("x.npz")

    def test_undecodable_json_payload(self, store):
        store.save_bytes("x.json", b"\xff\xfe{nope")
        with pytest.raises(CacheCorruptionError, match="JSON payload"):
            store.load_json("x.json")
