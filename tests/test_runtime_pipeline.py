"""Integration tests: resumable suite builds and fault-tolerant experiments.

These exercise the whole runtime machinery end-to-end via the fault-injection
harness: kill-and-resume mid-suite, corrupted-checkpoint detection + rebuild,
torn cache pairs, graceful degradation, and experiment-grid resume.
"""

import json

import numpy as np
import pytest

import repro.core.pipeline as pipeline
from repro.bench.suite import SUITE_ORDER
from repro.core.experiment import run_experiment
from repro.core.models import ModelSpec
from repro.core.pipeline import ADHOC_GROUP, build_suite_dataset, checkpoint_dir_for
from repro.features.dataset import DesignDataset, SuiteDataset
from repro.features.names import NUM_FEATURES
from repro.runtime import (
    CheckpointStore,
    FaultSpec,
    FaultTolerantRunner,
    StageFailure,
    inject_faults,
)

SCALE = 0.3  # tiny grids: the full 14-design suite flows in seconds


@pytest.fixture()
def counted_run_flow(monkeypatch):
    """Count invocations of the real flow made by the suite builder."""
    calls: list[str] = []
    real = pipeline.run_flow

    def counting(recipe, *args, **kwargs):
        calls.append(recipe.name)
        return real(recipe, *args, **kwargs)

    monkeypatch.setattr(pipeline, "run_flow", counting)
    return calls


class TestKillAndResume:
    def test_interrupted_build_resumes_remaining_designs(
        self, tmp_path, counted_run_flow
    ):
        cache = tmp_path / "suite.npz"
        killed_at = SUITE_ORDER[2]  # die on the 3rd of 14 designs

        with inject_faults(FaultSpec(stage=f"flow/{killed_at}", times=1)):
            with pytest.raises(StageFailure):
                build_suite_dataset(SCALE, cache_path=cache)
        # the injected fault kills design 3 before its flow body runs
        assert counted_run_flow == list(SUITE_ORDER[:2])
        assert not cache.exists()  # no cache for a partial run

        store = CheckpointStore(checkpoint_dir_for(cache))
        assert sorted(store.keys()) == sorted(f"{n}.npz" for n in SUITE_ORDER[:2])

        # re-invocation re-runs ONLY the 14 - 2 unfinished flows
        counted_run_flow.clear()
        suite, stats = build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == list(SUITE_ORDER[2:])
        assert len(counted_run_flow) == 14 - 2
        assert suite.names == list(SUITE_ORDER)
        assert len(stats) == 14
        assert cache.exists()

        # third invocation: everything comes from the (now complete) cache
        counted_run_flow.clear()
        suite2, _ = build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == []
        assert suite2.names == suite.names

    def test_no_resume_flag_recomputes_everything(self, tmp_path, counted_run_flow):
        cache = tmp_path / "suite.npz"
        with inject_faults(FaultSpec(stage=f"flow/{SUITE_ORDER[5]}", times=1)):
            with pytest.raises(StageFailure):
                build_suite_dataset(SCALE, cache_path=cache)
        counted_run_flow.clear()
        build_suite_dataset(SCALE, cache_path=cache, resume=False)
        assert len(counted_run_flow) == 14


class TestCorruptionRecovery:
    def test_corrupted_checkpoint_is_rebuilt_not_loaded(
        self, tmp_path, counted_run_flow
    ):
        cache = tmp_path / "suite.npz"
        build_suite_dataset(SCALE, cache_path=cache)
        victim = SUITE_ORDER[7]

        # corrupt one design's checkpoint payload and tear the final cache
        # so the builder must fall back to checkpoints
        store = CheckpointStore(checkpoint_dir_for(cache))
        payload_path = store.root / f"{victim}.npz"
        data = bytearray(payload_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload_path.write_bytes(bytes(data))
        cache.unlink()
        cache.with_suffix(".stats.json").unlink()

        counted_run_flow.clear()
        suite, _ = build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == [victim]  # checksum caught it; only it re-ran
        assert suite.names == list(SUITE_ORDER)
        assert store.verify(f"{victim}.npz")  # rebuilt checkpoint is sound again

    def test_injected_checkpoint_corruption_detected_on_next_run(
        self, tmp_path, counted_run_flow
    ):
        cache = tmp_path / "suite.npz"
        victim = SUITE_ORDER[0]
        with inject_faults(
            FaultSpec(stage=f"checkpoint/{victim}.npz", kind="corrupt")
        ) as plan:
            build_suite_dataset(SCALE, cache_path=cache)
        assert (f"checkpoint/{victim}.npz", "corrupt") in plan.triggered

        # the torn artefact is detected by checksum and only it is re-flowed
        cache.unlink()
        cache.with_suffix(".stats.json").unlink()
        counted_run_flow.clear()
        build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == [victim]

    def test_torn_cache_pair_rebuilds_from_checkpoints(
        self, tmp_path, counted_run_flow
    ):
        cache = tmp_path / "suite.npz"
        build_suite_dataset(SCALE, cache_path=cache)

        # delete one half of the pair: the pair is invalidated together,
        # but the rebuild costs zero flows thanks to the checkpoints
        cache.with_suffix(".stats.json").unlink()
        counted_run_flow.clear()
        suite, stats = build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == []
        assert cache.exists()  # pair rewritten
        assert cache.with_suffix(".stats.json").exists()
        assert len(stats) == 14

    def test_corrupted_npz_invalidates_pair(self, tmp_path, counted_run_flow):
        cache = tmp_path / "suite.npz"
        build_suite_dataset(SCALE, cache_path=cache)
        data = bytearray(cache.read_bytes())
        data[len(data) // 2] ^= 0xFF
        cache.write_bytes(bytes(data))

        counted_run_flow.clear()
        suite, _ = build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == []  # checkpoints still cover everything
        assert suite.names == list(SUITE_ORDER)
        # rewritten cache passes checksum now
        doc = json.loads(cache.with_suffix(".stats.json").read_text())
        from repro.runtime.checkpoint import sha256_of

        assert doc["npz_sha256"] == sha256_of(cache)

    def test_transient_read_error_keeps_cache_pair(self, tmp_path, monkeypatch):
        cache = tmp_path / "suite.npz"
        sidecar = cache.with_suffix(".stats.json")
        build_suite_dataset(SCALE, cache_path=cache)

        def denied(path, *args, **kwargs):
            raise OSError("transient EACCES")

        monkeypatch.setattr(pipeline, "sha256_of", denied)
        # transient I/O failure: fall back to a rebuild, but do NOT destroy
        # the valid, expensive-to-rebuild pair
        assert pipeline._load_suite_cache(cache, sidecar) is None
        assert cache.exists() and sidecar.exists()

        monkeypatch.undo()
        assert pipeline._load_suite_cache(cache, sidecar) is not None

    def test_legacy_sidecar_format_is_invalidated(self, tmp_path, counted_run_flow):
        cache = tmp_path / "suite.npz"
        build_suite_dataset(SCALE, cache_path=cache)
        # simulate a v1 sidecar: a bare stats list without integrity data
        sidecar = cache.with_suffix(".stats.json")
        sidecar.write_text(json.dumps([{"name": "des_perf_b"}]))

        counted_run_flow.clear()
        suite, stats = build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == []  # rebuilt from checkpoints
        assert len(stats) == 14


class TestGracefulDegradation:
    def test_failed_design_is_recorded_and_skipped(self, tmp_path, counted_run_flow):
        cache = tmp_path / "suite.npz"
        victim = SUITE_ORDER[4]
        runner = FaultTolerantRunner(fail_fast=False)
        with inject_faults(FaultSpec(stage=f"flow/{victim}", times=1)):
            suite, stats = build_suite_dataset(
                SCALE, cache_path=cache, runner=runner
            )
        assert len(suite.designs) == 13
        assert victim not in suite.names
        assert runner.failures.units() == [f"flow/{victim}"]
        rec = runner.failures.records[0]
        assert rec.error_type == "FaultInjected"
        # the shared cache must not be poisoned by a partial suite
        assert not cache.exists()

        # next run completes the missing design and writes the cache
        counted_run_flow.clear()
        suite2, _ = build_suite_dataset(SCALE, cache_path=cache)
        assert counted_run_flow == [victim]
        assert len(suite2.designs) == 14
        assert cache.exists()

    def test_nan_features_degrade_suite_instead_of_aborting(
        self, tmp_path, monkeypatch
    ):
        victim = SUITE_ORDER[3]
        real = pipeline.run_flow

        def poisoned(recipe, *args, **kwargs):
            result = real(recipe, *args, **kwargs)
            if recipe.name == victim:
                result.X[0, 0] = np.nan
            return result

        monkeypatch.setattr(pipeline, "run_flow", poisoned)
        runner = FaultTolerantRunner(fail_fast=False)
        suite, _ = build_suite_dataset(
            SCALE, cache_path=tmp_path / "suite.npz", runner=runner
        )
        # validation runs inside the unit: the NaN design is recorded and
        # skipped like any other unit failure, not a suite-wide abort
        assert victim not in suite.names
        assert len(suite.designs) == 13
        assert runner.failures.units() == [f"flow/{victim}"]
        assert runner.failures.records[0].error_type == "ValidationError"

    def test_all_designs_failing_raises(self, tmp_path):
        runner = FaultTolerantRunner(fail_fast=False)
        with inject_faults(FaultSpec(stage="flow/*", times=14)):
            with pytest.raises(StageFailure, match="every design"):
                build_suite_dataset(SCALE, cache_path=tmp_path / "s.npz",
                                    runner=runner)


# -- experiment-level fault tolerance ----------------------------------------------


class _DummyModel:
    """Deterministic stand-in estimator: scores by the first feature."""

    fit_calls = 0

    def fit(self, X, y):
        _DummyModel.fit_calls += 1
        return self

    def predict_proba(self, X):
        s = (X[:, 0] - X[:, 0].min()) / (np.ptp(X[:, 0]) + 1e-9)
        return np.stack([1 - s, s], axis=1)


def _dummy_spec() -> ModelSpec:
    return ModelSpec(name="Dummy", factory=_DummyModel)


def _synthetic_suite(with_adhoc: bool = False) -> SuiteDataset:
    rng = np.random.default_rng(0)
    designs = []
    specs = [("d0", 0), ("d1", 0), ("d2", 1), ("d3", 1)]
    if with_adhoc:
        specs.append(("stray", ADHOC_GROUP))
    for name, group in specs:
        n = 25
        X = rng.normal(size=(n, NUM_FEATURES))
        y = (X[:, 0] > 0.8).astype(np.int8)
        y[:3] = 1  # guarantee positives
        designs.append(
            DesignDataset(name=name, group=group, X=X, y=y, grid_nx=5, grid_ny=5)
        )
    return SuiteDataset(designs)


class TestExperimentFaultTolerance:
    def test_failed_unit_degrades_table(self):
        suite = _synthetic_suite()
        runner = FaultTolerantRunner(fail_fast=False)
        with inject_faults(FaultSpec(stage="experiment/Dummy__g0", times=1)):
            result = run_experiment(
                suite, [_dummy_spec()], tune=False, runner=runner
            )
        assert runner.failures.units() == ["experiment/Dummy__g0"]
        scored = {s.design for s in result.scores}
        assert scored == {"d2", "d3"}  # group-1 designs still scored

    def test_checkpointed_experiment_resumes_without_refitting(self, tmp_path):
        suite = _synthetic_suite()
        ckpt = tmp_path / "exp.ckpt"
        _DummyModel.fit_calls = 0
        first = run_experiment(
            suite, [_dummy_spec()], tune=False, checkpoint_dir=ckpt
        )
        assert _DummyModel.fit_calls == 2  # one fit per group

        second = run_experiment(
            suite, [_dummy_spec()], tune=False, checkpoint_dir=ckpt
        )
        assert _DummyModel.fit_calls == 2  # resumed: zero new fits
        assert [
            (s.design, s.metrics.a_prc) for s in second.scores
        ] == [(s.design, s.metrics.a_prc) for s in first.scores]

    def test_stale_checkpoints_from_degraded_suite_are_rejected(self, tmp_path):
        # one design's flow failed -> the grid ran (and checkpointed) against
        # a degraded suite; resuming with the repaired suite must recompute
        # every unit, not reuse the stale ones
        full = _synthetic_suite()
        degraded = SuiteDataset(full.designs[:3])  # d3 "failed" that run
        ckpt = tmp_path / "exp.ckpt"
        _DummyModel.fit_calls = 0
        run_experiment(degraded, [_dummy_spec()], tune=False, checkpoint_dir=ckpt)
        fits_degraded = _DummyModel.fit_calls
        assert fits_degraded == 2  # both groups still present in the suite

        result = run_experiment(
            full, [_dummy_spec()], tune=False, checkpoint_dir=ckpt
        )
        assert _DummyModel.fit_calls == fits_degraded + 2  # all units refit
        assert {s.design for s in result.scores} == {"d0", "d1", "d2", "d3"}

        # and the repaired-suite checkpoints now resume cleanly
        run_experiment(full, [_dummy_spec()], tune=False, checkpoint_dir=ckpt)
        assert _DummyModel.fit_calls == fits_degraded + 2

    def test_checkpoints_bound_to_protocol_knobs(self, tmp_path):
        suite = _synthetic_suite()
        ckpt = tmp_path / "exp.ckpt"
        _DummyModel.fit_calls = 0
        run_experiment(
            suite, [_dummy_spec()], target_fpr=0.005, tune=False,
            checkpoint_dir=ckpt,
        )
        assert _DummyModel.fit_calls == 2
        run_experiment(
            suite, [_dummy_spec()], target_fpr=0.01, tune=False,
            checkpoint_dir=ckpt,
        )
        assert _DummyModel.fit_calls == 4  # different FPR* -> no reuse

    def test_interrupted_grid_resumes_only_missing_units(self, tmp_path):
        suite = _synthetic_suite()
        ckpt = tmp_path / "exp.ckpt"
        runner = FaultTolerantRunner(fail_fast=False)
        _DummyModel.fit_calls = 0
        with inject_faults(FaultSpec(stage="experiment/Dummy__g1", times=1)):
            run_experiment(
                suite, [_dummy_spec()], tune=False,
                runner=runner, checkpoint_dir=ckpt,
            )
        assert _DummyModel.fit_calls == 1

        result = run_experiment(
            suite, [_dummy_spec()], tune=False, checkpoint_dir=ckpt
        )
        assert _DummyModel.fit_calls == 2  # only the failed unit re-ran
        assert {s.design for s in result.scores} == {"d0", "d1", "d2", "d3"}


class TestAdhocGroupSentinel:
    def test_safe_group_returns_sentinel(self):
        assert pipeline._safe_group("not_in_suite") == ADHOC_GROUP
        assert pipeline._safe_group("des_perf_1") == 3

    def test_sentinel_group_never_forms_a_test_fold(self):
        suite = _synthetic_suite(with_adhoc=True)
        result = run_experiment(suite, [_dummy_spec()], tune=False)
        assert {s.design for s in result.scores} == {"d0", "d1", "d2", "d3"}
        assert "stray" not in result.design_order
