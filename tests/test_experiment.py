"""Integration tests for the leave-one-group-out experiment protocol."""

import numpy as np
import pytest

from repro.core.evaluation import format_table2, summarize_shape
from repro.core.experiment import run_experiment
from repro.core.models import ModelSpec, model_zoo, rf_spec
from repro.ml.forest import RandomForestClassifier


def _fast_models():
    def make_rf(**kw):
        return RandomForestClassifier(
            n_estimators=40, class_weight="balanced", random_state=0, **kw
        )

    def make_shallow(**kw):
        # a deterministic single stump (no bootstrap, all features): a
        # zero-variance baseline, so "deeper beats stumps" does not hinge
        # on which random stream the stump forest happens to draw
        return RandomForestClassifier(
            n_estimators=1, max_depth=1, bootstrap=False, max_features=None,
            random_state=0, **kw
        )

    return [
        ModelSpec("RF", make_rf),
        ModelSpec("Stump", make_shallow),
    ]


@pytest.fixture(scope="module")
def result(mini_suite):
    return run_experiment(mini_suite, _fast_models(), tune=False)


class TestProtocol:
    def test_scores_only_for_designs_with_positives(self, mini_suite, result):
        scored = {s.design for s in result.scores}
        for d in mini_suite.designs:
            if 0 < d.num_hotspots < d.num_samples:
                assert d.name in scored
            else:
                assert d.name not in scored

    def test_every_model_scores_every_eligible_design(self, result):
        for design in result.design_order:
            for model in result.model_order:
                assert result.score_of(design, model) is not None

    def test_metric_ranges(self, result):
        for s in result.scores:
            assert 0 <= s.metrics.tpr_star <= 1
            assert 0 <= s.metrics.prec_star <= 1
            assert 0 <= s.metrics.a_prc <= 1

    def test_deeper_model_beats_stumps_on_average(self, result):
        assert result.averages("RF")[2] > result.averages("Stump")[2]

    def test_run_stats_populated(self, result):
        stats = {s.model: s for s in result.run_stats}
        assert stats["RF"].num_parameters > stats["Stump"].num_parameters
        assert stats["RF"].train_minutes >= 0

    def test_winning_designs_bounded(self, result):
        for model in result.model_order:
            wins = result.winning_designs(model)
            assert all(0 <= w <= len(result.design_order) for w in wins)

    def test_no_test_group_leakage(self, mini_suite):
        """A model must be trained without its test group's samples.

        We verify via a spy model that records the training sizes: for the
        2-group mini suite, each fit must see exactly the other group."""
        seen_sizes = []

        class Spy:
            def fit(self, X, y):
                seen_sizes.append(len(X))
                self._p = float(y.mean())
                return self

            def predict_proba(self, X):
                p = np.full(len(X), self._p)
                return np.column_stack([1 - p, p])

        run_experiment(mini_suite, [ModelSpec("Spy", lambda: Spy())], tune=False)
        group_sizes = {}
        for d in mini_suite.designs:
            group_sizes[d.group] = group_sizes.get(d.group, 0) + d.num_samples
        # training on group!=g for each g present
        expected = sorted(group_sizes[g] for g in group_sizes)
        assert sorted(seen_sizes) == expected


class TestFormatting:
    def test_table_contains_all_cells(self, result):
        text = format_table2(result)
        for design in result.design_order:
            assert design in text
        assert "Average" in text
        assert "# Win. des." in text
        assert "Pred op" in text

    def test_summarize_shape_keys(self, result):
        # the mini zoo has no SVM; summarize still reports RF dominance keys
        models = result.model_order
        summary_avg = {m: result.averages(m)[2] for m in models}
        assert max(summary_avg, key=summary_avg.get) == "RF"


class TestModelZoo:
    def test_zoo_has_five_paper_models(self):
        zoo = model_zoo("fast")
        assert [m.name for m in zoo] == ["SVM-RBF", "RUSBoost", "NN-1", "NN-2", "RF"]

    def test_presets_differ(self):
        fast_rf = rf_spec("fast").factory()
        full_rf = rf_spec("full").factory()
        assert full_rf.n_estimators > fast_rf.n_estimators
        assert full_rf.n_estimators == 500  # the paper's forest size

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            model_zoo("turbo")

    def test_scaling_flags(self):
        zoo = {m.name: m for m in model_zoo("fast")}
        assert zoo["SVM-RBF"].needs_scaling
        assert zoo["NN-1"].needs_scaling
        assert not zoo["RF"].needs_scaling
        assert not zoo["RUSBoost"].needs_scaling
