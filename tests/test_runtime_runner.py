"""Tests for the fault-tolerant runner: retries, timeouts, failure log."""

import time

import pytest

from repro.runtime import (
    FailureLog,
    FailureRecord,
    FaultTolerantRunner,
    RetryPolicy,
    StageFailure,
    StageTimeout,
)


def _no_sleep(_s: float) -> None:
    pass


class TestRetryPolicy:
    def test_attempt_budget(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4
        assert RetryPolicy(max_retries=-5).max_attempts == 1

    def test_exponential_backoff_with_cap(self):
        p = RetryPolicy(max_retries=5, backoff_base_s=1.0, backoff_cap_s=5.0)
        assert [p.backoff(i) for i in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_zero_base_means_no_sleep(self):
        assert RetryPolicy(max_retries=2).backoff(1) == 0.0


class TestRunner:
    def test_success_passthrough(self):
        runner = FaultTolerantRunner()
        out = runner.run_unit("s", "u", lambda a, b: a + b, 2, b=3)
        assert out.ok and out.value == 5
        assert not runner.failures

    def test_retry_then_succeed(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "done"

        runner = FaultTolerantRunner(RetryPolicy(max_retries=2), sleep=_no_sleep)
        out = runner.run_unit("s", "flaky", flaky)
        assert out.ok and out.value == "done"
        assert calls["n"] == 3
        assert not runner.failures  # eventual success leaves no record

    def test_backoff_sleeps_between_attempts(self):
        slept = []
        runner = FaultTolerantRunner(
            RetryPolicy(max_retries=2, backoff_base_s=0.5), sleep=slept.append
        )
        out = runner.run_unit("s", "u", lambda: 1 / 0)
        assert not out.ok
        assert slept == [0.5, 1.0]  # between 3 attempts, exponential

    def test_exhausted_budget_records_failure(self):
        runner = FaultTolerantRunner(RetryPolicy(max_retries=1), sleep=_no_sleep)
        out = runner.run_unit("flow", "bad", lambda: 1 / 0)
        assert not out.ok
        assert out.failure is not None
        rec = runner.failures.records[0]
        assert (rec.stage, rec.unit, rec.attempts) == ("flow", "bad", 2)
        assert rec.error_type == "ZeroDivisionError"

    def test_fail_fast_raises_stage_failure_with_cause(self):
        runner = FaultTolerantRunner(fail_fast=True)
        with pytest.raises(StageFailure) as exc_info:
            runner.run_unit("flow", "boom", lambda: 1 / 0)
        assert isinstance(exc_info.value.__cause__, ZeroDivisionError)
        assert exc_info.value.stage == "flow"
        assert exc_info.value.unit == "boom"
        assert runner.failures  # still recorded before raising

    def test_timeout_enforced(self):
        runner = FaultTolerantRunner(RetryPolicy(timeout_s=0.05))
        out = runner.run_unit("slow", "u", time.sleep, 5.0)
        assert not out.ok
        assert out.failure.error_type == "StageTimeout"

    def test_timeout_fail_fast_raises_stage_timeout(self):
        runner = FaultTolerantRunner(RetryPolicy(timeout_s=0.05), fail_fast=True)
        with pytest.raises(StageTimeout):
            runner.run_unit("slow", "u", time.sleep, 5.0)

    def test_fast_unit_passes_under_timeout(self):
        runner = FaultTolerantRunner(RetryPolicy(timeout_s=5.0))
        out = runner.run_unit("s", "u", lambda: "quick")
        assert out.ok and out.value == "quick"

    def test_unit_raising_timeout_error_is_ordinary_failure(self):
        # On 3.11+ builtin TimeoutError aliases concurrent.futures.TimeoutError;
        # a unit's own timeout (socket/asyncio) must stay a normal unit failure
        # — with timeout_s=None it used to be misread as a stage timeout and
        # crash _describe on formatting None.
        def unit():
            raise TimeoutError("socket timed out")

        runner = FaultTolerantRunner(RetryPolicy(max_retries=1), sleep=_no_sleep)
        out = runner.run_unit("s", "u", unit)
        assert not out.ok
        rec = runner.failures.records[0]
        assert (rec.error_type, rec.attempts) == ("TimeoutError", 2)
        assert "socket timed out" in rec.message

    def test_unit_raising_timeout_error_under_wall_clock_budget(self):
        def unit():
            raise TimeoutError("inner")

        runner = FaultTolerantRunner(RetryPolicy(timeout_s=5.0))
        out = runner.run_unit("s", "u", unit)
        assert not out.ok
        assert out.failure.error_type == "TimeoutError"  # not StageTimeout

    def test_keyboard_interrupt_propagates(self):
        def interrupted():
            raise KeyboardInterrupt

        runner = FaultTolerantRunner(RetryPolicy(max_retries=5), sleep=_no_sleep)
        with pytest.raises(KeyboardInterrupt):
            runner.run_unit("s", "u", interrupted)
        assert not runner.failures  # not a unit failure


class TestFailureLog:
    def _rec(self, unit="u") -> FailureRecord:
        return FailureRecord(
            stage="flow", unit=unit, attempts=2,
            error_type="RuntimeError", message="boom", elapsed_s=1.5,
        )

    def test_summary_and_units(self):
        log = FailureLog()
        assert log.summary() == "no failures"
        log.record(self._rec("a"))
        log.record(self._rec("b"))
        assert len(log) == 2
        assert log.units() == ["flow/a", "flow/b"]
        assert "2 failed unit(s)" in log.summary()
        assert "flow/a: RuntimeError" in log.summary()

    def test_save_json(self, tmp_path):
        import json

        log = FailureLog()
        log.record(self._rec())
        path = log.save(tmp_path / "failures.json")
        doc = json.loads(path.read_text())
        assert doc[0]["unit"] == "u"
        assert doc[0]["attempts"] == 2
        # telemetry cross-reference fields always serialize, defaults included
        assert doc[0]["last_attempt_s"] == 0.0
        assert doc[0]["run_id"] == ""

    def test_to_dict_rounds_attempt_duration(self):
        rec = FailureRecord(
            stage="flow", unit="u", attempts=1, error_type="E", message="m",
            elapsed_s=1.23456, last_attempt_s=0.98765, run_id="r-1",
        )
        doc = rec.to_dict()
        assert doc["elapsed_s"] == 1.235
        assert doc["last_attempt_s"] == 0.988
        assert doc["run_id"] == "r-1"
