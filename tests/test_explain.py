"""Integration tests for the hotspot explanation workflow (Fig. 3/4)."""

import numpy as np
import pytest

from repro.core.explain import (
    explain_hotspots,
    explanation_layers_mentioned,
    train_explanation_forest,
)
from repro.core.pipeline import run_flow
from repro.features.dataset import DesignDataset, SuiteDataset
from tests.conftest import SMALL_RECIPE


@pytest.fixture(scope="module")
def explain_setup(small_flow_module):
    flow = small_flow_module
    # a 2-design suite: the flow design (group 0) + itself relabeled as a
    # training twin in group 1 (cheap but exercises the group protocol)
    d = flow.dataset
    train_twin = DesignDataset(
        name="twin", group=1, X=d.X, y=d.y, grid_nx=d.grid_nx, grid_ny=d.grid_ny
    )
    target = DesignDataset(
        name=d.name, group=0, X=d.X, y=d.y, grid_nx=d.grid_nx, grid_ny=d.grid_ny
    )
    suite = SuiteDataset([target, train_twin])
    return suite, flow


@pytest.fixture(scope="module")
def small_flow_module():
    return run_flow(SMALL_RECIPE)


@pytest.fixture(scope="module")
def reports(explain_setup):
    suite, flow = explain_setup
    return explain_hotspots(suite, flow, num_hotspots=2, preset="fast")


class TestExplainHotspots:
    def test_report_count(self, reports):
        assert len(reports) == 2

    def test_local_accuracy_holds(self, reports):
        for r in reports:
            assert r.explanation.check_local_accuracy(atol=1e-6)

    def test_predictions_sorted_descending(self, reports):
        preds = [r.prediction for r in reports]
        assert preds == sorted(preds, reverse=True)

    def test_congestion_views_present(self, reports):
        for r in reports:
            assert set(r.congestion_views) == {"M3", "M4", "M5"}
            for view in r.congestion_views.values():
                assert "congestion" in view

    def test_actual_errors_string(self, reports):
        for r in reports:
            assert "g-cell" in r.actual_errors

    def test_render_sections(self, reports):
        text = reports[0].render()
        assert "SHAP explanation" in text
        assert "base value" in text
        assert "Actual DRC errors" in text
        assert "SHAP runtime" in text

    def test_layers_mentioned_extraction(self, reports):
        layers = explanation_layers_mentioned(reports[0], k=10)
        assert layers  # top features are congestion features on our data
        assert all(l[0] in "MV" for l in layers)

    def test_explanations_blame_real_layers(self, explain_setup, reports):
        """Sec. IV-B consistency: for a true hotspot, the explanation's
        layers should overlap the layers of actual violations nearby."""
        suite, flow = explain_setup
        for r in reports:
            if not r.is_actual_hotspot:
                continue
            actual_layers = {
                v.layer
                for v in flow.drc_report.violations_in_cell(flow.grid, r.cell)
            }
            mentioned = explanation_layers_mentioned(r, k=15)
            # via layers Vk in the explanation speak for metal k/k+1 EOLs
            expanded = set(mentioned)
            for l in mentioned:
                if l.startswith("V"):
                    k = int(l[1:])
                    expanded.add(f"M{k}")
                    expanded.add(f"M{k + 1}")
            assert actual_layers & expanded, (
                f"explanation layers {mentioned} vs actual {actual_layers}"
            )


class TestTrainExplanationForest:
    def test_excludes_target_group(self, explain_setup):
        suite, flow = explain_setup
        model = train_explanation_forest(suite, flow.design.name, preset="fast")
        # sanity: it predicts probabilities on the target design
        target = suite.by_name(flow.design.name)
        p = model.predict_proba(target.X)[:, 1]
        assert p.shape == (target.num_samples,)
        assert (0 <= p).all() and (p <= 1).all()
