"""Tests for the ASCII layout renderer (Fig. 2 analogue)."""

import pytest

from repro.layout.render import render_window_layout


class TestRenderWindowLayout:
    def test_contains_legend_and_header(self, small_flow):
        text = render_window_layout(small_flow.design, small_flow.grid, (5, 5))
        assert "legend" in text
        assert "g-cell (5,5)" in text

    def test_draws_cells_and_pins(self, small_flow):
        text = render_window_layout(small_flow.design, small_flow.grid, (5, 5))
        assert "%" in text  # cell bodies
        assert "*" in text  # pins

    def test_macro_rendered(self, small_flow):
        macro = small_flow.design.macros[0]
        mx, my = small_flow.grid.cell_of_point(macro.bbox.center)
        text = render_window_layout(small_flow.design, small_flow.grid, (mx, my))
        assert "#" in text

    def test_corner_window_clips(self, small_flow):
        text = render_window_layout(small_flow.design, small_flow.grid, (0, 0))
        assert "g-cell (0,0)" in text

    def test_out_of_grid_raises(self, small_flow):
        with pytest.raises(IndexError):
            render_window_layout(small_flow.design, small_flow.grid, (99, 99))

    def test_width_respected(self, small_flow):
        text = render_window_layout(
            small_flow.design, small_flow.grid, (5, 5), char_width=40
        )
        body = text.splitlines()[2:]
        assert all(len(line) <= 40 for line in body)
