"""Tests for congestion-map views and the ASCII renderer."""

import numpy as np
import pytest

from repro.layout.grid import WINDOW_EDGES
from repro.route.congestion import (
    render_layer_congestion,
    utilization_map,
    window_cell_via_cap_load,
    window_edge_cap_load,
)


class TestWindowLookups:
    def test_direction_mismatch_is_zero(self, small_flow):
        rgrid = small_flow.routing.rgrid
        v_edge = next(e for e in WINDOW_EDGES if e.orientation == "V")
        # M3 is horizontal: no values on V edges
        assert window_edge_cap_load(rgrid, (4, 4), v_edge, 3) == (0.0, 0.0)

    def test_matches_raw_arrays(self, small_flow):
        rgrid = small_flow.routing.rgrid
        h_edge = next(
            e for e in WINDOW_EDGES if e.orientation == "H" and e.cell_a == (0, 0)
        )
        cell = (5, 5)
        cap, load = window_edge_cap_load(rgrid, cell, h_edge, 3)
        assert cap == float(rgrid.metal_cap[3][5, 5])
        assert load == float(rgrid.metal_load[3][5, 5])

    def test_padded_edge_zero(self, small_flow):
        rgrid = small_flow.routing.rgrid
        edge = WINDOW_EDGES[0]  # touches the SW neighbourhood
        assert window_edge_cap_load(rgrid, (0, 0), edge, 3) == (0.0, 0.0)

    def test_via_lookup_matches(self, small_flow):
        rgrid = small_flow.routing.rgrid
        cap, load = window_cell_via_cap_load(rgrid, (4, 4), (1, 0), 1)
        assert cap == float(rgrid.via_cap[1][5, 4])
        assert load == float(rgrid.via_load[1][5, 4])

    def test_via_lookup_padded(self, small_flow):
        rgrid = small_flow.routing.rgrid
        assert window_cell_via_cap_load(rgrid, (0, 0), (-1, 0), 1) == (0.0, 0.0)


class TestUtilizationMap:
    def test_range_and_blocked(self, small_flow):
        rgrid = small_flow.routing.rgrid
        for m in (2, 3, 4, 5):
            util = utilization_map(rgrid, m)
            finite = util[np.isfinite(util)]
            assert (finite >= 0).all()

    def test_blocked_unused_edge_is_zero(self, small_flow):
        rgrid = small_flow.routing.rgrid
        util = utilization_map(rgrid, 2)
        blocked_unused = (rgrid.metal_cap[2] == 0) & (rgrid.metal_load[2] == 0)
        if blocked_unused.any():
            assert (util[blocked_unused] == 0).all()


class TestRenderer:
    def test_render_contains_center_marker(self, small_flow):
        text = render_layer_congestion(small_flow.routing.rgrid, 3, (5, 5))
        assert "M3" in text
        assert "[o]" in text

    def test_render_both_directions(self, small_flow):
        for m in (3, 4):
            text = render_layer_congestion(small_flow.routing.rgrid, m, (5, 5))
            assert f"M{m}" in text
            assert len(text.splitlines()) > 3

    def test_render_at_boundary(self, small_flow):
        # must not raise at the die corner
        text = render_layer_congestion(small_flow.routing.rgrid, 5, (0, 0))
        assert "[o]" in text


class TestRoutingReport:
    def test_report_contents(self, small_flow):
        from repro.route.report import layer_utilizations, routing_report

        text = routing_report(small_flow.routing, "testchip")
        assert "testchip" in text
        assert "total wirelength" in text
        assert "M3" in text and "V1" in text

        rows = layer_utilizations(small_flow.routing)
        by_layer = {r.layer: r for r in rows}
        assert len(rows) == 9  # M1..M5 + V1..V4
        assert by_layer["M1"].load == 0.0  # not used by GR
        assert by_layer["V1"].load > 0.0  # pin access vias
        for r in rows:
            assert 0.0 <= r.utilization or r.capacity == 0
