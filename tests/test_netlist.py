"""Tests for the netlist/design data model."""

import pytest

from repro.layout.geometry import Point, Rect
from repro.layout.netlist import Design
from repro.layout.technology import make_ispd2015_like_technology


@pytest.fixture()
def design():
    tech = make_ispd2015_like_technology()
    return Design(
        name="unit", technology=tech, die=Rect(0, 0, 10 * tech.gcell_size, 10 * tech.gcell_size)
    )


class TestCellsAndPins:
    def test_unplaced_pin_position_raises(self, design):
        cell = design.add_cell("c0", 40, 120)
        pin = cell.add_pin("a", Point(5, 5))
        with pytest.raises(RuntimeError):
            _ = pin.position

    def test_placed_pin_position(self, design):
        cell = design.add_cell("c0", 40, 120)
        pin = cell.add_pin("a", Point(5, 7))
        cell.position = Point(100, 200)
        assert pin.position == Point(105, 207)

    def test_cell_bbox(self, design):
        cell = design.add_cell("c0", 40, 120)
        cell.position = Point(10, 20)
        assert cell.bbox == Rect(10, 20, 50, 140)

    def test_duplicate_cell_name_detected(self, design):
        design.add_cell("c0", 40, 120)
        design.add_cell("c0", 40, 120)
        with pytest.raises(ValueError, match="duplicate"):
            design.validate()


class TestNets:
    def test_connect_and_backrefs(self, design):
        a = design.add_cell("a", 40, 120).add_pin("p", Point(1, 1))
        b = design.add_cell("b", 40, 120).add_pin("p", Point(1, 1))
        net = design.add_net("n0")
        net.connect(a)
        net.connect(b)
        assert net.degree == 2
        assert a.net is net

    def test_double_connect_raises(self, design):
        a = design.add_cell("a", 40, 120).add_pin("p", Point(1, 1))
        design.add_net("n0").connect(a)
        with pytest.raises(ValueError):
            design.add_net("n1").connect(a)

    def test_clock_net_marks_pins(self, design):
        a = design.add_cell("a", 40, 120).add_pin("p", Point(1, 1))
        design.add_net("clk", is_clock=True).connect(a)
        assert a.is_clock

    def test_ndr_validated_on_creation(self, design):
        with pytest.raises(KeyError):
            design.add_net("n0", ndr="bogus")

    def test_ndr_pin_property(self, design):
        a = design.add_cell("a", 40, 120).add_pin("p", Point(1, 1))
        design.add_net("n0", ndr="ndr_2w2s").connect(a)
        assert a.ndr == "ndr_2w2s"

    def test_hpwl(self, design):
        a = design.add_cell("a", 40, 120)
        b = design.add_cell("b", 40, 120)
        a.position = Point(0, 0)
        b.position = Point(100, 50)
        net = design.add_net("n0")
        net.connect(a.add_pin("p", Point(0, 0)))
        net.connect(b.add_pin("p", Point(0, 0)))
        assert net.hpwl() == 150

    def test_signal_nets_exclude_clock_and_dangling(self, design):
        cells = [design.add_cell(f"c{i}", 40, 120) for i in range(4)]
        pins = [c.add_pin("p", Point(1, 1)) for c in cells]
        sig = design.add_net("n0")
        sig.connect(pins[0])
        sig.connect(pins[1])
        clk = design.add_net("clk", is_clock=True)
        clk.connect(pins[2])
        clk.connect(pins[3])
        design.add_net("dangling")  # zero pins
        assert design.signal_nets() == [sig]


class TestMacrosAndBlockages:
    def test_macro_outside_die_raises(self, design):
        with pytest.raises(ValueError):
            design.add_macro("m", Rect(-10, 0, 100, 100))

    def test_routing_blockage_layers(self, design):
        design.add_macro("m", Rect(0, 0, 480, 480))
        assert design.routing_blockage_rects(1)  # M1 blocked by default
        assert design.routing_blockage_rects(3)
        assert not design.routing_blockage_rects(5)  # M5 open over macros

    def test_placement_blockages_include_macros(self, design):
        design.add_macro("m", Rect(0, 0, 480, 480))
        assert len(design.placement_blockage_rects()) == 1
