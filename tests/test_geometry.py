"""Unit and property tests for geometry primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.layout.geometry import Point, Rect, mean_pairwise_manhattan

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_manhattan_simple(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_euclidean_simple(self):
        assert Point(0, 0).euclidean(Point(3, 4)) == pytest.approx(5.0)

    def test_translate(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    @given(points, points)
    def test_manhattan_symmetric(self, a, b):
        assert a.manhattan(b) == b.manhattan(a)

    @given(points, points, points)
    def test_manhattan_triangle_inequality(self, a, b, c):
        assert a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-6

    @given(points)
    def test_manhattan_identity(self, a):
        assert a.manhattan(a) == 0.0

    @given(points, points)
    def test_manhattan_dominates_euclidean(self, a, b):
        assert a.manhattan(b) >= a.euclidean(b) - 1e-6


class TestRect:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_basic_measures(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.center == Point(2, 1)

    def test_from_points_any_order(self):
        assert Rect.from_points(Point(3, 1), Point(1, 5)) == Rect(1, 1, 3, 5)

    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(2.001, 1))

    def test_overlap_touching_counts(self):
        # matches the paper's hotspot rule: touching boxes overlap
        assert Rect(0, 0, 1, 1).overlaps(Rect(1, 0, 2, 1))

    def test_disjoint(self):
        assert not Rect(0, 0, 1, 1).overlaps(Rect(1.1, 0, 2, 1))

    def test_intersection(self):
        inter = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert inter == Rect(1, 1, 2, 2)
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_overlap_area(self):
        assert Rect(0, 0, 2, 2).overlap_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(1, 0, 2, 1)) == 0.0

    def test_bounding(self):
        box = Rect.bounding([Rect(0, 0, 1, 1), Rect(3, -1, 4, 0.5)])
        assert box == Rect(0, -1, 4, 1)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(1) == Rect(0, 0, 3, 3)

    def test_corners(self):
        corners = list(Rect(0, 0, 1, 2).corners())
        assert len(corners) == 4
        assert Point(0, 0) in corners
        assert Point(1, 2) in corners

    def test_centered_at(self):
        r = Rect.centered_at(Point(5, 5), 2, 4)
        assert r == Rect(4, 3, 6, 7)

    @given(st.lists(st.builds(Rect,
                              st.floats(0, 10), st.floats(0, 10),
                              st.floats(10, 20), st.floats(10, 20)),
                    min_size=1, max_size=8))
    def test_bounding_contains_all(self, rects):
        box = Rect.bounding(rects)
        assert all(box.contains_rect(r) for r in rects)

    @given(points, st.floats(0.1, 100), st.floats(0.1, 100))
    def test_centered_rect_contains_center(self, c, w, h):
        assert Rect.centered_at(c, w, h).contains_point(c)


class TestMeanPairwiseManhattan:
    def test_degenerate(self):
        assert mean_pairwise_manhattan([]) == 0.0
        assert mean_pairwise_manhattan([Point(1, 1)]) == 0.0

    def test_two_points(self):
        assert mean_pairwise_manhattan([Point(0, 0), Point(1, 2)]) == 3.0

    def test_three_points(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)]
        # pairs: 1, 1, 2 -> mean 4/3
        assert mean_pairwise_manhattan(pts) == pytest.approx(4.0 / 3.0)

    @given(st.lists(points, min_size=2, max_size=12))
    def test_matches_naive(self, pts):
        naive = []
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                naive.append(pts[i].manhattan(pts[j]))
        expected = sum(naive) / len(naive)
        got = mean_pairwise_manhattan(pts)
        assert got == pytest.approx(expected, rel=1e-9, abs=1e-6)
