"""Tests for the DEF-lite design exchange format."""

import pytest

from repro.bench.deflite import (
    DefLiteError,
    dumps_deflite,
    loads_deflite,
    read_deflite,
    write_deflite,
)
from repro.bench.generator import DesignRecipe, generate_design
from repro.place import place_design


@pytest.fixture(scope="module")
def design():
    d = generate_design(
        DesignRecipe(
            name="defio", grid_nx=8, grid_ny=8, utilization=0.6,
            num_macros=1, macro_area_frac=0.08, ndr_frac=0.1, seed=9,
        )
    )
    return d


class TestRoundTrip:
    def test_unplaced_roundtrip(self, design):
        text = dumps_deflite(design)
        back = loads_deflite(text)
        assert back.name == design.name
        assert back.num_cells == design.num_cells
        assert back.num_nets == design.num_nets
        assert len(back.macros) == len(design.macros)
        assert back.die.as_tuple() == design.die.as_tuple()

    def test_placed_roundtrip_exact(self, design, tmp_path):
        place_design(design)
        path = write_deflite(design, tmp_path / "d.deflite")
        back = read_deflite(path)
        assert back.is_placed
        for a, b in zip(design.cells, back.cells):
            assert a.name == b.name
            assert a.position.as_tuple() == b.position.as_tuple()

    def test_net_attributes_survive(self, design):
        back = loads_deflite(dumps_deflite(design))
        orig_ndr = {n.name: n.ndr for n in design.nets}
        orig_clk = {n.name: n.is_clock for n in design.nets}
        for net in back.nets:
            assert net.ndr == orig_ndr[net.name]
            assert net.is_clock == orig_clk[net.name]
            assert net.degree == next(
                n.degree for n in design.nets if n.name == net.name
            )

    def test_macro_blocked_layers_survive(self, design):
        back = loads_deflite(dumps_deflite(design))
        assert (
            back.macros[0].blocked_metal_indices
            == design.macros[0].blocked_metal_indices
        )

    def test_clock_pins_flagged(self, design):
        back = loads_deflite(dumps_deflite(design))
        n_clock = sum(1 for p in back.all_pins() if p.is_clock)
        assert n_clock == sum(1 for p in design.all_pins() if p.is_clock)

    def test_text_is_stable(self, design):
        assert dumps_deflite(design) == dumps_deflite(design)


class TestErrors:
    def test_empty(self):
        with pytest.raises(DefLiteError):
            loads_deflite("")

    def test_bad_header(self):
        with pytest.raises(DefLiteError):
            loads_deflite("NOPE 1\nEND\n")

    def test_bad_version(self):
        with pytest.raises(DefLiteError):
            loads_deflite("DEFLITE 99\nEND\n")

    def test_pin_outside_cell(self):
        text = "DEFLITE 1\nDESIGN x\nDIEAREA 0 0 100 100\nPIN p 1 1\nEND\n"
        with pytest.raises(DefLiteError, match="outside"):
            loads_deflite(text)

    def test_unknown_pin_ref(self):
        text = (
            "DEFLITE 1\nDESIGN x\nDIEAREA 0 0 100 100\n"
            "CELL c0 10 10 UNPLACED\n  PIN p 1 1\n"
            "NET n PINS c0/zzz\nEND\n"
        )
        with pytest.raises(DefLiteError, match="unknown pin"):
            loads_deflite(text)

    def test_unknown_record(self):
        text = "DEFLITE 1\nDESIGN x\nDIEAREA 0 0 100 100\nBOGUS\nEND\n"
        with pytest.raises(DefLiteError, match="unknown record"):
            loads_deflite(text)

    def test_comments_and_blanks_ignored(self):
        text = (
            "DEFLITE 1\n\n# a comment\nDESIGN x\nDIEAREA 0 0 100 100\n"
            "CELL c0 10 10 UNPLACED\n  PIN p 1 1\nEND\n"
        )
        d = loads_deflite(text)
        assert d.num_cells == 1


class TestFlowCompatibility:
    def test_parsed_design_routes(self, tmp_path):
        """A DEF-lite round-tripped design flows identically."""
        from repro.layout.grid import GCellGrid
        from repro.route import route_design

        d = generate_design(
            DesignRecipe(name="fio", grid_nx=8, grid_ny=8, utilization=0.55, seed=4)
        )
        place_design(d)
        back = loads_deflite(dumps_deflite(d))
        grid = GCellGrid.for_design_die(back.die, back.technology)
        r1 = route_design(d, GCellGrid.for_design_die(d.die, d.technology))
        r2 = route_design(back, grid)
        assert r1.total_wirelength == r2.total_wirelength
