"""White-box tests for placer internals (spectral init, forces, macros)."""

import numpy as np
import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.layout.geometry import Point, Rect
from repro.layout.netlist import Design
from repro.layout.technology import make_ispd2015_like_technology
from repro.place.placer import ForceDirectedPlacer, PlacerConfig


def _two_cluster_design() -> Design:
    """Two 8-cell cliques joined by a single net — a clear bipartition."""
    tech = make_ispd2015_like_technology()
    d = Design(name="2clust", technology=tech, die=Rect(0, 0, 2400, 2400))
    cells = [d.add_cell(f"c{i}", 40, tech.row_height) for i in range(16)]
    pins = {c.name: [c.add_pin(f"p{k}", Point(5, 5)) for k in range(6)] for c in cells}
    counters = {c.name: 0 for c in cells}

    def take(cell):
        pin = pins[cell.name][counters[cell.name]]
        counters[cell.name] += 1
        return pin

    nid = 0
    for base in (0, 8):
        group = cells[base : base + 8]
        for i in range(8):
            net = d.add_net(f"n{nid}")
            nid += 1
            net.connect(take(group[i]))
            net.connect(take(group[(i + 1) % 8]))
            net2 = d.add_net(f"n{nid}")
            nid += 1
            net2.connect(take(group[i]))
            net2.connect(take(group[(i + 3) % 8]))
    bridge = d.add_net("bridge")
    bridge.connect(take(cells[0]))
    bridge.connect(take(cells[8]))
    return d


class TestSpectralInit:
    def test_separates_clusters(self):
        d = _two_cluster_design()
        placer = ForceDirectedPlacer(d, PlacerConfig())
        cell_index = {id(c): i for i, c in enumerate(d.cells)}
        nets = placer._net_membership(cell_index)
        pos = placer._spectral_positions(len(d.cells), nets)
        a = pos[:8]
        b = pos[8:]
        # within-cluster spread must be smaller than the cluster separation
        sep = np.linalg.norm(a.mean(axis=0) - b.mean(axis=0))
        spread = max(a.std(axis=0).max(), b.std(axis=0).max())
        assert sep > spread

    def test_tiny_netlist_falls_back(self):
        tech = make_ispd2015_like_technology()
        d = Design(name="tiny", technology=tech, die=Rect(0, 0, 1200, 1200))
        for i in range(4):
            d.add_cell(f"c{i}", 40, tech.row_height).add_pin("p", Point(1, 1))
        placer = ForceDirectedPlacer(d)
        nets = placer._net_membership({id(c): i for i, c in enumerate(d.cells)})
        pos = placer._spectral_positions(4, nets)
        assert pos.shape == (4, 2)
        assert np.isfinite(pos).all()


class TestForces:
    def test_wirelength_force_pulls_together(self):
        d = _two_cluster_design()
        placer = ForceDirectedPlacer(d)
        cell_index = {id(c): i for i, c in enumerate(d.cells)}
        nets = placer._net_membership(cell_index)
        rng = np.random.default_rng(0)
        pos = rng.uniform(100, 2300, size=(16, 2))
        hpwl_proxy_before = _net_span(pos, nets)
        for _ in range(30):
            pos += 0.4 * placer._wirelength_force(pos, nets)
        assert _net_span(pos, nets) < hpwl_proxy_before

    def test_density_force_spreads_overfull_bin(self):
        d = _two_cluster_design()
        placer = ForceDirectedPlacer(d)
        # all cells piled into one point -> the bin is over target density
        pos = np.full((16, 2), 1200.0)
        areas = np.array([c.area for c in d.cells])
        force = placer._density_force(pos, areas)
        assert np.abs(force).sum() > 0.0

    def test_macro_pushout(self):
        tech = make_ispd2015_like_technology()
        d = Design(name="m", technology=tech, die=Rect(0, 0, 2400, 2400))
        d.add_macro("blk", Rect(960, 960, 1440, 1440))
        d.add_cell("c", 40, tech.row_height).add_pin("p", Point(1, 1))
        placer = ForceDirectedPlacer(d)
        pos = np.array([[1200.0, 1200.0]])  # inside the macro
        out = placer._push_out_of_macros(pos.copy())
        macro = d.macros[0].bbox.expanded(placer.config.macro_halo_gcells * tech.gcell_size)
        x, y = out[0]
        assert not (macro.xlo < x < macro.xhi and macro.ylo < y < macro.yhi)


def _net_span(pos: np.ndarray, nets) -> float:
    cell_ids, net_ids, n_nets = nets
    total = 0.0
    for n in range(n_nets):
        members = cell_ids[net_ids == n]
        p = pos[members]
        total += (p.max(axis=0) - p.min(axis=0)).sum()
    return total
