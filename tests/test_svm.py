"""Tests for the SMO-trained RBF-kernel SVM."""

import numpy as np
import pytest

from repro.ml.metrics import auc_roc
from repro.ml.svm import SVMClassifier, rbf_kernel
from tests.conftest import make_separable


def _blobs(n=200, gap=3.0, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(size=(n // 2, 2))
    X1 = rng.normal(size=(n // 2, 2)) + gap
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
    return X, y


class TestKernel:
    def test_rbf_diagonal_is_one(self):
        A = np.random.default_rng(0).normal(size=(10, 4))
        K = rbf_kernel(A, A, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_positive(self):
        A = np.random.default_rng(1).normal(size=(15, 3))
        K = rbf_kernel(A, A, gamma=0.2)
        assert np.allclose(K, K.T)
        assert (K > 0).all() and (K <= 1 + 1e-12).all()

    def test_rbf_decays_with_distance(self):
        a = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[5.0, 0.0]])
        assert rbf_kernel(a, near, 1.0)[0, 0] > rbf_kernel(a, far, 1.0)[0, 0]


class TestSVM:
    def test_separable_blobs(self):
        X, y = _blobs()
        m = SVMClassifier(C=1.0, random_state=0).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.98

    def test_margin_signs(self):
        X, y = _blobs(gap=5.0)
        m = SVMClassifier(C=1.0, random_state=0).fit(X, y)
        margins = m.decision_function(X)
        assert (margins[y == 1] > 0).mean() > 0.95
        assert (margins[y == 0] < 0).mean() > 0.95

    def test_kkt_dual_constraint(self):
        """At the solution, sum(alpha_i y_i) = 0 (the equality constraint)."""
        X, y = _blobs()
        m = SVMClassifier(C=1.0, random_state=0).fit(X, y)
        assert m.dual_coef_.sum() == pytest.approx(0.0, abs=1e-6)

    def test_support_vectors_subset(self):
        X, y = _blobs(gap=6.0)
        m = SVMClassifier(C=1.0, random_state=0).fit(X, y)
        # widely separated blobs need only a few SVs
        assert 0 < m.n_support_ < len(X) / 2

    def test_nonlinear_ring(self):
        """RBF must solve a radially separable problem a line cannot."""
        rng = np.random.default_rng(3)
        r = np.concatenate([rng.uniform(0, 1, 150), rng.uniform(2, 3, 150)])
        theta = rng.uniform(0, 2 * np.pi, 300)
        X = np.column_stack([r * np.cos(theta), r * np.sin(theta)])
        y = (r > 1.5).astype(int)
        m = SVMClassifier(C=10.0, random_state=0).fit(X, y)
        assert (m.predict(X) == y).mean() > 0.95

    def test_learns_realistic_data(self):
        X, y = make_separable(n=700, seed=40)
        Xte, yte = make_separable(n=300, seed=41)
        m = SVMClassifier(C=10.0, random_state=0).fit(X, y)
        assert auc_roc(yte, m.decision_function(Xte)) > 0.85

    def test_subsample_cap(self):
        X, y = make_separable(n=2000, pos_rate=0.2, seed=42)
        m = SVMClassifier(C=1.0, max_train_samples=500, random_state=0).fit(X, y)
        assert m.n_support_ <= 500

    def test_subsample_keeps_all_positives(self):
        X, y = make_separable(n=2000, pos_rate=0.05, seed=43)
        m = SVMClassifier(C=1.0, max_train_samples=300, random_state=0)
        Xs, ys = m._subsample(X, y, np.random.default_rng(0))
        assert ys.sum() == y.sum()

    def test_proba_bounds(self):
        X, y = _blobs()
        m = SVMClassifier(random_state=0).fit(X, y)
        p = m.predict_proba(X)
        assert (p >= 0).all() and (p <= 1).all()
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_num_parameters(self):
        X, y = _blobs()
        m = SVMClassifier(random_state=0).fit(X, y)
        assert m.num_parameters() == m.n_support_ * 3 + 1  # 2 features + coef + b

    def test_explicit_gamma(self):
        X, y = _blobs()
        m = SVMClassifier(gamma=0.3, random_state=0).fit(X, y)
        assert m.gamma_ == 0.3

    def test_bad_labels_raise(self):
        with pytest.raises(ValueError):
            SVMClassifier().fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            SVMClassifier().decision_function(np.zeros((1, 2)))
