"""Integration tests: the Fig. 1 flow and the suite builder."""

import numpy as np
import pytest

from repro.bench.generator import DesignRecipe
from repro.core.pipeline import build_suite_dataset, run_flow
from repro.features.names import NUM_FEATURES
from repro.layout.design_stats import design_statistics


class TestRunFlow:
    def test_all_artifacts_present(self, small_flow):
        flow = small_flow
        assert flow.design.is_placed
        assert flow.X.shape == (flow.grid.num_cells, NUM_FEATURES)
        assert flow.y.shape == (flow.grid.num_cells,)
        assert flow.stats.num_gcells == flow.grid.num_cells
        assert flow.stats.num_hotspots == int(flow.y.sum())
        assert set(flow.stage_seconds) == {
            "generate", "place", "global_route", "drc_sim", "features",
        }

    def test_labels_match_report(self, small_flow):
        mask = small_flow.drc_report.hotspot_mask(small_flow.grid)
        assert int(mask.sum()) == int(small_flow.y.sum())

    def test_dataset_property(self, small_flow):
        d = small_flow.dataset
        assert d.name == small_flow.design.name
        assert d.num_samples == small_flow.grid.num_cells

    def test_flow_deterministic(self):
        recipe = DesignRecipe(name="flowdet", grid_nx=8, grid_ny=8, seed=77)
        f1 = run_flow(recipe)
        f2 = run_flow(recipe)
        assert np.array_equal(f1.X, f2.X)
        assert np.array_equal(f1.y, f2.y)

    def test_stats_row(self, small_flow):
        row = small_flow.stats.format_row()
        assert "testchip" in row

    def test_design_statistics_fields(self, small_flow):
        stats = design_statistics(
            small_flow.design, small_flow.grid,
            small_flow.drc_report.num_hotspots(small_flow.grid),
        )
        assert stats.num_macros == 1
        assert stats.num_cells == small_flow.design.num_cells
        assert stats.layout_width_um == pytest.approx(
            small_flow.design.die.width / 100
        )
        assert 0.0 <= stats.hotspot_rate <= 1.0


class TestSuiteBuilder:
    def test_scaled_suite_with_cache(self, tmp_path):
        cache = tmp_path / "mini.npz"
        suite1, stats1 = build_suite_dataset(0.35, cache_path=cache)
        assert cache.exists()
        assert len(suite1.designs) == 14
        assert {d.group for d in suite1.designs} == {0, 1, 2, 3, 4}

        # second call loads from cache and returns identical data
        suite2, stats2 = build_suite_dataset(0.35, cache_path=cache)
        assert suite2.names == suite1.names
        for d1, d2 in zip(suite1.designs, suite2.designs):
            assert np.array_equal(d1.y, d2.y)
        assert [s.num_hotspots for s in stats1] == [s.num_hotspots for s in stats2]

    def test_group_assignment_matches_table1(self, tmp_path):
        suite, _ = build_suite_dataset(0.35, cache_path=tmp_path / "g.npz")
        from repro.bench.suite import group_index_of

        for d in suite.designs:
            assert d.group == group_index_of(d.name)
