"""Tests for the quantile bin mapper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.binning import BinMapper


class TestBinMapper:
    def test_constant_feature_single_bin(self):
        X = np.full((50, 1), 3.0)
        m = BinMapper().fit(X)
        assert m.num_bins(0) == 1
        assert (m.transform(X) == 0).all()

    def test_few_distinct_values_exact_bins(self):
        X = np.array([[0.0], [1.0], [1.0], [2.0], [2.0], [2.0]])
        m = BinMapper().fit(X)
        assert m.num_bins(0) == 3
        codes = m.transform(X).ravel()
        assert list(codes) == [0, 1, 1, 2, 2, 2]

    def test_codes_monotone_in_value(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 1))
        m = BinMapper().fit(X)
        codes = m.transform(X).ravel()
        order = np.argsort(X.ravel())
        assert (np.diff(codes[order].astype(int)) >= 0).all()

    def test_max_bins_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10_000, 1))
        m = BinMapper(max_bins=16).fit(X)
        assert m.num_bins(0) <= 16
        assert m.transform(X).max() <= 15

    def test_threshold_semantics(self):
        """code <= c  iff  x < threshold_value(f, c)."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 1))
        m = BinMapper(max_bins=8).fit(X)
        codes = m.transform(X).ravel()
        for c in range(m.num_bins(0) - 1):
            t = m.threshold_value(0, c)
            assert ((codes <= c) == (X.ravel() < t)).all()

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            BinMapper().transform(np.zeros((2, 2)))

    def test_bad_max_bins(self):
        with pytest.raises(ValueError):
            BinMapper(max_bins=1)
        with pytest.raises(ValueError):
            BinMapper(max_bins=500)

    @given(st.integers(0, 10_000), st.integers(2, 64))
    @settings(max_examples=30)
    def test_transform_within_bin_count(self, seed, max_bins):
        rng = np.random.default_rng(seed)
        X = rng.choice([0.0, 1.0, 2.5, 7.0, 7.5, 100.0], size=(200, 3))
        m = BinMapper(max_bins=max_bins).fit(X)
        codes = m.transform(X)
        for j in range(3):
            assert codes[:, j].max() < m.num_bins(j)
