"""Tests for the quantile bin mapper and the shared binned dataset."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.binning import BinMapper, BinnedDataset, as_binned_dataset
from repro.runtime.telemetry import Tracer, activate


def _reference_edges(X, max_bins):
    """The scalar per-column fit the vectorised BinMapper.fit must match."""
    edges = []
    for j in range(X.shape[1]):
        distinct = np.unique(X[:, j])
        if len(distinct) <= 1:
            edges.append(np.empty(0))
        elif len(distinct) <= max_bins:
            edges.append((distinct[:-1] + distinct[1:]) / 2.0)
        else:
            qs = np.linspace(0, 1, max_bins + 1)[1:-1]
            edges.append(np.unique(np.quantile(X[:, j], qs)))
    return edges


def _random_matrix(seed):
    """Columns mixing the mapper's three regimes: constant, exact-bin
    (few distinct values), and quantile-path (continuous)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 300))
    return np.column_stack(
        [
            np.full(n, 3.25),
            rng.choice([0.0, 1.0, 2.5, 7.0], size=n),
            rng.normal(size=n),
            np.round(rng.normal(size=n), 1),
        ]
    )


class TestBinMapper:
    def test_constant_feature_single_bin(self):
        X = np.full((50, 1), 3.0)
        m = BinMapper().fit(X)
        assert m.num_bins(0) == 1
        assert (m.transform(X) == 0).all()

    def test_few_distinct_values_exact_bins(self):
        X = np.array([[0.0], [1.0], [1.0], [2.0], [2.0], [2.0]])
        m = BinMapper().fit(X)
        assert m.num_bins(0) == 3
        codes = m.transform(X).ravel()
        assert list(codes) == [0, 1, 1, 2, 2, 2]

    def test_codes_monotone_in_value(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 1))
        m = BinMapper().fit(X)
        codes = m.transform(X).ravel()
        order = np.argsort(X.ravel())
        assert (np.diff(codes[order].astype(int)) >= 0).all()

    def test_max_bins_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10_000, 1))
        m = BinMapper(max_bins=16).fit(X)
        assert m.num_bins(0) <= 16
        assert m.transform(X).max() <= 15

    def test_threshold_semantics(self):
        """code <= c  iff  x < threshold_value(f, c)."""
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 1))
        m = BinMapper(max_bins=8).fit(X)
        codes = m.transform(X).ravel()
        for c in range(m.num_bins(0) - 1):
            t = m.threshold_value(0, c)
            assert ((codes <= c) == (X.ravel() < t)).all()

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            BinMapper().transform(np.zeros((2, 2)))

    def test_bad_max_bins(self):
        with pytest.raises(ValueError):
            BinMapper(max_bins=1)
        with pytest.raises(ValueError):
            BinMapper(max_bins=500)

    @given(st.integers(0, 10_000), st.integers(2, 64))
    @settings(max_examples=30)
    def test_transform_within_bin_count(self, seed, max_bins):
        rng = np.random.default_rng(seed)
        X = rng.choice([0.0, 1.0, 2.5, 7.0, 7.5, 100.0], size=(200, 3))
        m = BinMapper(max_bins=max_bins).fit(X)
        codes = m.transform(X)
        for j in range(3):
            assert codes[:, j].max() < m.num_bins(j)

    @given(st.integers(0, 10_000), st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_vectorised_fit_matches_scalar_reference(self, seed, max_bins):
        """The single-sort fit is bit-for-bit the per-column np.unique fit."""
        X = _random_matrix(seed)
        m = BinMapper(max_bins=max_bins).fit(X)
        for got, want in zip(m.edges_, _reference_edges(X, max_bins)):
            assert np.array_equal(got, want)

    @given(st.integers(0, 10_000), st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_vectorised_transform_matches_searchsorted(self, seed, max_bins):
        """The padded binary search is bit-for-bit the per-column
        searchsorted(..., side='right') it replaced."""
        X = _random_matrix(seed)
        m = BinMapper(max_bins=max_bins).fit(X)
        codes = m.transform(X)
        for j, cuts in enumerate(m.edges_):
            want = np.searchsorted(cuts, X[:, j], side="right")
            assert np.array_equal(codes[:, j], want.astype(np.uint8))

    @given(st.integers(0, 10_000), st.integers(2, 32))
    @settings(max_examples=30, deadline=None)
    def test_codes_thresholds_round_trip(self, seed, max_bins):
        """For every feature f and cut c: code <= c  ⇔  x < threshold(f, c).

        This is the property that lets a tree trained on codes store
        real-valued thresholds and classify unbinned data unchanged."""
        X = _random_matrix(seed)
        m = BinMapper(max_bins=max_bins).fit(X)
        codes = m.transform(X)
        for j in range(X.shape[1]):
            for c in range(m.num_bins(j) - 1):
                t = m.threshold_value(j, c)
                assert ((codes[:, j] <= c) == (X[:, j] < t)).all()


class TestBinnedDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        rng = np.random.default_rng(5)
        return BinnedDataset.from_matrix(rng.normal(size=(40, 3)), max_bins=8)

    def test_shapes_and_views(self, dataset):
        assert dataset.n_samples == 40
        assert dataset.n_features == 3
        assert dataset.n_bins_max == dataset.mapper.max_num_bins <= 8
        assert dataset.codes_T.flags["C_CONTIGUOUS"]
        assert np.array_equal(dataset.codes_T, dataset.codes.T)
        assert dataset.codes_T is dataset.codes_T  # computed once, cached

    def test_take_shares_mapper_without_rebinning(self, dataset):
        rows = np.array([1, 5, 7, 7])
        sub = dataset.take(rows)
        assert sub.mapper is dataset.mapper
        assert np.array_equal(sub.codes, dataset.codes[rows])

    def test_rejects_unfitted_mapper_and_bad_codes(self, dataset):
        with pytest.raises(ValueError):
            BinnedDataset(BinMapper(), dataset.codes)
        with pytest.raises(ValueError):
            BinnedDataset(dataset.mapper, dataset.codes.astype(np.float64))
        with pytest.raises(ValueError):
            BinnedDataset(dataset.mapper, dataset.codes[:, :2])

    def test_as_binned_dataset_coercions(self, dataset):
        assert as_binned_dataset(dataset, None) is dataset
        X = np.random.default_rng(6).normal(size=(10, 2))
        fresh = as_binned_dataset(None, X, max_bins=4)
        assert fresh.n_samples == 10
        legacy = as_binned_dataset((dataset.mapper, dataset.codes), None)
        assert legacy.mapper is dataset.mapper
        with pytest.raises(ValueError):
            as_binned_dataset(None, None)

    def test_binning_telemetry_counts_one_fit(self):
        rng = np.random.default_rng(7)
        tracer = Tracer()
        with activate(tracer):
            ds = BinnedDataset.from_matrix(rng.normal(size=(30, 2)))
            ds.take(np.arange(5))  # row slices never re-bin
        assert tracer.counters["ml.binning.fits"] == 1
        assert tracer.counters["ml.binning.transforms"] == 1
