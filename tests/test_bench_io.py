"""Tests for design/artifact serialization."""

import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.bench.io import load_artifact, load_design, save_artifact, save_design


class TestDesignIO:
    def test_roundtrip(self, tmp_path):
        d = generate_design(DesignRecipe(name="io", grid_nx=8, grid_ny=8, seed=2))
        path = save_design(d, tmp_path / "d.pkl")
        back = load_design(path)
        assert back.name == d.name
        assert back.num_cells == d.num_cells
        assert back.num_nets == d.num_nets
        # pin<->net backrefs survive pickling
        back.validate()

    def test_placed_design_roundtrip(self, tmp_path):
        from repro.place import place_design

        d = generate_design(DesignRecipe(name="iop", grid_nx=8, grid_ny=8, seed=3))
        place_design(d)
        back = load_design(save_design(d, tmp_path / "p.pkl"))
        assert back.is_placed
        assert back.cells[0].position == d.cells[0].position

    def test_artifact_roundtrip(self, tmp_path):
        payload = {"answer": 42, "values": [1, 2, 3]}
        path = save_artifact(payload, tmp_path / "a.pkl")
        assert load_artifact(path) == payload

    def test_bad_file_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        with open(path, "wb") as fh:
            pickle.dump([1, 2, 3], fh)
        with pytest.raises(ValueError):
            load_design(path)

    def test_version_mismatch_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "old.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"version": -1, "design": None}, fh)
        with pytest.raises(ValueError, match="format"):
            load_design(path)
