"""Tests for design/artifact serialization."""

import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.bench.io import load_artifact, load_design, save_artifact, save_design
from repro.runtime import CacheCorruptionError


class TestDesignIO:
    def test_roundtrip(self, tmp_path):
        d = generate_design(DesignRecipe(name="io", grid_nx=8, grid_ny=8, seed=2))
        path = save_design(d, tmp_path / "d.pkl")
        back = load_design(path)
        assert back.name == d.name
        assert back.num_cells == d.num_cells
        assert back.num_nets == d.num_nets
        # pin<->net backrefs survive pickling
        back.validate()

    def test_placed_design_roundtrip(self, tmp_path):
        from repro.place import place_design

        d = generate_design(DesignRecipe(name="iop", grid_nx=8, grid_ny=8, seed=3))
        place_design(d)
        back = load_design(save_design(d, tmp_path / "p.pkl"))
        assert back.is_placed
        assert back.cells[0].position == d.cells[0].position

    def test_artifact_roundtrip(self, tmp_path):
        payload = {"answer": 42, "values": [1, 2, 3]}
        path = save_artifact(payload, tmp_path / "a.pkl")
        assert load_artifact(path) == payload

    def test_bad_file_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        with open(path, "wb") as fh:
            pickle.dump([1, 2, 3], fh)
        with pytest.raises(ValueError):
            load_design(path)

    def test_version_mismatch_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "old.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"version": -1, "design": None}, fh)
        with pytest.raises(ValueError, match="format"):
            load_design(path)

    def test_version_mismatch_is_cache_corruption(self, tmp_path):
        import pickle

        path = tmp_path / "old.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"version": -1, "artifact": None}, fh)
        with pytest.raises(CacheCorruptionError):
            load_artifact(path)


class TestCorruptedFiles:
    """Truncated or garbage payloads raise the typed CacheCorruptionError."""

    def test_truncated_design_file(self, tmp_path):
        d = generate_design(DesignRecipe(name="tr", grid_nx=8, grid_ny=8, seed=4))
        path = save_design(d, tmp_path / "t.pkl")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])  # simulate an interrupted write
        with pytest.raises(CacheCorruptionError, match="truncated or corrupted"):
            load_design(path)

    def test_truncated_artifact_file(self, tmp_path):
        path = save_artifact({"k": list(range(1000))}, tmp_path / "t.pkl")
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(CacheCorruptionError):
            load_artifact(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"\x00\xde\xad\xbe\xef" * 8)
        with pytest.raises(CacheCorruptionError):
            load_artifact(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.pkl"
        path.write_bytes(b"")
        with pytest.raises(CacheCorruptionError):
            load_design(path)

    def test_wrong_payload_kind(self, tmp_path):
        # a valid design artefact is not an "artifact" payload and vice versa
        d = generate_design(DesignRecipe(name="wk", grid_nx=8, grid_ny=8, seed=5))
        path = save_design(d, tmp_path / "d.pkl")
        with pytest.raises(CacheCorruptionError, match="payload missing"):
            load_artifact(path)

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        save_artifact([1, 2, 3], tmp_path / "a.pkl")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.pkl"]
