"""Tests for pattern routing and A* maze routing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.route.maze import route_maze
from repro.route.patterns import route_pattern


def _path_is_4connected(path):
    for a, b in zip(path, path[1:]):
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


def _path_cost(path, cost_h, cost_v):
    total = 0.0
    for (ax, ay), (bx, by) in zip(path, path[1:]):
        if ay == by:
            total += cost_h[min(ax, bx), ay]
        else:
            total += cost_v[ax, min(ay, by)]
    return total


def _uniform(nx_, ny_):
    return np.ones((nx_ - 1, ny_)), np.ones((nx_, ny_ - 1))


class TestPatternRouting:
    def test_straight_horizontal(self):
        ch, cv = _uniform(6, 6)
        path, cost = route_pattern((0, 2), (4, 2), ch, cv)
        assert path == [(0, 2), (1, 2), (2, 2), (3, 2), (4, 2)]
        assert cost == 4

    def test_straight_vertical(self):
        ch, cv = _uniform(6, 6)
        path, cost = route_pattern((2, 0), (2, 3), ch, cv)
        assert len(path) == 4
        _path_is_4connected(path)

    def test_same_cell(self):
        ch, cv = _uniform(4, 4)
        assert route_pattern((1, 1), (1, 1), ch, cv) == ([(1, 1)], 0.0)

    def test_l_route_connects(self):
        ch, cv = _uniform(8, 8)
        path, cost = route_pattern((1, 1), (5, 6), ch, cv)
        assert path[0] == (1, 1) and path[-1] == (5, 6)
        _path_is_4connected(path)
        # shortest possible length on uniform costs
        assert cost == (5 - 1) + (6 - 1)

    def test_z_avoids_expensive_column(self):
        nx_, ny_ = 7, 7
        ch = np.ones((nx_ - 1, ny_))
        cv = np.ones((nx_, ny_ - 1))
        # make both L corners expensive; a Z through the middle is cheaper
        ch[:, 0] = 100.0  # bottom row horizontal edges
        ch[:, 5] = 100.0  # top row horizontal edges
        path, cost = route_pattern((0, 0), (6, 5), ch, cv)
        assert path[0] == (0, 0) and path[-1] == (6, 5)
        rows_used = {y for _, y in path}
        assert rows_used - {0, 5}, "expected a jog through an interior row"
        assert cost < 100

    def test_reported_cost_matches_path(self):
        rng = np.random.default_rng(0)
        ch = rng.uniform(1, 5, size=(9, 10))
        cv = rng.uniform(1, 5, size=(10, 9))
        path, cost = route_pattern((1, 2), (8, 7), ch, cv)
        assert cost == pytest.approx(_path_cost(path, ch, cv))


class TestMazeRouting:
    def test_simple_optimal(self):
        ch, cv = _uniform(5, 5)
        path, cost = route_maze((0, 0), (4, 4), ch, cv)
        assert cost == 8
        _path_is_4connected(path)

    def test_avoids_wall(self):
        nx_, ny_ = 5, 5
        ch = np.ones((nx_ - 1, ny_))
        cv = np.ones((nx_, ny_ - 1))
        cv[2, :] = 1000.0  # vertical moves in column 2 are terrible
        path, cost = route_maze((2, 0), (2, 4), ch, cv)
        assert path[0] == (2, 0) and path[-1] == (2, 4)
        assert cost < 1000

    def test_endpoint_validation(self):
        ch, cv = _uniform(4, 4)
        with pytest.raises(ValueError):
            route_maze((0, 0), (9, 9), ch, cv)

    def test_same_cell(self):
        ch, cv = _uniform(4, 4)
        assert route_maze((2, 2), (2, 2), ch, cv) == ([(2, 2)], 0.0)

    @given(
        st.integers(0, 5), st.integers(0, 5), st.integers(0, 5), st.integers(0, 5),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_maze_never_worse_than_pattern(self, ax, ay, bx, by, seed):
        """A* explores all paths, so it can only match or beat L/Z routing."""
        rng = np.random.default_rng(seed)
        ch = rng.uniform(0.5, 4.0, size=(5, 6))
        cv = rng.uniform(0.5, 4.0, size=(6, 5))
        p_path, p_cost = route_pattern((ax, ay), (bx, by), ch, cv)
        m_path, m_cost = route_maze((ax, ay), (bx, by), ch, cv)
        assert m_cost <= p_cost + 1e-9
        assert m_path[0] == (ax, ay) and m_path[-1] == (bx, by)
        assert p_path[0] == (ax, ay) and p_path[-1] == (bx, by)
        _path_is_4connected(m_path)
        _path_is_4connected(p_path)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_maze_matches_dijkstra(self, seed):
        """A* cost equals networkx shortest path on the same grid graph."""
        import networkx as nx

        rng = np.random.default_rng(seed)
        n = 5
        ch = rng.uniform(0.5, 4.0, size=(n - 1, n))
        cv = rng.uniform(0.5, 4.0, size=(n, n - 1))
        g = nx.Graph()
        for x in range(n - 1):
            for y in range(n):
                g.add_edge((x, y), (x + 1, y), weight=ch[x, y])
        for x in range(n):
            for y in range(n - 1):
                g.add_edge((x, y), (x, y + 1), weight=cv[x, y])
        expected = nx.shortest_path_length(g, (0, 0), (n - 1, n - 1), weight="weight")
        _, cost = route_maze((0, 0), (n - 1, n - 1), ch, cv)
        assert cost == pytest.approx(expected)
