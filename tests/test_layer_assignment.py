"""White-box tests for the router's layer assignment and via accounting."""

import numpy as np
import pytest

from repro.layout.geometry import Point, Rect
from repro.layout.grid import GCellGrid
from repro.layout.netlist import Design
from repro.layout.technology import make_ispd2015_like_technology
from repro.route.router import GlobalRouter


def _line_design(horizontal: bool = True, ndr: str | None = None) -> Design:
    """Two connected cells three g-cells apart along one axis."""
    tech = make_ispd2015_like_technology()
    g = tech.gcell_size
    d = Design(name="line", technology=tech, die=Rect(0, 0, 5 * g, 5 * g))
    a = d.add_cell("a", 40, tech.row_height)
    b = d.add_cell("b", 40, tech.row_height)
    if horizontal:
        a.position = Point(0.5 * g, 2 * g + 10)
        b.position = Point(3.5 * g, 2 * g + 10)
    else:
        a.position = Point(2 * g + 10, 0.5 * g)
        b.position = Point(2 * g + 10, 3.5 * g)
    net = d.add_net("n0", ndr=ndr)
    net.connect(a.add_pin("p", Point(1, 1)))
    net.connect(b.add_pin("p", Point(1, 1)))
    return d


class TestLayerAssignment:
    def test_horizontal_net_loads_horizontal_layers(self):
        d = _line_design(horizontal=True)
        rr = GlobalRouter(d).run()
        rg = rr.rgrid
        h_load = sum(rg.metal_load[m].sum() for m in rg.h_layers)
        v_load = sum(rg.metal_load[m].sum() for m in rg.v_layers)
        assert h_load == pytest.approx(3.0)  # 3 edges crossed
        assert v_load == 0.0

    def test_vertical_net_loads_vertical_layers(self):
        d = _line_design(horizontal=False)
        rr = GlobalRouter(d).run()
        rg = rr.rgrid
        h_load = sum(rg.metal_load[m].sum() for m in rg.h_layers)
        v_load = sum(rg.metal_load[m].sum() for m in rg.v_layers)
        assert v_load == pytest.approx(3.0)
        assert h_load == 0.0

    def test_pin_access_via_stacks(self):
        d = _line_design(horizontal=True)
        rr = GlobalRouter(d).run()
        rg = rr.rgrid
        # wire rides a horizontal GR layer (M3 or M5); each endpoint grows a
        # via stack from M1 up to that layer, plus 1 V1 per pin access
        wire_layer = next(m for m in rg.h_layers if rg.metal_load[m].sum() > 0)
        grid = rg.grid
        a_cell = grid.cell_of_point(d.cells[0].pins[0].position)
        for v in range(1, wire_layer):
            assert rg.via_load[v][a_cell] >= 1.0, f"missing V{v} at endpoint"
        # V1 also counts the plain pin access of both pins
        assert rg.via_load[1].sum() >= 2.0

    def test_ndr_net_consumes_double_tracks(self):
        plain = GlobalRouter(_line_design(horizontal=True)).run()
        ndr = GlobalRouter(_line_design(horizontal=True, ndr="ndr_2w2s")).run()
        plain_load = sum(plain.rgrid.metal_load[m].sum() for m in (3, 5))
        ndr_load = sum(ndr.rgrid.metal_load[m].sum() for m in (3, 5))
        assert ndr_load == pytest.approx(2 * plain_load)

    def test_bend_produces_intermediate_vias(self):
        """An L-shaped net bends once; the bend cell gets a via stack
        between the two wire layers."""
        tech = make_ispd2015_like_technology()
        g = tech.gcell_size
        d = Design(name="bend", technology=tech, die=Rect(0, 0, 5 * g, 5 * g))
        a = d.add_cell("a", 40, tech.row_height)
        b = d.add_cell("b", 40, tech.row_height)
        a.position = Point(0.5 * g, 0.5 * g)
        b.position = Point(3.5 * g, 3.5 * g)
        net = d.add_net("n0")
        net.connect(a.add_pin("p", Point(1, 1)))
        net.connect(b.add_pin("p", Point(1, 1)))
        rr = GlobalRouter(d).run()
        rg = rr.rgrid
        # both directions carry load
        assert sum(rg.metal_load[m].sum() for m in rg.h_layers) > 0
        assert sum(rg.metal_load[m].sum() for m in rg.v_layers) > 0
        # and some via layer above V1 is used (bend or pin stacks)
        assert sum(rg.via_load[v].sum() for v in (2, 3, 4)) > 0

    def test_straight_runs_helper(self):
        runs = GlobalRouter._straight_runs(
            [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2), (3, 2)]
        )
        assert [r[0] for r in runs] == ["H", "V", "H"]
        assert runs[0][1] == [(0, 0), (1, 0), (2, 0)]
        assert runs[1][1] == [(2, 0), (2, 1), (2, 2)]

    def test_straight_runs_single_cell(self):
        assert GlobalRouter._straight_runs([(1, 1)]) == []
