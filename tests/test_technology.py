"""Tests for the technology description."""

import pytest

from repro.layout.technology import (
    HORIZONTAL,
    VERTICAL,
    make_ispd2015_like_technology,
)


@pytest.fixture()
def tech():
    return make_ispd2015_like_technology()


class TestStack:
    def test_five_metals_four_vias(self, tech):
        assert tech.num_metal_layers == 5
        assert tech.num_via_layers == 4

    def test_alternating_directions(self, tech):
        dirs = [tech.metal(m).direction for m in range(1, 6)]
        assert dirs == [HORIZONTAL, VERTICAL, HORIZONTAL, VERTICAL, HORIZONTAL]

    def test_layer_names(self, tech):
        assert tech.metal(3).name == "M3"
        assert tech.via(2).name == "V2"

    def test_via_connects_consecutive_metals(self, tech):
        for v in range(1, 5):
            via = tech.via(v)
            assert via.upper_metal == via.lower_metal + 1

    def test_gr_layers_exclude_m1(self, tech):
        assert tech.gr_metal_indices == (2, 3, 4, 5)
        assert tech.gr_via_indices == (1, 2, 3, 4)


class TestCapacity:
    def test_edge_capacity_positive_and_derated(self, tech):
        for m in tech.gr_metal_indices:
            cap = tech.edge_capacity(m)
            tracks = int(tech.gcell_size / tech.metal(m).pitch)
            assert 0 < cap <= tracks

    def test_upper_layers_have_fewer_tracks(self, tech):
        # wider pitch on M4/M5 means less capacity than M2/M3
        assert tech.edge_capacity(4) < tech.edge_capacity(2)

    def test_via_capacity_positive(self, tech):
        for v in range(1, 5):
            assert tech.via_capacity(v) > 0

    def test_via_capacity_decreases_with_spacing(self, tech):
        assert tech.via_capacity(4) <= tech.via_capacity(1)


class TestNDR:
    def test_lookup(self, tech):
        rule = tech.ndr("ndr_2w2s")
        assert rule.width_multiplier == 2.0

    def test_unknown_raises(self, tech):
        with pytest.raises(KeyError):
            tech.ndr("nope")

    def test_track_cost_scales(self, tech):
        assert tech.ndr("ndr_2w2s").track_cost == 2
        assert tech.ndr("ndr_3w3s").track_cost == 3

    def test_default_rule_costs_one_track(self):
        from repro.layout.technology import NonDefaultRule

        assert NonDefaultRule("unit", 1.0, 1.0).track_cost == 1
