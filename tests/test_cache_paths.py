"""Cache-location resolution and temp-file naming.

Regression coverage for two latent bugs: ``default_cache_path`` hard-wired
caches into the package's install tree (read-only/shared for installed
packages, and blind to ``$DRCSHAP_CACHE_DIR``), and atomic-write temp names
embedded only the PID, so two writers in one process — threads, or the same
re-entrant call — could collide.
"""

from __future__ import annotations

import os
from pathlib import Path

import repro.core.pipeline as pipeline
from repro.core.pipeline import default_cache_path, default_cache_root
from repro.runtime.checkpoint import atomic_write_bytes, unique_tmp_suffix


class TestDefaultCacheRoot:
    def test_env_var_overrides_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("DRCSHAP_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"

    def test_env_var_expands_user(self, monkeypatch):
        monkeypatch.setenv("DRCSHAP_CACHE_DIR", "~/drc-caches")
        assert default_cache_root() == Path.home() / "drc-caches"

    def test_source_checkout_uses_repo_dot_cache(self, monkeypatch):
        monkeypatch.delenv("DRCSHAP_CACHE_DIR", raising=False)
        assert (pipeline._SOURCE_ROOT / "pyproject.toml").is_file()
        assert default_cache_root() == pipeline._SOURCE_ROOT / ".cache"

    def test_installed_package_falls_back_to_user_cache(self, tmp_path, monkeypatch):
        # simulate site-packages: no pyproject.toml above the package
        monkeypatch.delenv("DRCSHAP_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setattr(pipeline, "_SOURCE_ROOT", tmp_path / "site-packages")
        assert default_cache_root() == Path.home() / ".cache" / "drcshap"

    def test_installed_package_honours_xdg(self, tmp_path, monkeypatch):
        monkeypatch.delenv("DRCSHAP_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        monkeypatch.setattr(pipeline, "_SOURCE_ROOT", tmp_path / "site-packages")
        assert default_cache_root() == tmp_path / "xdg" / "drcshap"

    def test_cache_path_embeds_scale(self, tmp_path, monkeypatch):
        monkeypatch.setenv("DRCSHAP_CACHE_DIR", str(tmp_path))
        assert default_cache_path(1.0) == tmp_path / "suite_scale1.npz"
        assert default_cache_path(0.3) == tmp_path / "suite_scale0p3.npz"
        # distinct scales must never share a cache file
        assert default_cache_path(0.3) != default_cache_path(0.35)


class TestUniqueTmpSuffix:
    def test_suffixes_are_unique_within_a_process(self):
        suffixes = {unique_tmp_suffix() for _ in range(100)}
        assert len(suffixes) == 100

    def test_suffix_still_carries_pid(self):
        # the PID keeps cross-process names disjoint; the counter handles
        # same-process concurrency
        assert str(os.getpid()) in unique_tmp_suffix()

    def test_atomic_writes_interleave_without_collision(self, tmp_path):
        import threading

        target = tmp_path / "shared.bin"
        errors: list[Exception] = []

        def writer(payload: bytes) -> None:
            try:
                for _ in range(20):
                    atomic_write_bytes(target, payload)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(bytes([i]) * 64,))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # the final file is one writer's payload, intact — never interleaved
        data = target.read_bytes()
        assert len(data) == 64 and len(set(data)) == 1
        # no orphaned temp files survive
        assert list(tmp_path.glob(".*.tmp*")) == []
