"""Exactness of the binned CART split search.

With fewer distinct feature values than bins, binning is lossless and the
histogram split search must find exactly the impurity-optimal split a
brute-force scan finds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tree import DecisionTreeClassifier


def _gini(y: np.ndarray) -> float:
    if len(y) == 0:
        return 0.0
    p = y.mean()
    return 2.0 * p * (1.0 - p)


def _best_split_brute(X: np.ndarray, y: np.ndarray) -> float:
    """Minimum weighted child gini over all (feature, threshold) splits."""
    n = len(y)
    best = np.inf
    for j in range(X.shape[1]):
        values = np.unique(X[:, j])
        for lo, hi in zip(values[:-1], values[1:]):
            thr = (lo + hi) / 2.0
            left = y[X[:, j] < thr]
            right = y[X[:, j] >= thr]
            score = (len(left) * _gini(left) + len(right) * _gini(right)) / n
            best = min(best, score)
    return best


class TestRootSplitOptimality:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_root_split_is_optimal(self, seed):
        rng = np.random.default_rng(seed)
        # few distinct values -> binning is lossless
        X = rng.choice([0.0, 1.0, 2.0, 3.0, 4.0], size=(60, 3))
        y = rng.integers(0, 2, size=60).astype(np.int8)
        if y.sum() in (0, 60):
            return

        tree = DecisionTreeClassifier(
            max_depth=1, max_features=None, random_state=0
        ).fit(X, y)
        t = tree.tree_
        if t.node_count == 1:  # no split improved impurity
            brute = _best_split_brute(X, y)
            assert brute >= _gini(y) - 1e-9
            return

        feat = int(t.feature[0])
        thr = float(t.threshold[0])
        left = y[X[:, feat] < thr]
        right = y[X[:, feat] >= thr]
        ours = (len(left) * _gini(left) + len(right) * _gini(right)) / len(y)
        brute = _best_split_brute(X, y)
        assert ours == pytest.approx(brute, abs=1e-12)

    def test_threshold_lies_between_values(self):
        X = np.array([[0.0], [0.0], [10.0], [10.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier(max_features=None, random_state=0).fit(X, y)
        assert 0.0 < tree.tree_.threshold[0] < 10.0
