"""Telemetry layer: spans, metrics, sinks, CLI surfacing, determinism.

Covers the tracer primitives (nesting, disabled no-ops, snapshot/adopt),
the JSONL trace and manifest sinks (round-trip, schema validation,
stable_view), the flow/runner instrumentation, the CLI flags and the
``drcshap trace`` inspector — and the headline invariant: a serial and a
``--jobs 2`` suite build produce semantically identical manifests.
"""

from __future__ import annotations

import json

import pytest

import repro.core.pipeline as pipeline
from repro.cli import main
from repro.runtime import FailureLog, FailureRecord, FaultTolerantRunner
from repro.runtime.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    Tracer,
    activate,
    build_manifest,
    get_tracer,
    load_trace,
    manifest_path_for,
    new_run_id,
    stable_view,
    summarize_stages,
    write_manifest,
    write_trace,
)


class TestTracer:
    def test_span_nesting_and_timing(self):
        tracer = Tracer()
        with tracer.span("outer", design="d") as outer:
            with tracer.span("inner"):
                pass
        assert [r.name for r in tracer.roots] == ["outer"]
        assert outer.attrs == {"design": "d"}
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.wall_s >= outer.children[0].wall_s >= 0.0
        assert outer.self_s <= outer.wall_s

    def test_span_set_attaches_attrs(self):
        tracer = Tracer()
        with tracer.span("s") as node:
            node.set(iterations=3)
        assert tracer.roots[0].attrs["iterations"] == 3

    def test_counters_and_gauges(self):
        tracer = Tracer()
        tracer.counter("c", 0)  # zero-registration
        tracer.counter("c", 2)
        tracer.counter("c")
        tracer.gauge("g", 1.5)
        tracer.gauge("g", 2.5)
        assert tracer.counters == {"c": 3}
        assert tracer.gauges == {"g": 2.5}

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("s") as node:
            node.set(x=1)  # must not raise
        tracer.counter("c")
        tracer.gauge("g", 1.0)
        tracer.note_failure({"unit": "u"})
        assert tracer.roots == []
        assert tracer.counters == {}
        assert tracer.gauges == {}
        assert tracer.failures == []

    def test_ambient_default_is_disabled(self):
        assert get_tracer().enabled is False

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with activate(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is not tracer

    def test_snapshot_adopt_merges_under_open_span(self):
        worker = Tracer()
        with worker.span("unit"):
            worker.counter("n", 2)
            worker.gauge("g", 7.0)
        parent = Tracer()
        parent.counter("n", 1)
        with parent.span("suite"):
            parent.adopt(worker.snapshot())
        root = parent.roots[0]
        assert [c.name for c in root.children] == ["unit"]
        assert parent.counters == {"n": 3}
        assert parent.gauges == {"g": 7.0}

    def test_adopt_none_and_disabled(self):
        tracer = Tracer()
        tracer.adopt(None)  # no-op
        disabled = Tracer(enabled=False)
        disabled.adopt(Tracer().snapshot())
        assert disabled.roots == []


class TestSinks:
    def _run(self) -> Tracer:
        tracer = Tracer(run_id=new_run_id())
        with tracer.span("suite"):
            with tracer.span("flow", design="a"):
                with tracer.span("place"):
                    pass
            with tracer.span("flow", design="b"):
                with tracer.span("place"):
                    pass
        tracer.counter("cache.hits", 2)
        tracer.gauge("overflow", 0.5)
        tracer.note_failure({"stage": "flow", "unit": "c",
                             "error_type": "RuntimeError",
                             "elapsed_s": 1.0, "last_attempt_s": 0.5,
                             "run_id": tracer.run_id})
        return tracer

    def test_trace_roundtrip(self, tmp_path):
        tracer = self._run()
        path = write_trace(tracer, tmp_path / "t.jsonl", "suite", ["--scale", "1"])
        doc = load_trace(path)
        assert doc.meta["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert doc.meta["run_id"] == tracer.run_id
        assert doc.meta["command"] == "suite"
        assert [r.name for r in doc.roots] == ["suite"]
        flows = doc.roots[0].children
        assert [f.attrs["design"] for f in flows] == ["a", "b"]
        assert [c.name for c in flows[0].children] == ["place"]
        assert doc.counters == {"cache.hits": 2}
        assert doc.gauges == {"overflow": 0.5}
        assert len(doc.failures) == 1 and doc.failures[0]["unit"] == "c"

    def test_load_trace_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        with pytest.raises(ValueError, match="not a trace event"):
            load_trace(bad)

    def test_load_trace_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "v99.jsonl"
        bad.write_text(json.dumps({"ev": "meta", "schema_version": 99}) + "\n")
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_trace(bad)

    def test_load_trace_requires_meta(self, tmp_path):
        bad = tmp_path / "nometa.jsonl"
        bad.write_text(json.dumps({"ev": "counter", "name": "c", "value": 1}) + "\n")
        with pytest.raises(ValueError, match="missing meta"):
            load_trace(bad)

    def test_summarize_stages_collapses_same_name_paths(self):
        tracer = self._run()
        rows = {r["path"]: r for r in summarize_stages(tracer.roots)}
        assert rows["suite"]["count"] == 1
        assert rows["suite/flow"]["count"] == 2  # attrs excluded from the key
        assert rows["suite/flow/place"]["count"] == 2
        assert list(rows) == sorted(rows)

    def test_manifest_and_stable_view(self, tmp_path):
        tracer = self._run()
        manifest = build_manifest(tracer, "suite", ["-j", "2"], {"jobs": 2})
        path = write_manifest(manifest, manifest_path_for(tmp_path / "t.jsonl"))
        assert path.name == "t.manifest.json"
        loaded = json.loads(path.read_text())
        assert loaded["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert loaded["versions"]["python"]
        view = stable_view(loaded)
        # volatile fields stripped...
        assert "run_id" not in view and "versions" not in view
        assert all("wall_s" not in s for s in view["stages"])
        assert all("last_attempt_s" not in f and "run_id" not in f
                   for f in view["failures"])
        # ...but semantic content kept
        assert {"path": "suite/flow", "count": 2} in view["stages"]
        assert view["counters"] == {"cache.hits": 2}
        assert view["failures"][0]["unit"] == "c"


class TestFlowInstrumentation:
    def test_run_flow_spans_cover_all_stages(self):
        tracer = Tracer()
        with activate(tracer):
            result = pipeline.run_flow(
                pipeline.DesignRecipe(name="t", grid_nx=8, grid_ny=8,
                                      utilization=0.55, seed=3)
            )
        flow = tracer.roots[0]
        assert flow.name == "flow" and flow.attrs["design"] == "t"
        stage_names = [c.name for c in flow.children]
        assert stage_names == list(pipeline.FLOW_STAGES)
        # stage_seconds is a derived view of the very same spans
        assert result.stage_seconds == {
            c.name: c.wall_s for c in flow.children
        }
        # router phase spans nest inside global_route
        gr = flow.children[stage_names.index("global_route")]
        assert {"pattern_pass", "negotiation", "layer_assignment"} <= {
            c.name for c in gr.children
        }

    def test_run_flow_stage_seconds_without_tracer(self):
        # ambient tracer disabled: timings still measured, nothing recorded
        assert not get_tracer().enabled
        result = pipeline.run_flow(
            pipeline.DesignRecipe(name="t", grid_nx=8, grid_ny=8,
                                  utilization=0.55, seed=3)
        )
        assert set(result.stage_seconds) == set(pipeline.FLOW_STAGES)
        assert all(v >= 0 for v in result.stage_seconds.values())


class TestFailureTelemetry:
    def test_failure_record_carries_attempt_timing_and_run_id(self):
        rec = FailureRecord(stage="flow", unit="u", attempts=2,
                            error_type="RuntimeError", message="boom",
                            elapsed_s=1.5, last_attempt_s=0.25, run_id="r1")
        doc = rec.to_dict()
        assert doc["last_attempt_s"] == 0.25
        assert doc["run_id"] == "r1"

    def test_failure_log_cross_references_active_tracer(self):
        tracer = Tracer()
        log = FailureLog()
        with activate(tracer):
            log.record(FailureRecord(stage="flow", unit="u", attempts=1,
                                     error_type="E", message="m",
                                     elapsed_s=0.1))
        assert len(tracer.failures) == 1
        assert tracer.failures[0]["unit"] == "u"

    def test_runner_failure_stamps_run_id_and_counters(self):
        tracer = Tracer(run_id="run-x")

        def boom():
            raise RuntimeError("nope")

        with activate(tracer):
            runner = FaultTolerantRunner()
            outcome = runner.run_unit("flow", "bad", boom)
        assert not outcome.ok
        assert outcome.failure.run_id == "run-x"
        assert outcome.failure.last_attempt_s >= 0.0
        assert tracer.counters["runner.failed_units"] == 1
        assert tracer.failures[0]["unit"] == "bad"

    def test_run_units_registers_runner_counters(self):
        tracer = Tracer()
        with activate(tracer):
            FaultTolerantRunner().run_units("s", [("u", lambda: 1, (), {})])
        assert tracer.counters["runner.retries"] == 0
        assert tracer.counters["runner.timeouts"] == 0
        assert tracer.counters["runner.failed_units"] == 0


class TestCLIValidation:
    def test_rejects_jobs_below_one(self):
        with pytest.raises(SystemExit) as exc:
            main(["suite", "--jobs", "0"])
        assert exc.value.code == 2

    def test_rejects_negative_max_retries(self):
        with pytest.raises(SystemExit) as exc:
            main(["suite", "--max-retries", "-1"])
        assert exc.value.code == 2

    def test_rejects_non_integer_jobs(self):
        with pytest.raises(SystemExit) as exc:
            main(["suite", "--jobs", "two"])
        assert exc.value.code == 2

    def test_rejects_unwritable_trace_dir(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "t.jsonl"
        with pytest.raises(SystemExit) as exc:
            main(["suite", "--trace", str(missing)])
        assert exc.value.code == 2


class TestCLITelemetry:
    def test_flow_trace_writes_sinks_and_inspector_reads_them(
        self, tmp_path, capsys
    ):
        trace = tmp_path / "run.jsonl"
        assert main(["flow", "--grid", "8", "--utilization", "0.55",
                     "--seed", "3", "--trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert "telemetry:" in err
        manifest = manifest_path_for(trace)
        assert trace.exists() and manifest.exists()

        assert main(["trace", str(trace)]) == 0
        out = capsys.readouterr().out
        for stage in pipeline.FLOW_STAGES:
            assert stage in out
        assert "top" in out and "counters:" in out

        assert main(["trace", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "flow/flow/place" in out
        assert "counters:" in out

    def test_flow_without_trace_creates_no_sinks(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["flow", "--grid", "8", "--utilization", "0.55",
                     "--seed", "3"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_no_telemetry_suppresses_sinks(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["flow", "--grid", "8", "--utilization", "0.55",
                     "--seed", "3", "--trace", str(trace),
                     "--no-telemetry"]) == 0
        assert not trace.exists()
        assert not manifest_path_for(trace).exists()

    def test_trace_inspector_rejects_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n")
        assert main(["trace", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_inspector_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestDeterminism:
    """Serial and parallel runs must be semantically indistinguishable."""

    @pytest.fixture()
    def two_design_suite(self, monkeypatch):
        real = pipeline.suite_recipes
        monkeypatch.setattr(
            pipeline, "suite_recipes", lambda scale: real(scale)[:2]
        )

    def _run_suite(self, tmp_path, monkeypatch, tag: str, jobs: int) -> dict:
        import repro.cli as cli

        cache = tmp_path / tag / "suite.npz"
        cache.parent.mkdir()
        monkeypatch.setattr(cli, "default_cache_path",
                            lambda scale=1.0: cache)
        trace = tmp_path / tag / "run.jsonl"
        argv = ["suite", "--scale", "0.3", "--no-cache", "--no-resume",
                "--trace", str(trace)]
        if jobs > 1:
            argv += ["-j", str(jobs)]
        assert main(argv) == 0
        return json.loads(manifest_path_for(trace).read_text())

    def test_serial_and_parallel_manifests_identical(
        self, tmp_path, monkeypatch, two_design_suite, capsys
    ):
        serial = self._run_suite(tmp_path, monkeypatch, "serial", jobs=1)
        par = self._run_suite(tmp_path, monkeypatch, "parallel", jobs=2)
        assert stable_view(serial) == stable_view(par)
        # sanity: the view actually covers the flow span structure
        paths = {s["path"] for s in stable_view(serial)["stages"]}
        assert "suite/flow/place" in paths
        assert {s["path"]: s["count"] for s in stable_view(serial)["stages"]}[
            "suite/flow"
        ] == 2
