"""Crash-safe supervised execution: pool supervision, quarantine, shutdown.

Covers the supervision layer in isolation (crash recovery, poison-task
quarantine, heartbeat hang detection, respawn limits), the graceful
SIGTERM/SIGINT path (serial and parallel runners, the resumable CLI exit
code), and the durability satellites (orphan temp sweep, lenient trace
loading, failure-record kinds).

The acceptance bar, per the crash-safety design: SIGKILLing a worker
mid-suite never aborts the run — the affected design is retried on a
respawned pool or quarantined as a ``worker_crash`` failure, and a
subsequent ``--resume`` completes with output byte-identical to an
uninterrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.pipeline import build_suite_dataset
from repro.runtime import (
    CheckpointStore,
    FaultTolerantRunner,
    ParallelRunner,
    RetryPolicy,
    load_trace,
    sweep_orphan_temps,
)
from repro.runtime import faults as faults_mod
from repro.runtime.errors import (
    PoolRespawnLimitError,
    ShutdownRequested,
    WorkerCrashError,
)
from repro.runtime.faults import FaultSpec, execute_directive, inject_faults
from repro.runtime.runner import FailureRecord
from repro.runtime.supervision import (
    graceful_shutdown,
    shutdown_requested,
    shutdown_signum,
)
from repro.runtime.telemetry import Tracer, activate, write_trace

SCALE = 0.3

#: Quick retries, no real backoff waiting: supervision tests exercise crash
#: paths, not the retry scheduler.
FAST_RETRIES = dict(policy=RetryPolicy(max_retries=3, backoff_base_s=0.01))


# Unit bodies must be module-level: they are pickled to worker processes.

def _double(x):
    return 2 * x


def _sleep_then(seconds, value):
    time.sleep(seconds)
    return value


def _units(n=4):
    return [(f"u{i}", _double, (i,), {}) for i in range(n)]


def _expected(n=4):
    return [2 * i for i in range(n)]


def _supervised(**kw):
    defaults = dict(
        jobs=2,
        max_pool_respawns=10,
        respawn_backoff_s=0.02,
        **FAST_RETRIES,
    )
    defaults.update(kw)
    return ParallelRunner(**defaults)


class TestSupervisionConfig:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(2, max_pool_respawns=-1)
        with pytest.raises(ValueError):
            ParallelRunner(2, quarantine_threshold=0)
        with pytest.raises(ValueError):
            ParallelRunner(2, heartbeat_s=0.0)

    def test_respawn_backoff_doubles_and_caps(self):
        runner = ParallelRunner(2, respawn_backoff_s=0.5)
        assert [runner.respawn_backoff(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
        assert runner.respawn_backoff(20) == 30.0
        assert ParallelRunner(2, respawn_backoff_s=0.0).respawn_backoff(5) == 0.0


class TestWorkerCrashRecovery:
    def test_single_kill_recovered_without_failure(self):
        runner = _supervised()
        with activate(Tracer(run_id="crash")) as tracer:
            with inject_faults(FaultSpec(stage="stage/u1", kind="kill", times=1)) as plan:
                out = runner.run_units("stage", _units())
        assert [o.value for o in out] == _expected()
        assert not runner.failures
        assert plan.triggered == [("stage/u1", "kill")]
        assert tracer.counters["runner.worker_crashes"] >= 1
        assert tracer.counters["runner.pool_respawns"] >= 1
        assert tracer.counters["runner.quarantined"] == 0

    def test_crash_redispatch_does_not_consume_retry_budget(self):
        # zero retries allowed, yet a crashed attempt re-dispatches free:
        # a dead worker is an infrastructure failure, not a unit failure
        runner = _supervised(policy=RetryPolicy(max_retries=0))
        with inject_faults(FaultSpec(stage="stage/u1", kind="kill", times=1)):
            out = runner.run_units("stage", _units())
        assert [o.value for o in out] == _expected()
        assert not runner.failures

    def test_poison_unit_quarantined_innocents_survive(self):
        # delay_s gives co-resident units a window to finish, so crash
        # charges land on the poison unit alone (start-announce attribution)
        runner = _supervised(quarantine_threshold=2)
        with activate(Tracer(run_id="poison")) as tracer:
            with inject_faults(
                FaultSpec(stage="stage/u0", kind="kill", times=4, delay_s=0.3)
            ):
                out = runner.run_units("stage", _units())
        assert not out[0].ok
        assert [o.value for o in out[1:]] == _expected()[1:]
        rec = runner.failures.records[0]
        assert rec.unit == "u0"
        assert rec.kind == "worker_crash"
        assert rec.error_type == "WorkerCrashError"
        assert "quarantined" in rec.message
        assert tracer.counters["runner.quarantined"] == 1

    def test_fail_fast_raises_worker_crash_error(self):
        runner = _supervised(quarantine_threshold=1, fail_fast=True)
        with inject_faults(
            FaultSpec(stage="stage/u0", kind="kill", times=4, delay_s=0.3)
        ):
            with pytest.raises(WorkerCrashError):
                runner.run_units("stage", _units())

    def test_respawn_limit_aborts_stage(self):
        runner = _supervised(max_pool_respawns=0, quarantine_threshold=99)
        with inject_faults(FaultSpec(stage="stage/u0", kind="kill", times=1)):
            with pytest.raises(PoolRespawnLimitError):
                runner.run_units("stage", _units())


class TestHeartbeat:
    def test_hang_detected_and_retried(self):
        runner = _supervised(heartbeat_s=0.5, quarantine_threshold=2)
        with inject_faults(
            FaultSpec(stage="stage/u2", kind="hang", times=1, delay_s=30.0)
        ) as plan:
            out = runner.run_units("stage", _units())
        assert [o.value for o in out] == _expected()
        assert not runner.failures
        assert plan.triggered == [("stage/u2", "hang")]

    def test_hung_unit_quarantined_alone(self):
        # heartbeat kills identify the culprit exactly: only the hung unit
        # is charged, co-resident units re-dispatch for free
        runner = _supervised(heartbeat_s=0.5, quarantine_threshold=1)
        with inject_faults(
            FaultSpec(stage="stage/u2", kind="hang", times=1, delay_s=30.0)
        ):
            out = runner.run_units("stage", _units())
        assert not out[2].ok
        assert [o.value for i, o in enumerate(out) if i != 2] == [0, 2, 6]
        rec = runner.failures.records[0]
        assert rec.unit == "u2"
        assert rec.kind == "worker_crash"
        assert "heartbeat expired" in rec.message


class TestWorkerFaultDirectives:
    def test_kill_and_hang_are_valid_kinds(self):
        assert FaultSpec(stage="s", kind="kill").kind == "kill"
        assert FaultSpec(stage="s", kind="hang").kind == "hang"
        with pytest.raises(ValueError):
            FaultSpec(stage="s", kind="explode")

    def test_fire_ignores_worker_side_faults(self):
        # a serial runner SIGKILLing itself would take the test process down
        with inject_faults(FaultSpec(stage="s/u", kind="kill")) as plan:
            faults_mod.fire("s/u")  # must not raise, must not consume
            assert plan.triggered == []
            assert plan.worker_directive("s/u") == ("kill", 0.05)
            assert plan.triggered == [("s/u", "kill")]
            # consumed: the spec is exhausted
            assert plan.worker_directive("s/u") is None

    def test_directive_hooks_inactive_without_plan(self):
        assert faults_mod.worker_directive("s/u") is None
        execute_directive(None)  # no-op

    def test_execute_hang_directive_sleeps(self):
        t0 = time.monotonic()
        execute_directive(("hang", 0.05))
        assert time.monotonic() - t0 >= 0.05


class TestGracefulShutdown:
    def _deliver(self, signum=signal.SIGTERM):
        os.kill(os.getpid(), signum)
        deadline = time.monotonic() + 2.0
        while not shutdown_requested() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert shutdown_requested()

    def test_serial_runner_stops_between_units(self):
        runner = FaultTolerantRunner()
        with graceful_shutdown():
            self._deliver()
            assert shutdown_signum() == signal.SIGTERM
            with pytest.raises(ShutdownRequested) as err:
                runner.run_units("stage", _units())
        assert err.value.pending == ["u0", "u1", "u2", "u3"]
        assert "--resume" in str(err.value)
        assert not shutdown_requested()  # handler scope ended

    def test_parallel_runner_drains_in_flight_abandons_rest(self):
        completed: list[str] = []
        runner = ParallelRunner(jobs=2)
        units = [(f"s{i}", _sleep_then, (0.4, i), {}) for i in range(4)]
        with graceful_shutdown():
            killer = threading.Timer(
                0.15, os.kill, (os.getpid(), signal.SIGTERM)
            )
            killer.start()
            try:
                with pytest.raises(ShutdownRequested) as err:
                    runner.run_units(
                        "stage", units, on_result=lambda u, o: completed.append(u)
                    )
            finally:
                killer.cancel()
        # the first wave (jobs=2) drained and was checkpointed via on_result;
        # everything undispatched was abandoned for --resume to pick up
        assert sorted(completed) == ["s0", "s1"]
        assert err.value.pending == ["s2", "s3"]
        assert err.value.signum == signal.SIGTERM

    def test_nested_activation_is_noop(self):
        with graceful_shutdown() as outer:
            with graceful_shutdown() as inner:
                assert not inner.requested
            # inner exit must not tear down the outer coordinator
            self._deliver()
            assert outer.requested
        assert not shutdown_requested()

    def test_signal_counter_bumped(self):
        with activate(Tracer(run_id="sig")) as tracer:
            with graceful_shutdown():
                self._deliver()
        assert tracer.counters["runner.signal_shutdowns"] == 1

    def test_second_signal_hard_exits(self):
        # a second SIGTERM must kill the process with the conventional
        # fatal-signal status, not keep draining
        code = (
            "import os, signal, sys, time\n"
            "from repro.runtime.supervision import graceful_shutdown\n"
            "with graceful_shutdown():\n"
            "    os.kill(os.getpid(), signal.SIGTERM)\n"
            "    time.sleep(0.2)\n"
            "    os.kill(os.getpid(), signal.SIGTERM)\n"
            "    time.sleep(10)\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGTERM
        assert "survived" not in proc.stdout


def _subprocess_env(**extra: str) -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


@pytest.fixture(scope="module")
def suite_baseline(tmp_path_factory) -> bytes:
    """Uninterrupted serial suite cache: the byte-identity reference."""
    path = tmp_path_factory.mktemp("baseline") / "suite.npz"
    build_suite_dataset(
        SCALE, cache_path=path, runner=FaultTolerantRunner(fail_fast=True)
    )
    return path.read_bytes()


class TestCrashSafetyAcceptance:
    """The ISSUE's acceptance bar, end to end through the suite builder."""

    def test_worker_kill_mid_suite_degrades_then_resume_is_byte_identical(
        self, tmp_path, suite_baseline
    ):
        cache = tmp_path / "suite.npz"
        # mult_1's flow SIGKILLs its worker on every attempt: the run must
        # degrade to a structured worker_crash failure, never abort
        runner = _supervised(quarantine_threshold=2)
        with inject_faults(
            FaultSpec(stage="flow/mult_1", kind="kill", times=99, delay_s=0.3)
        ):
            suite, _stats = build_suite_dataset(
                SCALE, cache_path=cache, runner=runner
            )
        assert "mult_1" not in suite.names
        assert runner.failures.units() == ["flow/mult_1"]
        rec = runner.failures.records[0]
        assert rec.kind == "worker_crash"
        assert rec.error_type == "WorkerCrashError"
        # a degraded suite must not publish the shared cache pair...
        assert not cache.exists()
        # ...but every design that did finish was checkpointed by the parent
        saved = {p.stem for p in cache.with_suffix(".ckpt").glob("*.npz")}
        assert "mult_1" not in saved
        assert len(saved) >= 1

        # resume without faults: only the quarantined design is recomputed,
        # and the result is byte-identical to the uninterrupted run
        build_suite_dataset(
            SCALE, cache_path=cache, runner=FaultTolerantRunner(fail_fast=True)
        )
        assert cache.read_bytes() == suite_baseline

    def test_cli_kill_fault_terminates_despite_signal_handlers(self, tmp_path):
        # regression: forked workers inherited the CLI's graceful-shutdown
        # SIGTERM handler, swallowed the executor's terminate() while a broken
        # pool was torn down, and the process hung at interpreter exit joining
        # the unkillable worker — the subprocess timeout below is the assert
        code = (
            "import sys\n"
            "import repro.cli as cli\n"
            "from repro.runtime import FaultSpec, inject_faults\n"
            "spec = FaultSpec(stage='flow/mult_1', kind='kill', times=99,"
            " delay_s=0.3)\n"
            "with inject_faults(spec):\n"
            "    sys.exit(cli.main(sys.argv[1:]))\n"
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-u",
                "-c",
                code,
                "suite",
                "--scale",
                str(SCALE),
                "-j",
                "2",
                "--max-pool-respawns",
                "10",
                "--quarantine-threshold",
                "2",
            ],
            env=_subprocess_env(DRCSHAP_CACHE_DIR=str(tmp_path)),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 3, proc.stderr  # degraded, not hung/killed
        assert "QUARANTINED flow/mult_1" in proc.stdout + proc.stderr
        # the buggy inherited handler announced shutdowns from inside workers
        assert "shutdown requested" not in proc.stderr

    def test_cli_sigterm_exits_resumable_code_then_resume_completes(
        self, tmp_path, suite_baseline
    ):
        env = _subprocess_env(DRCSHAP_CACHE_DIR=str(tmp_path))
        trace = tmp_path / "run.jsonl"
        cmd = [
            sys.executable,
            "-u",
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            "suite",
            "--scale",
            str(SCALE),
            "-j",
            "2",
            "--trace",
            str(trace),
        ]
        proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
        )
        try:
            # wait until at least one design checkpoint exists, so the
            # interrupted run has something for --resume to reuse
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if any(tmp_path.glob("*.ckpt/*.npz")) or proc.poll() is not None:
                    break
                time.sleep(0.1)
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=300)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode == 0:
            pytest.skip("suite finished before the signal landed")
        assert proc.returncode == 4, stderr  # documented resumable exit code
        assert "shutdown requested" in stderr
        assert "interrupted:" in stderr
        # flushed cleanly: no torn atomic-write temp files anywhere...
        assert not list(tmp_path.rglob(".*.tmp*"))
        # ...and both telemetry sinks were written on the interrupted exit:
        # the manifest parses and carries the signal counter, the trace loads
        manifest = json.loads(
            trace.with_suffix(".manifest.json").read_text()
        )
        assert manifest["counters"]["runner.signal_shutdowns"] == 1
        assert load_trace(trace, strict=False).meta

        resumed = subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=600
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "Total samples" in resumed.stdout
        tag = f"suite_scale{SCALE:g}".replace(".", "p")
        assert (tmp_path / f"{tag}.npz").read_bytes() == suite_baseline


class TestOrphanTempSweep:
    def _stale(self, root: Path, name: str) -> Path:
        tmp = root / name
        tmp.write_bytes(b"orphan")
        two_hours_ago = time.time() - 7200
        os.utime(tmp, (two_hours_ago, two_hours_ago))
        return tmp

    def test_sweeps_stale_keeps_fresh_and_real_files(self, tmp_path):
        stale = self._stale(tmp_path, ".suite.npz.tmp1234")
        fresh = tmp_path / ".suite.npz.tmp5678"
        fresh.write_bytes(b"live writer")
        real = tmp_path / "suite.npz"
        real.write_bytes(b"artefact")
        with activate(Tracer(run_id="sweep")) as tracer:
            assert sweep_orphan_temps(tmp_path) == 1
        assert not stale.exists()
        assert fresh.exists() and real.exists()
        assert tracer.counters["runtime.cache.orphans_swept"] == 1

    def test_missing_root_sweeps_nothing(self, tmp_path):
        assert sweep_orphan_temps(tmp_path / "nope") == 0

    def test_checkpoint_store_sweeps_on_open(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        stale = self._stale(root, ".x.npz.tmp999")
        CheckpointStore(root)
        assert not stale.exists()


class TestLenientTraceLoading:
    def _torn_trace(self, tmp_path) -> Path:
        tracer = Tracer(run_id="torn")
        with tracer.span("root"):
            tracer.counter("n", 1)
        path = write_trace(tracer, tmp_path / "t.jsonl", "suite", ["--scale", "1"])
        with open(path, "a") as fh:
            fh.write('{"ev": "span", "name": "half\n')  # torn mid-write
            fh.write("garbage\n")
            fh.write('{"ev": "span"}\n')  # parseable but incomplete event
        return path

    def test_strict_raises_lenient_counts_dropped(self, tmp_path):
        path = self._torn_trace(tmp_path)
        with pytest.raises(ValueError):
            load_trace(path)
        doc = load_trace(path, strict=False)
        assert doc.dropped == 3
        assert doc.counters["n"] == 1
        assert [s.name for s in doc.roots] == ["root"]

    def test_lenient_still_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ev": "meta", "schema_version": 999}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_trace(path, strict=False)

    def test_lenient_still_requires_meta(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(ValueError):
            load_trace(path, strict=False)

    def test_cli_inspector_warns_and_succeeds(self, tmp_path, capsys):
        from repro.cli import main

        path = self._torn_trace(tmp_path)
        assert main(["trace", str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 3 truncated/corrupt trace line(s)" in captured.err
        assert "root" in captured.out


class TestFailureRecordKinds:
    def test_serial_error_and_timeout_kinds(self):
        runner = FaultTolerantRunner(policy=RetryPolicy(timeout_s=0.2))
        out = runner.run_units(
            "stage",
            [
                ("bad", _raise_boom, (), {}),
                ("slow", _sleep_then, (2.0, "late"), {}),
            ],
        )
        assert not out[0].ok and not out[1].ok
        by_unit = {r.unit: r for r in runner.failures.records}
        assert by_unit["bad"].kind == "error"
        assert by_unit["slow"].kind == "timeout"

    def test_kind_serializes(self):
        rec = FailureRecord(
            stage="s", unit="u", attempts=1, error_type="E", message="m",
            elapsed_s=0.1, kind="worker_crash",
        )
        doc = rec.to_dict()
        assert doc["kind"] == "worker_crash"
        assert json.loads(json.dumps(doc))["kind"] == "worker_crash"


def _raise_boom():
    raise RuntimeError("boom")
