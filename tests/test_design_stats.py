"""Tests for Table I statistics assembly and rendering."""

import pytest

from repro.layout.design_stats import (
    DesignStats,
    format_table1,
    group_statistics,
)


def _stats(name="d1", gcells=100, hotspots=5, macros=2, cells=1500):
    return DesignStats(
        name=name,
        num_gcells=gcells,
        num_hotspots=hotspots,
        num_macros=macros,
        num_cells=cells,
        layout_width_um=66.0,
        layout_height_um=66.0,
    )


class TestDesignStats:
    def test_cells_k(self):
        assert _stats(cells=2500).cells_k == 2.5

    def test_hotspot_rate(self):
        assert _stats(gcells=200, hotspots=10).hotspot_rate == 0.05
        assert _stats(gcells=0, hotspots=0).hotspot_rate == 0.0

    def test_format_row_contains_fields(self):
        row = _stats().format_row()
        assert "d1" in row
        assert "100" in row
        assert "66x66" in row


class TestGroupStats:
    def test_sums(self):
        g = group_statistics("Group 1", [_stats("a", 100, 5), _stats("b", 50, 2)])
        assert g.num_gcells == 150
        assert g.num_hotspots == 7

    def test_format_table1(self):
        groups = [
            (
                group_statistics("Group 1", [_stats("a"), _stats("b")]),
                [_stats("a"), _stats("b")],
            )
        ]
        text = format_table1(groups)
        assert "Group 1" in text
        assert "#G-cells" in text
        assert text.count("\n") >= 4
