"""Tests for the SHAP explainers — exactness, properties, text plots.

The tree explainer is validated against the exponential-time definition
(Eq. 2 of the paper) on randomly grown trees, and its axiomatic properties
(local accuracy, dummy, symmetry-ish behaviour) are property-tested.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.forest import RandomForestClassifier
from repro.ml.shap.brute import brute_force_shap, conditional_expectation
from repro.ml.shap.kernel import KernelShapExplainer
from repro.ml.shap.plots import build_explanation, force_plot_text
from repro.ml.shap.tree_explainer import TreeShapExplainer
from repro.ml.tree import DecisionTreeClassifier
from tests.conftest import make_separable


def _fit_small_forest(seed: int, n_features: int = 6, depth: int = 4, trees: int = 4):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(300, n_features))
    w = rng.normal(size=n_features)
    y = ((X @ w + 0.5 * X[:, 0] * X[:, 1]) > 0).astype(int)
    rf = RandomForestClassifier(
        n_estimators=trees, max_depth=depth, random_state=seed
    ).fit(X, y)
    return rf, X


class TestTreeShapExactness:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_brute_force(self, seed):
        rf, X = _fit_small_forest(seed)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        x = X[seed % len(X)]
        fast = ex.shap_values_single(x)
        slow = brute_force_shap(rf.trees, x, X.shape[1])
        assert np.allclose(fast, slow, atol=1e-10)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_local_accuracy(self, seed):
        """Eq. 1: base + sum(SHAP) == f(x), exactly."""
        rf, X = _fit_small_forest(seed, depth=6, trees=6)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        x = X[(seed * 7) % len(X)]
        phi = ex.shap_values_single(x)
        fx = rf.predict_proba(x[None])[0, 1]
        assert ex.expected_value + phi.sum() == pytest.approx(fx, abs=1e-9)

    def test_local_accuracy_on_flow_forest(self, small_flow):
        """Local accuracy on a real (unpruned, 387-feature) model."""
        X, y = small_flow.X, small_flow.y
        if y.sum() == 0:
            pytest.skip("flow produced no hotspots")
        rf = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        for row in (0, len(X) // 2):
            phi = ex.shap_values_single(X[row])
            fx = rf.predict_proba(X[row][None])[0, 1]
            assert ex.expected_value + phi.sum() == pytest.approx(fx, abs=1e-8)

    def test_dummy_feature_gets_zero(self):
        """A feature no tree splits on must receive zero attribution."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 5))
        y = (X[:, 0] > 0).astype(int)  # only feature 0 matters
        t = DecisionTreeClassifier(max_features=None, max_depth=3, random_state=0).fit(X, y)
        ex = TreeShapExplainer([t.tree_], 5)
        phi = ex.shap_values_single(X[3])
        used = set(t.tree_.feature[t.tree_.feature >= 0])
        for j in range(5):
            if j not in used:
                assert phi[j] == 0.0

    def test_expected_value_is_root_mean(self):
        rf, X = _fit_small_forest(1)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        assert ex.expected_value == pytest.approx(
            np.mean([t.value[0] for t in rf.trees])
        )

    def test_batch_matches_single(self):
        rf, X = _fit_small_forest(2)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        batch = ex.shap_values(X[:3])
        for i in range(3):
            assert np.allclose(batch[i], ex.shap_values_single(X[i]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_batched_recurrences_match_reference(self, seed):
        """The vectorised EXTEND/UNWIND agrees with the per-sample path."""
        rf, X = _fit_small_forest(seed, depth=6, trees=5)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        rows = X[(seed % 7):(seed % 7) + 40]
        batch = ex.shap_values(rows)
        single = np.vstack([ex.shap_values_single(x) for x in rows])
        assert np.allclose(batch, single, atol=1e-10)

    def test_batch_chunking_is_seamless(self):
        """Results must not depend on where the chunk boundaries fall."""
        rf, X = _fit_small_forest(9, trees=3)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        whole = ex.shap_values(X[:30])
        ex.chunk_size = 7  # 30 samples -> 5 uneven chunks
        chunked = ex.shap_values(X[:30])
        assert np.array_equal(whole, chunked)

    def test_batch_local_accuracy(self):
        rf, X = _fit_small_forest(10, depth=5, trees=6)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        phi = ex.shap_values(X[:25])
        fx = rf.predict_proba(X[:25])[:, 1]
        assert np.allclose(ex.expected_value + phi.sum(axis=1), fx, atol=1e-9)

    def test_batch_wrong_feature_count_raises(self):
        rf, X = _fit_small_forest(11)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        with pytest.raises(ValueError):
            ex.shap_values(np.zeros((4, X.shape[1] + 1)))

    def test_batch_single_row_input(self):
        rf, X = _fit_small_forest(12)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        assert np.allclose(
            ex.shap_values(X[0]), ex.shap_values_single(X[0])[None, :]
        )

    def test_single_leaf_tree(self):
        X = np.zeros((10, 3))
        y = np.ones(10, dtype=int)
        t = DecisionTreeClassifier(random_state=0).fit(X, y)
        ex = TreeShapExplainer([t.tree_], 3)
        phi = ex.shap_values_single(np.zeros(3))
        assert np.allclose(phi, 0.0)
        assert ex.expected_value == 1.0

    def test_wrong_feature_count_raises(self):
        rf, X = _fit_small_forest(3)
        ex = TreeShapExplainer(rf.trees, X.shape[1])
        with pytest.raises(ValueError):
            ex.shap_values_single(np.zeros(X.shape[1] + 2))

    def test_empty_trees_raises(self):
        with pytest.raises(ValueError):
            TreeShapExplainer([], 3)


class TestBruteForce:
    def test_conditional_expectation_all_known_is_prediction(self):
        rf, X = _fit_small_forest(4, trees=1)
        tree = rf.trees[0]
        x = X[0]
        known = frozenset(range(X.shape[1]))
        assert conditional_expectation(tree, x, known) == pytest.approx(
            tree.predict_proba_positive(x[None])[0]
        )

    def test_conditional_expectation_none_known_is_base(self):
        rf, X = _fit_small_forest(5, trees=1)
        tree = rf.trees[0]
        v = conditional_expectation(tree, X[0], frozenset())
        assert v == pytest.approx(tree.value[0])


class TestKernelShap:
    def test_efficiency_exact(self):
        """Kernel SHAP satisfies sum(phi) = f(x) − E[f] by construction."""
        rf, X = _fit_small_forest(6, n_features=5)
        predict = lambda A: rf.predict_proba(A)[:, 1]
        ex = KernelShapExplainer(predict, background=X[:50])
        x = X[0]
        phi = ex.shap_values_single(x)
        fx = float(predict(x[None])[0])
        assert phi.sum() == pytest.approx(fx - ex.expected_value, abs=1e-8)

    def test_close_to_tree_shap_on_independent_features(self):
        """With independent features, both definitions roughly agree."""
        rng = np.random.default_rng(7)
        X = rng.normal(size=(500, 4))
        y = (X[:, 0] + 2 * X[:, 1] > 0).astype(int)
        rf = RandomForestClassifier(n_estimators=8, max_depth=4, random_state=0).fit(X, y)
        tree_ex = TreeShapExplainer(rf.trees, 4)
        kern_ex = KernelShapExplainer(
            lambda A: rf.predict_proba(A)[:, 1], background=X[:100]
        )
        x = X[1]
        phi_t = tree_ex.shap_values_single(x)
        phi_k = kern_ex.shap_values_single(x)
        # same ranking of the two informative features
        assert np.argmax(np.abs(phi_t)) == np.argmax(np.abs(phi_k))

    def test_sampled_coalitions_run(self):
        rf, X = _fit_small_forest(8, n_features=6)
        ex = KernelShapExplainer(
            lambda A: rf.predict_proba(A)[:, 1],
            background=X[:30],
            n_coalitions=60,
            random_state=0,
        )
        phi = ex.shap_values_single(X[0])
        assert phi.shape == (6,)
        assert np.isfinite(phi).all()


class TestPlots:
    def _explanation(self):
        shap_vals = np.array([0.2, -0.05, 0.01, 0.0])
        values = np.array([3.0, -4.0, 0.5, 9.0])
        names = ["edM5_7H", "vlV2_o", "pins_o", "x_o"]
        return build_explanation(0.1, 0.26, shap_vals, values, names)

    def test_local_accuracy_check(self):
        e = self._explanation()
        assert e.check_local_accuracy()

    def test_top_sorted_by_magnitude(self):
        e = self._explanation()
        top = e.top(2)
        assert top[0].name == "edM5_7H"
        assert top[1].name == "vlV2_o"

    def test_force_plot_text_contents(self):
        text = force_plot_text(self._explanation(), top_k=2)
        assert "base value" in text
        assert "edM5_7H" in text
        assert "f(x)" in text
        assert "more likely" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_explanation(0.1, 0.2, np.zeros(3), np.zeros(4), ["a", "b", "c"])
