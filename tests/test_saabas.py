"""Tests for the Saabas attribution baseline and its inconsistency."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.shap.saabas import SaabasExplainer, make_inconsistency_example
from repro.ml.shap.tree_explainer import TreeShapExplainer
from tests.conftest import make_separable


class TestSaabas:
    def test_local_accuracy(self):
        """The telescoping sum reaches the leaf: base + sum = f(x)."""
        X, y = make_separable(n=400, seed=70)
        rf = RandomForestClassifier(n_estimators=6, max_depth=5, random_state=0).fit(X, y)
        ex = SaabasExplainer(rf.trees, X.shape[1])
        for i in (0, 10, 50):
            phi = ex.shap_values_single(X[i])
            fx = rf.predict_proba(X[i][None])[0, 1]
            assert ex.expected_value + phi.sum() == pytest.approx(fx, abs=1e-9)

    def test_only_path_features_credited(self):
        X, y = make_separable(n=400, seed=71)
        rf = RandomForestClassifier(n_estimators=1, max_depth=3, random_state=0).fit(X, y)
        tree = rf.trees[0]
        ex = SaabasExplainer([tree], X.shape[1])
        phi = ex.shap_values_single(X[0])
        used = set(tree.feature[tree.feature >= 0])
        for j in range(X.shape[1]):
            if j not in used:
                assert phi[j] == 0.0

    def test_batch_api(self):
        X, y = make_separable(n=200, seed=72)
        rf = RandomForestClassifier(n_estimators=3, max_depth=3, random_state=0).fit(X, y)
        ex = SaabasExplainer(rf.trees, X.shape[1])
        batch = ex.shap_values(X[:4])
        assert batch.shape == (4, X.shape[1])

    def test_wrong_width_raises(self):
        X, y = make_separable(n=100, seed=73)
        rf = RandomForestClassifier(n_estimators=1, random_state=0).fit(X, y)
        ex = SaabasExplainer(rf.trees, X.shape[1])
        with pytest.raises(ValueError):
            ex.shap_values_single(np.zeros(3))


class TestInconsistency:
    """The canonical Lundberg Fig. 1 scenario, checked numerically."""

    def test_shap_is_consistent(self):
        tree_a, tree_b, x = make_inconsistency_example()
        phi_a = TreeShapExplainer([tree_a], 2).shap_values_single(x)
        phi_b = TreeShapExplainer([tree_b], 2).shap_values_single(x)
        # model B depends strictly more on x0 -> SHAP attribution grows
        assert phi_b[0] > phi_a[0]
        assert phi_a[0] == pytest.approx(1.875)
        assert phi_b[0] == pytest.approx(2.875)

    def test_saabas_is_inconsistent(self):
        tree_a, tree_b, x = make_inconsistency_example()
        phi_a = SaabasExplainer([tree_a], 2).shap_values_single(x)
        phi_b = SaabasExplainer([tree_b], 2).shap_values_single(x)
        # same scenario: Saabas attribution of x0 *decreases*
        assert phi_b[0] < phi_a[0]
        assert phi_a[0] == pytest.approx(2.5)
        assert phi_b[0] == pytest.approx(2.25)

    def test_both_locally_accurate_on_example(self):
        tree_a, tree_b, x = make_inconsistency_example()
        for tree, fx in ((tree_a, 5.0), (tree_b, 7.0)):
            for explainer_cls in (TreeShapExplainer, SaabasExplainer):
                ex = explainer_cls([tree], 2)
                phi = ex.shap_values_single(x)
                assert ex.expected_value + phi.sum() == pytest.approx(fx)
