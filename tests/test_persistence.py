"""Tests for model persistence (.npz archives)."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.nn import MLPClassifier
from repro.ml.persistence import (
    ModelFormatError,
    load_forest,
    load_mlp,
    load_scaler,
    load_svm,
    save_forest,
    save_mlp,
    save_scaler,
    save_svm,
)
from repro.ml.scaling import StandardScaler
from repro.ml.shap.tree_explainer import TreeShapExplainer
from repro.ml.svm import SVMClassifier
from tests.conftest import make_separable


@pytest.fixture(scope="module")
def data():
    return make_separable(n=400, seed=80)


class TestForestPersistence:
    def test_roundtrip_predictions_identical(self, data, tmp_path):
        X, y = data
        rf = RandomForestClassifier(n_estimators=8, random_state=0).fit(X, y)
        path = save_forest(rf, tmp_path / "rf.npz")
        back = load_forest(path)
        assert np.array_equal(back.predict_proba(X), rf.predict_proba(X))
        assert back.base_rate_ == rf.base_rate_

    def test_loaded_forest_explains(self, data, tmp_path):
        X, y = data
        rf = RandomForestClassifier(n_estimators=5, max_depth=4, random_state=0).fit(X, y)
        back = load_forest(save_forest(rf, tmp_path / "rf.npz"))
        ex_orig = TreeShapExplainer(rf.trees, X.shape[1])
        ex_back = TreeShapExplainer(back.trees, X.shape[1])
        assert np.allclose(
            ex_orig.shap_values_single(X[0]), ex_back.shap_values_single(X[0])
        )

    def test_unfitted_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_forest(RandomForestClassifier(), tmp_path / "x.npz")


class TestOtherModels:
    def test_svm_roundtrip(self, data, tmp_path):
        X, y = data
        svm = SVMClassifier(max_train_samples=300, random_state=0).fit(X, y)
        back = load_svm(save_svm(svm, tmp_path / "svm.npz"))
        assert np.allclose(back.decision_function(X), svm.decision_function(X))

    def test_mlp_roundtrip(self, data, tmp_path):
        X, y = data
        mlp = MLPClassifier(hidden_layers=(16, 4), epochs=3, random_state=0).fit(X, y)
        back = load_mlp(save_mlp(mlp, tmp_path / "mlp.npz"))
        assert np.allclose(back.predict_proba(X), mlp.predict_proba(X))
        assert back.hidden_layers == (16, 4)

    def test_scaler_roundtrip(self, data, tmp_path):
        X, _ = data
        sc = StandardScaler().fit(X)
        back = load_scaler(save_scaler(sc, tmp_path / "sc.npz"))
        assert np.allclose(back.transform(X), sc.transform(X))


class TestFormatErrors:
    def test_kind_mismatch(self, data, tmp_path):
        X, y = data
        rf = RandomForestClassifier(n_estimators=2, random_state=0).fit(X, y)
        path = save_forest(rf, tmp_path / "rf.npz")
        with pytest.raises(ModelFormatError, match="expected"):
            load_svm(path)

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ModelFormatError):
            load_forest(path)
