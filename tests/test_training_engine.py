"""Engine-level invariants of the histogram training overhaul.

Three contracts keep the fast paths honest:

* sibling-subtraction trees are **bit-identical** to direct-histogram
  trees — the subtraction is an optimisation, never a model change;
* a parallel forest fit is bit-identical to a serial one at the same
  seed — each tree's random stream is a pure function of
  ``(random_state, tree index)``, regardless of scheduling;
* stacked :class:`ForestArrays` prediction matches per-tree traversal,
  and the training drivers quantise each split exactly once (proved via
  the ``ml.binning.*`` telemetry counters).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.ml.forest as forest_mod
from repro.core.experiment import run_experiment
from repro.core.models import ModelSpec
from repro.ml.binning import BinnedDataset
from repro.ml.boosting import RUSBoostClassifier
from repro.ml.forest import ForestArrays, RandomForestClassifier
from repro.ml.model_selection import grid_search
from repro.ml.tree import DecisionTreeClassifier
from repro.runtime.telemetry import Tracer, activate
from tests.conftest import make_separable


def _trial_data(trial):
    """One randomized fit problem: data/weights/params all derive from the
    trial number, sweeping the regimes where subtraction drift could bite
    (exact ties on gridded data, fractional and zeroed weights, tiny and
    full-width histograms)."""
    rng = np.random.default_rng(trial)
    n = int(rng.integers(30, 400))
    n_features = int(rng.integers(2, 9))
    kind = trial % 3
    if kind == 0:
        X = rng.normal(size=(n, n_features))
    elif kind == 1:
        X = rng.choice([0.0, 1.0, 2.0, 5.0, 9.0], size=(n, n_features))
    else:
        X = np.round(rng.normal(size=(n, n_features)), 1)
    y = (X[:, 0] + rng.normal(scale=0.5, size=n) > 0).astype(np.int8)
    if y.min() == y.max():
        y[: n // 2] = 1 - y[0]

    wkind = trial % 4
    if wkind == 0:
        w = None
    elif wkind == 1:
        w = rng.uniform(0.1, 5.0, size=n)
    elif wkind == 2:  # bootstrap-like integer counts
        w = rng.multinomial(n, np.full(n, 1.0 / n)).astype(np.float64)
    else:  # boosting-like: a fifth of the rows carry zero weight
        w = rng.uniform(0.5, 2.0, size=n)
        w[rng.random(n) < 0.2] = 0.0
    if w is not None and not w.sum() > 0:
        w = None

    params = dict(
        criterion="gini" if trial % 2 else "entropy",
        max_bins=int(rng.integers(2, 257)),
        min_samples_leaf=int(rng.integers(1, 5)),
        max_features=[None, "sqrt", 0.6][trial % 3],
    )
    return X, y, w, params


def _assert_trees_identical(a, b):
    assert np.array_equal(a.children_left, b.children_left)
    assert np.array_equal(a.children_right, b.children_right)
    assert np.array_equal(a.feature, b.feature)
    assert np.array_equal(a.threshold, b.threshold, equal_nan=True)
    assert np.array_equal(a.cover, b.cover)
    assert np.array_equal(a.value, b.value)


class TestSiblingSubtraction:
    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_to_direct_build(self, trial):
        X, y, w, params = _trial_data(trial)
        direct = DecisionTreeClassifier(
            random_state=trial, hist_subtraction=False, **params
        ).fit(X, y, sample_weight=w)
        fast = DecisionTreeClassifier(
            random_state=trial, hist_subtraction=True, **params
        ).fit(X, y, sample_weight=w)
        _assert_trees_identical(direct.tree_, fast.tree_)

    def test_subtraction_replaces_builds(self):
        X, y = make_separable(n=800, seed=33)
        direct = DecisionTreeClassifier(
            random_state=0, hist_subtraction=False
        ).fit(X, y)
        fast = DecisionTreeClassifier(random_state=0, hist_subtraction=True).fit(X, y)
        assert direct.fit_stats_["ml.hist.subtractions"] == 0
        assert fast.fit_stats_["ml.hist.subtractions"] > 0
        assert fast.fit_stats_["ml.hist.builds"] < direct.fit_stats_["ml.hist.builds"]
        # same tree either way, so the node counters agree too
        assert (
            fast.fit_stats_["ml.tree.nodes"]
            == direct.fit_stats_["ml.tree.nodes"]
            == fast.tree_.node_count
        )

    def test_fit_counters_reach_active_tracer(self):
        X, y = make_separable(n=300, seed=34)
        tracer = Tracer()
        with activate(tracer):
            tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        for name, v in tree.fit_stats_.items():
            assert tracer.counters[name] == v
        assert tracer.counters["ml.tree.nodes"] > 1


class TestParallelFit:
    def test_parallel_fit_bit_identical_to_serial(self):
        X, y = make_separable(n=400, seed=40)
        Xte, _ = make_separable(n=200, seed=41)
        serial = RandomForestClassifier(
            n_estimators=6, max_depth=6, random_state=7, n_jobs=1
        ).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=6, max_depth=6, random_state=7, n_jobs=3
        ).fit(X, y)
        assert len(parallel.estimators_) == 6
        for a, b in zip(serial.trees, parallel.trees):
            _assert_trees_identical(a, b)
        assert np.array_equal(serial.predict_proba(Xte), parallel.predict_proba(Xte))

    def test_parallel_fit_reemits_tree_counters(self):
        X, y = make_separable(n=300, seed=42)

        def totals(n_jobs):
            tracer = Tracer()
            with activate(tracer):
                RandomForestClassifier(
                    n_estimators=4, max_depth=4, random_state=1, n_jobs=n_jobs
                ).fit(X, y)
            return {
                k: v for k, v in tracer.counters.items() if k.startswith("ml.hist")
                or k.startswith("ml.tree")
            }

        serial, parallel = totals(1), totals(2)
        assert serial == parallel
        assert serial["ml.tree.nodes"] > 0

    def test_n_jobs_validation_and_capping(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_jobs=0)
        rf = RandomForestClassifier(n_estimators=3, n_jobs=-1)
        assert 1 <= rf._effective_jobs() <= 3  # capped by n_estimators
        assert RandomForestClassifier(n_jobs=None)._effective_jobs() == 1

    def test_nested_worker_grows_serially(self, monkeypatch):
        rf = RandomForestClassifier(n_estimators=8, n_jobs=4)
        monkeypatch.setattr(
            forest_mod.multiprocessing, "parent_process", lambda: object()
        )
        assert rf._effective_jobs() == 1


class TestStackedPrediction:
    @pytest.fixture(scope="class")
    def fitted(self):
        X, y = make_separable(n=500, seed=50)
        Xte, _ = make_separable(n=333, seed=51)
        rf = RandomForestClassifier(n_estimators=9, random_state=3).fit(X, y)
        return rf, Xte

    def test_matches_per_tree_traversal(self, fitted):
        rf, Xte = fitted
        leaf = rf.stacked.leaf_values(Xte)
        manual = np.column_stack(
            [t.predict_proba_positive(Xte) for t in rf.trees]
        )
        assert np.array_equal(leaf, manual)
        assert np.allclose(
            rf.stacked.predict_proba_positive(Xte), manual.mean(axis=1)
        )

    def test_chunked_traversal_invariant(self, fitted):
        rf, Xte = fitted
        assert np.array_equal(
            rf.stacked.leaf_values(Xte, chunk_size=7), rf.stacked.leaf_values(Xte)
        )

    def test_padding_of_unequal_trees(self):
        X, y = make_separable(n=400, seed=52)
        Xte, _ = make_separable(n=150, seed=53)
        stump = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X, y)
        fa = ForestArrays.from_trees([stump.tree_, deep.tree_])
        assert fa.n_trees == 2
        assert fa.max_nodes == max(stump.tree_.node_count, deep.tree_.node_count)
        leaf = fa.leaf_values(Xte)
        assert np.array_equal(leaf[:, 0], stump.tree_.predict_proba_positive(Xte))
        assert np.array_equal(leaf[:, 1], deep.tree_.predict_proba_positive(Xte))

    def test_refit_invalidates_stack(self):
        X, y = make_separable(n=300, seed=54)
        rf = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        first = rf.stacked
        rf.fit(X, y)
        assert rf.stacked is not first

    def test_empty_forest_raises(self):
        with pytest.raises(ValueError):
            ForestArrays.from_trees([])

    def test_rusboost_margin_matches_reference(self):
        X, y = make_separable(n=400, seed=55)
        model = RUSBoostClassifier(
            n_estimators=8, max_depth=3, random_state=1
        ).fit(X, y)
        margin = model.decision_function(X)
        alphas = np.asarray(model.alphas_)
        ref = sum(
            a * (2.0 * t.predict_proba_positive(X) - 1.0)
            for a, t in zip(alphas, model.trees)
        ) / alphas.sum()
        assert np.allclose(margin, ref)
        assert margin.min() >= -1.0 and margin.max() <= 1.0


class TestBinOnce:
    def test_grid_search_requantises_nothing(self):
        X, y = make_separable(n=600, seed=70)
        groups = np.repeat(np.arange(3), 200)

        def factory(max_depth=4):
            return RandomForestClassifier(
                n_estimators=4, max_depth=max_depth, random_state=0
            )

        tracer = Tracer()
        with activate(tracer):
            binned = BinnedDataset.from_matrix(X)
            grid_search(factory, {"max_depth": [2, 4]}, X, y, groups, binned=binned)
        # the one from_matrix call is the only quantisation the whole
        # search performs: folds are uint8 row slices of it
        assert tracer.counters["ml.binning.fits"] == 1
        assert tracer.counters["ml.binning.transforms"] == 1

    def test_experiment_bins_each_split_once(self, mini_suite):
        def make_rf(**kw):
            return RandomForestClassifier(
                n_estimators=4, max_depth=4, random_state=0, **kw
            )

        def make_rus(**kw):
            return RUSBoostClassifier(
                n_estimators=4, max_depth=2, random_state=0, **kw
            )

        models = [
            ModelSpec("RF", make_rf, supports_binned=True),
            ModelSpec("RUSBoost", make_rus, supports_binned=True),
        ]
        tracer = Tracer()
        with activate(tracer):
            run_experiment(mini_suite, models, tune=False)
        n_groups = len({d.group for d in mini_suite.designs if d.group >= 0})
        expected = n_groups * len(models)  # one per (binned model, group) split
        assert tracer.counters["ml.binning.fits"] == expected
        assert tracer.counters["ml.binning.transforms"] == expected
