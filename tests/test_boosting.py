"""Tests for RUSBoost."""

import numpy as np
import pytest

from repro.ml.boosting import RUSBoostClassifier
from repro.ml.metrics import auc_roc, average_precision
from tests.conftest import make_separable


@pytest.fixture(scope="module")
def imbalanced():
    X, y = make_separable(n=1500, pos_rate=0.06, seed=30)
    Xte, yte = make_separable(n=800, pos_rate=0.06, seed=31)
    return X, y, Xte, yte


class TestRUSBoost:
    def test_learns_imbalanced(self, imbalanced):
        X, y, Xte, yte = imbalanced
        m = RUSBoostClassifier(n_estimators=25, max_depth=4, random_state=0).fit(X, y)
        auc = auc_roc(yte, m.decision_function(Xte))
        assert auc > 0.8

    def test_scores_are_granular(self, imbalanced):
        """Ranking scores must not collapse to a constant (A_prc needs order)."""
        X, y, Xte, _ = imbalanced
        m = RUSBoostClassifier(n_estimators=15, max_depth=4, random_state=0).fit(X, y)
        scores = m.decision_function(Xte)
        assert len(np.unique(scores)) > 50

    def test_margin_range(self, imbalanced):
        X, y, Xte, _ = imbalanced
        m = RUSBoostClassifier(n_estimators=10, max_depth=3, random_state=0).fit(X, y)
        s = m.decision_function(Xte)
        assert (s >= -1 - 1e-9).all() and (s <= 1 + 1e-9).all()

    def test_proba_bounds(self, imbalanced):
        X, y, Xte, _ = imbalanced
        m = RUSBoostClassifier(n_estimators=10, max_depth=3, random_state=0).fit(X, y)
        p = m.predict_proba(Xte)
        assert (p >= 0).all() and (p <= 1).all()
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_boosting_improves_over_one_round(self, imbalanced):
        X, y, Xte, yte = imbalanced
        one = RUSBoostClassifier(n_estimators=1, max_depth=3, random_state=0).fit(X, y)
        many = RUSBoostClassifier(n_estimators=30, max_depth=3, random_state=0).fit(X, y)
        ap_one = average_precision(yte, one.decision_function(Xte))
        ap_many = average_precision(yte, many.decision_function(Xte))
        assert ap_many >= ap_one - 0.02

    def test_single_class_raises(self):
        X = np.random.default_rng(0).normal(size=(50, 4))
        with pytest.raises(ValueError):
            RUSBoostClassifier().fit(X, np.zeros(50, dtype=int))

    def test_deterministic(self, imbalanced):
        X, y, Xte, _ = imbalanced
        s1 = RUSBoostClassifier(n_estimators=8, random_state=1).fit(X, y).decision_function(Xte)
        s2 = RUSBoostClassifier(n_estimators=8, random_state=1).fit(X, y).decision_function(Xte)
        assert np.array_equal(s1, s2)

    def test_num_parameters(self, imbalanced):
        X, y, _, _ = imbalanced
        m = RUSBoostClassifier(n_estimators=5, max_depth=3, random_state=0).fit(X, y)
        assert m.num_parameters() > len(m.estimators_)

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            RUSBoostClassifier().decision_function(np.zeros((1, 2)))
