"""Tests for probability calibration analysis."""

import numpy as np
import pytest

from repro.analysis.calibration import calibration_report


class TestCalibrationReport:
    def test_perfectly_calibrated(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(0, 1, size=20_000)
        y = (rng.random(20_000) < p).astype(int)
        report = calibration_report(y, p)
        assert report.expected_calibration_error < 0.02
        # Brier of a calibrated forecaster = E[p(1-p)]
        assert report.brier_score == pytest.approx(np.mean(p * (1 - p)), abs=0.01)

    def test_overconfident_detected(self):
        rng = np.random.default_rng(1)
        y = (rng.random(5000) < 0.1).astype(int)
        p = np.where(y == 1, 0.95, 0.6)  # wildly overconfident
        report = calibration_report(y, p)
        assert report.expected_calibration_error > 0.3

    def test_base_rate(self):
        y = np.array([0, 0, 0, 1])
        p = np.array([0.1, 0.1, 0.1, 0.9])
        assert calibration_report(y, p).base_rate == 0.25

    def test_bins_partition_all_samples(self):
        rng = np.random.default_rng(2)
        p = rng.uniform(0, 1, 1000)
        y = rng.integers(0, 2, 1000)
        report = calibration_report(y, p, n_bins=7)
        assert sum(b.count for b in report.bins) == 1000
        assert len(report.bins) == 7

    def test_probability_one_lands_in_last_bin(self):
        y = np.array([1, 0])
        p = np.array([1.0, 0.0])
        report = calibration_report(y, p, n_bins=4)
        assert report.bins[-1].count == 1
        assert report.bins[0].count == 1

    def test_format_table(self):
        y = np.array([0, 1, 0, 1])
        p = np.array([0.2, 0.8, 0.3, 0.7])
        text = calibration_report(y, p).format_table()
        assert "Brier" in text
        assert "ECE" in text

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            calibration_report(np.array([0, 1]), np.array([0.5, 1.5]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            calibration_report(np.array([0, 1]), np.array([0.5]))
