"""Tests for the Random Forest classifier."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import auc_roc
from repro.ml.tree import DecisionTreeClassifier
from tests.conftest import make_separable


@pytest.fixture(scope="module")
def data():
    X, y = make_separable(n=900, seed=20)
    Xte, yte = make_separable(n=500, seed=21)
    return X, y, Xte, yte


class TestFit:
    def test_basic_fit_predict(self, data):
        X, y, Xte, yte = data
        rf = RandomForestClassifier(n_estimators=30, random_state=0).fit(X, y)
        assert len(rf.estimators_) == 30
        acc = (rf.predict(Xte) == yte).mean()
        assert acc > 0.8

    def test_forest_beats_single_tree_auc(self, data):
        X, y, Xte, yte = data
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        rf = RandomForestClassifier(n_estimators=40, random_state=0).fit(X, y)
        auc_tree = auc_roc(yte, tree.predict_proba(Xte)[:, 1])
        auc_rf = auc_roc(yte, rf.predict_proba(Xte)[:, 1])
        assert auc_rf > auc_tree

    def test_proba_is_tree_average(self, data):
        X, y, Xte, _ = data
        rf = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        manual = np.mean(
            [t.tree_.predict_proba_positive(Xte) for t in rf.estimators_], axis=0
        )
        assert np.allclose(rf.predict_proba(Xte)[:, 1], manual)

    def test_deterministic(self, data):
        X, y, Xte, _ = data
        p1 = RandomForestClassifier(n_estimators=10, random_state=5).fit(X, y).predict_proba(Xte)
        p2 = RandomForestClassifier(n_estimators=10, random_state=5).fit(X, y).predict_proba(Xte)
        assert np.array_equal(p1, p2)

    def test_seed_matters(self, data):
        X, y, Xte, _ = data
        p1 = RandomForestClassifier(n_estimators=10, random_state=5).fit(X, y).predict_proba(Xte)
        p2 = RandomForestClassifier(n_estimators=10, random_state=6).fit(X, y).predict_proba(Xte)
        assert not np.array_equal(p1, p2)

    def test_class_weight_balanced_raises_positive_probs(self):
        X, y = make_separable(n=900, pos_rate=0.05, seed=22)
        plain = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        balanced = RandomForestClassifier(
            n_estimators=20, class_weight="balanced", random_state=0
        ).fit(X, y)
        assert balanced.predict_proba(X)[:, 1].mean() > plain.predict_proba(X)[:, 1].mean()

    def test_max_samples_subsampling(self, data):
        X, y, Xte, yte = data
        rf = RandomForestClassifier(
            n_estimators=20, max_samples=0.3, random_state=0
        ).fit(X, y)
        assert (rf.predict(Xte) == yte).mean() > 0.75

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestClassifier(class_weight="bogus")

    def test_not_fitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 3)))


class TestIntrospection:
    def test_trees_property(self, data):
        X, y, _, _ = data
        rf = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        trees = rf.trees
        assert len(trees) == 5
        assert all(t.node_count >= 1 for t in trees)

    def test_num_parameters_positive_and_scales(self, data):
        X, y, _, _ = data
        small = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        big = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert 0 < small.num_parameters() < big.num_parameters()

    def test_feature_importances(self, data):
        X, y, _, _ = data
        rf = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        imp = rf.feature_importances()
        assert imp.sum() == pytest.approx(1.0)
        # features 0 and 1 carry the signal in make_separable
        assert imp[:4].sum() > imp[4:].sum()

    def test_base_rate_recorded(self, data):
        X, y, _, _ = data
        rf = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        assert rf.base_rate_ == pytest.approx(y.mean(), abs=0.01)
