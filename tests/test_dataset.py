"""Tests for dataset containers and the suite cache."""

import numpy as np
import pytest

from repro.features.dataset import DesignDataset, SuiteDataset
from repro.features.names import NUM_FEATURES


def _toy_design(name: str, group: int, nx: int = 3, ny: int = 2, seed: int = 0):
    rng = np.random.default_rng(seed)
    n = nx * ny
    return DesignDataset(
        name=name,
        group=group,
        X=rng.normal(size=(n, NUM_FEATURES)),
        y=rng.integers(0, 2, size=n).astype(np.int8),
        grid_nx=nx,
        grid_ny=ny,
    )


class TestDesignDataset:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DesignDataset("bad", 0, np.zeros((4, 10)), np.zeros(4, dtype=np.int8), 2, 2)
        with pytest.raises(ValueError):
            DesignDataset(
                "bad", 0, np.zeros((4, NUM_FEATURES)), np.zeros(5, dtype=np.int8), 2, 2
            )
        with pytest.raises(ValueError):
            DesignDataset(
                "bad", 0, np.zeros((4, NUM_FEATURES)), np.zeros(4, dtype=np.int8), 3, 3
            )

    def test_sample_index_roundtrip(self):
        d = _toy_design("a", 0, nx=4, ny=3)
        for row in range(d.num_samples):
            ix, iy = d.cell_of_sample(row)
            assert d.sample_index(ix, iy) == row

    def test_sample_index_bounds(self):
        d = _toy_design("a", 0)
        with pytest.raises(IndexError):
            d.sample_index(10, 0)


class TestSuiteDataset:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SuiteDataset([_toy_design("a", 0), _toy_design("a", 1)])

    def test_by_name(self):
        suite = SuiteDataset([_toy_design("a", 0), _toy_design("b", 1)])
        assert suite.by_name("b").group == 1
        with pytest.raises(KeyError):
            suite.by_name("zzz")

    def test_stacked_excludes_groups(self):
        suite = SuiteDataset(
            [_toy_design("a", 0, seed=1), _toy_design("b", 1, seed=2), _toy_design("c", 1, seed=3)]
        )
        X, y, groups = suite.stacked(exclude_groups=(1,))
        assert len(X) == suite.by_name("a").num_samples
        assert set(groups) == {0}

    def test_stacked_all_excluded_raises(self):
        suite = SuiteDataset([_toy_design("a", 0)])
        with pytest.raises(ValueError):
            suite.stacked(exclude_groups=(0,))

    def test_save_load_roundtrip(self, tmp_path):
        suite = SuiteDataset(
            [_toy_design("a", 0, seed=5), _toy_design("b", 2, seed=6)]
        )
        path = tmp_path / "suite.npz"
        suite.save(path)
        loaded = SuiteDataset.load(path)
        assert loaded.names == suite.names
        for orig, back in zip(suite.designs, loaded.designs):
            assert back.group == orig.group
            assert back.grid_nx == orig.grid_nx
            assert np.array_equal(back.y, orig.y)
            # X stored as float32 on disk
            assert np.allclose(back.X, orig.X, atol=1e-5)

    def test_num_samples(self):
        suite = SuiteDataset([_toy_design("a", 0), _toy_design("b", 1, nx=5, ny=5)])
        assert suite.num_samples == 6 + 25
