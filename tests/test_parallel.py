"""ParallelRunner: process-pool units with serial semantics preserved.

Covers the runner in isolation (ordering, retries, timeouts, fail-fast vs.
degrade, parent-side callbacks and fault injection) and end-to-end through
the suite builder and the experiment grid, where a parallel run must be
*indistinguishable* from a serial one: byte-identical cache pair, equal
suite fingerprint, equal Table II (timing rows excluded — they are live CPU
measurements).
"""

from __future__ import annotations

import hashlib
import json
import os
import time

import pytest

from repro.core.evaluation import format_table2
from repro.core.experiment import run_experiment, suite_fingerprint
from repro.core.models import model_zoo
from repro.core.pipeline import build_suite_dataset
from repro.runtime import FaultTolerantRunner, ParallelRunner, RetryPolicy
from repro.runtime.errors import FaultInjected, StageFailure
from repro.runtime.faults import FaultSpec, inject_faults

SCALE = 0.3


# Unit bodies must be module-level: they are pickled to worker processes.

def _double(x):
    return 2 * x


def _worker_pid():
    return os.getpid()


def _boom():
    raise RuntimeError("boom")


def _sleep_then(seconds, value):
    time.sleep(seconds)
    return value


class TestParallelRunnerSemantics:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(0)

    def test_outcomes_in_input_order(self):
        runner = ParallelRunner(3)
        units = [(f"u{i}", _double, (i,), {}) for i in range(6)]
        out = runner.run_units("stage", units)
        assert all(o.ok for o in out)
        assert [o.value for o in out] == [0, 2, 4, 6, 8, 10]

    def test_jobs_one_matches_serial_path(self):
        runner = ParallelRunner(1)
        out = runner.run_units("stage", [("u0", _double, (5,), {})])
        assert [o.value for o in out] == [10]

    def test_units_run_in_workers_callbacks_in_parent(self):
        runner = ParallelRunner(2)
        callback_pids = []
        out = runner.run_units(
            "stage",
            [(f"u{i}", _worker_pid, (), {}) for i in range(3)],
            on_result=lambda unit, o: callback_pids.append(os.getpid()),
        )
        # on_result (where checkpoint writes live) stays in this process...
        assert set(callback_pids) == {os.getpid()}
        # ...while the unit bodies actually ran elsewhere
        assert all(o.value != os.getpid() for o in out)

    def test_degraded_unit_recorded_others_survive(self):
        runner = ParallelRunner(2)
        out = runner.run_units(
            "stage",
            [
                ("good", _double, (21,), {}),
                ("bad", _boom, (), {}),
                ("also_good", _double, (1,), {}),
            ],
        )
        assert out[0].value == 42 and out[2].value == 2
        assert not out[1].ok
        assert runner.failures.units() == ["stage/bad"]
        assert runner.failures.records[0].error_type == "RuntimeError"
        assert runner.failures.records[0].attempts == 1

    def test_fail_fast_raises_stage_failure(self):
        runner = ParallelRunner(2, fail_fast=True)
        with pytest.raises(StageFailure):
            runner.run_units(
                "stage",
                [("bad", _boom, (), {}), ("good", _double, (1,), {})],
            )

    def test_injected_fault_fires_in_parent_and_is_retried(self):
        # the fault plan is parent-process state: workers never see it, so
        # injection must happen at submit time for parallel determinism
        runner = ParallelRunner(2, RetryPolicy(max_retries=1))
        with inject_faults(FaultSpec(stage="stage/u1", times=1)) as plan:
            out = runner.run_units(
                "stage", [(f"u{i}", _double, (i,), {}) for i in range(4)]
            )
        assert [o.value for o in out] == [0, 2, 4, 6]
        assert plan.triggered == [("stage/u1", "error")]
        assert not runner.failures

    def test_injected_fault_exhausts_retry_budget(self):
        runner = ParallelRunner(2, RetryPolicy(max_retries=1))
        with inject_faults(FaultSpec(stage="stage/u0", times=2)) as plan:
            out = runner.run_units(
                "stage", [(f"u{i}", _double, (i,), {}) for i in range(3)]
            )
        assert not out[0].ok
        assert out[1].value == 2 and out[2].value == 4
        rec = runner.failures.records[0]
        assert rec.error_type == FaultInjected.__name__
        assert rec.attempts == 2
        assert plan.triggered == [("stage/u0", "error")] * 2

    def test_worker_timeout_recorded_as_stage_timeout(self):
        runner = ParallelRunner(2, RetryPolicy(timeout_s=0.2))
        out = runner.run_units(
            "stage",
            [
                ("slow", _sleep_then, (2.0, "late"), {}),
                ("fast", _double, (3,), {}),
            ],
        )
        assert not out[0].ok
        assert out[0].failure.error_type == "StageTimeout"
        assert out[1].value == 6

    def test_fast_unit_beats_its_timeout(self):
        runner = ParallelRunner(2, RetryPolicy(timeout_s=30.0))
        out = runner.run_units(
            "stage", [("quick", _sleep_then, (0.01, "ok"), {})] * 2
        )
        assert [o.value for o in out] == ["ok", "ok"]


def _table_without_timing_rows(result) -> str:
    """Table II minus the CPU-time rows, which are live measurements."""
    return "\n".join(
        line
        for line in format_table2(result).splitlines()
        if not line.startswith(("Train (min)", "Pred (min)"))
    )


class TestParallelDeterminism:
    def test_suite_cache_pair_byte_identical(self, tmp_path):
        serial_npz = tmp_path / "serial.npz"
        parallel_npz = tmp_path / "parallel.npz"
        s_suite, s_stats = build_suite_dataset(
            SCALE, cache_path=serial_npz,
            runner=FaultTolerantRunner(fail_fast=True),
        )
        p_suite, p_stats = build_suite_dataset(
            SCALE, cache_path=parallel_npz,
            runner=ParallelRunner(3, fail_fast=True),
        )
        assert (
            hashlib.sha256(serial_npz.read_bytes()).hexdigest()
            == hashlib.sha256(parallel_npz.read_bytes()).hexdigest()
        )
        serial_doc = json.loads((tmp_path / "serial.stats.json").read_text())
        parallel_doc = json.loads((tmp_path / "parallel.stats.json").read_text())
        assert serial_doc["npz_sha256"] == parallel_doc["npz_sha256"]
        assert serial_doc["stats"] == parallel_doc["stats"]
        assert suite_fingerprint(s_suite, 0.005, True) == suite_fingerprint(
            p_suite, 0.005, True
        )

    def test_experiment_table_matches_serial(self, mini_suite):
        models = [m for m in model_zoo("fast") if m.name in ("RUSBoost", "RF")]
        serial = run_experiment(
            mini_suite, models, tune=False,
            runner=FaultTolerantRunner(fail_fast=True),
        )
        parallel = run_experiment(
            mini_suite, models, tune=False,
            runner=ParallelRunner(3, fail_fast=True),
        )
        assert _table_without_timing_rows(serial) == _table_without_timing_rows(
            parallel
        )

    def test_suite_degrades_and_checkpoints_under_injected_fault(self, tmp_path):
        cache = tmp_path / "suite.npz"
        runner = ParallelRunner(2)  # not fail-fast: degrade, don't abort
        with inject_faults(FaultSpec(stage="flow/mult_1", times=1)) as plan:
            suite, stats = build_suite_dataset(
                SCALE, cache_path=cache, runner=runner
            )
        assert plan.triggered == [("flow/mult_1", "error")]
        assert "mult_1" not in suite.names
        assert runner.failures.units() == ["flow/mult_1"]
        # a degraded suite must not poison the shared cache pair...
        assert not cache.exists()
        # ...but the designs that did finish were checkpointed by the parent
        ckpt_dir = cache.with_suffix(".ckpt")
        saved = {p.name for p in ckpt_dir.glob("*.npz")}
        assert f"{suite.names[0]}.npz" in saved
        assert "mult_1.npz" not in saved

    def test_experiment_checkpoints_resume_after_parallel_run(self, mini_suite, tmp_path):
        models = [m for m in model_zoo("fast") if m.name == "RUSBoost"]
        first = run_experiment(
            mini_suite, models, tune=False,
            runner=ParallelRunner(2, fail_fast=True),
            checkpoint_dir=tmp_path / "ckpt",
        )
        # resumed serially from the parallel run's parent-written checkpoints
        resumed = run_experiment(
            mini_suite, models, tune=False,
            runner=FaultTolerantRunner(fail_fast=True),
            checkpoint_dir=tmp_path / "ckpt",
        )
        assert _table_without_timing_rows(first) == _table_without_timing_rows(
            resumed
        )
        # the resumed run reused CPU-time numbers verbatim from checkpoints
        assert resumed.run_stats[0].train_minutes == pytest.approx(
            first.run_stats[0].train_minutes
        )
