"""Smoke tests for the drcshap CLI."""

import pytest

from repro.cli import EXIT_DEGRADED, main
from repro.runtime.faults import FaultSpec, inject_faults


class TestCLI:
    def test_features_listing(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 387
        assert "edM4_4V" in out

    def test_features_verbose(self, capsys):
        assert main(["features", "-v"]) == 0
        out = capsys.readouterr().out
        assert "margin" in out

    def test_flow_small(self, capsys):
        assert main(["flow", "--grid", "8", "--utilization", "0.55", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "violations" in out
        assert "global_route" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_model_filter(self, tmp_path, capsys, monkeypatch):
        import repro.core.pipeline as pipeline

        monkeypatch.setattr(
            pipeline, "default_cache_path", lambda scale=1.0: tmp_path / "c.npz"
        )
        # invalid model subset errors out before any heavy work
        code = main(["table2", "--scale", "0.3", "--models", "Nope", "--no-cache"])
        assert code == 2


class TestCLIHeavyPaths:
    """End-to-end CLI runs on a tiny (scale 0.3) suite, cached in tmp."""

    @pytest.fixture()
    def tiny_cache(self, tmp_path, monkeypatch):
        import repro.cli as cli

        path = tmp_path / "tiny.npz"
        monkeypatch.setattr(cli, "default_cache_path", lambda scale=1.0: path)
        return path

    def test_suite_command(self, tiny_cache, capsys):
        assert main(["suite", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "Group 1" in out
        assert "des_perf_b" in out
        assert "Total samples" in out

    def test_report_command(self, tiny_cache, capsys):
        # build the cache via the suite command, then report a design
        assert main(["suite", "--scale", "0.3"]) == 0
        capsys.readouterr()
        assert main(["report", "des_perf_1", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "prediction report" in out
        assert "top 10 predicted hotspot" in out

    def test_suite_parallel_jobs_matches_serial_cache(self, tiny_cache, capsys):
        assert main(["suite", "--scale", "0.3"]) == 0
        serial_bytes = tiny_cache.read_bytes()
        tiny_cache.unlink()
        tiny_cache.with_suffix(".stats.json").unlink()
        assert main(["suite", "--scale", "0.3", "-j", "2", "--no-resume"]) == 0
        assert tiny_cache.read_bytes() == serial_bytes
        assert "Total samples" in capsys.readouterr().out

    def test_no_cache_resume_uses_checkpoints(self, tiny_cache, capsys):
        # regression: the checkpoint dir used to derive from --cache, so
        # --no-cache silently disabled --resume
        assert main(["suite", "--scale", "0.3"]) == 0
        capsys.readouterr()
        tiny_cache.unlink()
        tiny_cache.with_suffix(".stats.json").unlink()
        assert main(["suite", "--scale", "0.3", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.count("resumed from checkpoint") == 14
        assert "Total samples" in out

    def test_explain_runs_under_resilience_layer(self, tiny_cache, capsys):
        # regression: explain bypassed the runner, so an injected unit fault
        # became an unhandled crash instead of a degraded exit
        assert main(["suite", "--scale", "0.3"]) == 0
        capsys.readouterr()
        with inject_faults(FaultSpec(stage="explain/des_perf_1", times=1)):
            code = main(["explain", "des_perf_1", "--scale", "0.3"])
        assert code == EXIT_DEGRADED
        assert "degraded run" in capsys.readouterr().err
        # with a retry budget the same fault is absorbed
        with inject_faults(FaultSpec(stage="explain/des_perf_1", times=1)):
            code = main(
                ["explain", "des_perf_1", "--scale", "0.3",
                 "--num", "1", "--max-retries", "1", "--retry-backoff", "0"]
            )
        assert code == 0

    def test_report_degrades_on_training_fault(self, tiny_cache, capsys):
        assert main(["suite", "--scale", "0.3"]) == 0
        capsys.readouterr()
        with inject_faults(FaultSpec(stage="report/mult_b", times=1)):
            code = main(["report", "mult_b", "--scale", "0.3"])
        assert code == EXIT_DEGRADED
        assert "degraded run" in capsys.readouterr().err
