"""Smoke tests for the drcshap CLI."""

import pytest

from repro.cli import main


class TestCLI:
    def test_features_listing(self, capsys):
        assert main(["features"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 387
        assert "edM4_4V" in out

    def test_features_verbose(self, capsys):
        assert main(["features", "-v"]) == 0
        out = capsys.readouterr().out
        assert "margin" in out

    def test_flow_small(self, capsys):
        assert main(["flow", "--grid", "8", "--utilization", "0.55", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "violations" in out
        assert "global_route" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_model_filter(self, tmp_path, capsys, monkeypatch):
        import repro.core.pipeline as pipeline

        monkeypatch.setattr(
            pipeline, "default_cache_path", lambda scale=1.0: tmp_path / "c.npz"
        )
        # invalid model subset errors out before any heavy work
        code = main(["table2", "--scale", "0.3", "--models", "Nope", "--no-cache"])
        assert code == 2


class TestCLIHeavyPaths:
    """End-to-end CLI runs on a tiny (scale 0.3) suite, cached in tmp."""

    @pytest.fixture()
    def tiny_cache(self, tmp_path, monkeypatch):
        import repro.cli as cli

        path = tmp_path / "tiny.npz"
        monkeypatch.setattr(cli, "default_cache_path", lambda scale=1.0: path)
        return path

    def test_suite_command(self, tiny_cache, capsys):
        assert main(["suite", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "Group 1" in out
        assert "des_perf_b" in out
        assert "Total samples" in out

    def test_report_command(self, tiny_cache, capsys):
        # build the cache via the suite command, then report a design
        assert main(["suite", "--scale", "0.3"]) == 0
        capsys.readouterr()
        assert main(["report", "des_perf_1", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "prediction report" in out
        assert "top 10 predicted hotspot" in out
