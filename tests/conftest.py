"""Shared fixtures: a small flowed design and a tiny grouped suite.

The expensive fixtures are session-scoped: one small design goes through
the full flow once, and a three-design mini-suite (with two groups) backs
the experiment/explanation tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.core.pipeline import FlowResult, run_flow
from repro.features.dataset import DesignDataset, SuiteDataset


SMALL_RECIPE = DesignRecipe(
    name="testchip",
    grid_nx=12,
    grid_ny=12,
    utilization=0.66,
    num_macros=1,
    macro_area_frac=0.06,
    dense_net_boost=2.0,
    dense_cluster_frac=0.3,
    ndr_frac=0.05,
    seed=7,
)


@pytest.fixture(scope="session")
def small_flow() -> FlowResult:
    """One small design through the complete flow."""
    return run_flow(SMALL_RECIPE)


@pytest.fixture(scope="session")
def small_design():
    """The small design, freshly generated and unplaced."""
    return generate_design(SMALL_RECIPE)


def _mini_recipe(name: str, seed: int, utilization: float) -> DesignRecipe:
    return DesignRecipe(
        name=name,
        grid_nx=10,
        grid_ny=10,
        utilization=utilization,
        dense_net_boost=2.0,
        dense_cluster_frac=0.3,
        seed=seed,
    )


@pytest.fixture(scope="session")
def mini_suite() -> SuiteDataset:
    """Three designs in two groups, with real flow-produced labels.

    Group assignment is overridden so leave-one-group-out is exercised with
    only two folds; labels are guaranteed non-trivial by the recipes.
    """
    specs = [
        ("mini_a", 11, 0.68, 0),
        ("mini_b", 12, 0.66, 0),
        ("mini_c", 13, 0.68, 1),
        ("mini_d", 15, 0.67, 1),
    ]
    designs = []
    for name, seed, util, group in specs:
        flow = run_flow(_mini_recipe(name, seed, util))
        d = flow.dataset
        designs.append(
            DesignDataset(
                name=d.name,
                group=group,
                X=d.X,
                y=d.y,
                grid_nx=d.grid_nx,
                grid_ny=d.grid_ny,
            )
        )
    suite = SuiteDataset(designs)
    # the experiment tests need positives in both groups
    assert sum(d.num_hotspots for d in designs[:2]) > 0
    assert sum(d.num_hotspots for d in designs[2:]) > 0
    return suite


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_separable(
    n: int = 600, n_features: int = 12, pos_rate: float = 0.25, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """A noisy-but-learnable binary dataset used across estimator tests."""
    g = np.random.default_rng(seed)
    X = g.normal(size=(n, n_features))
    logit = 1.8 * X[:, 0] - 1.2 * X[:, 1] + X[:, 2] * X[:, 3]
    noise = g.normal(scale=0.6, size=n)
    thr = np.quantile(logit + noise, 1.0 - pos_rate)
    y = (logit + noise > thr).astype(np.int8)
    return X, y
