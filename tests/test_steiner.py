"""Tests for net decomposition (MST over pin g-cells)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.route.steiner import mst_segments


class TestMSTSegments:
    def test_trivial_cases(self):
        assert mst_segments([]) == []
        assert mst_segments([(1, 1)]) == []

    def test_two_cells(self):
        segs = mst_segments([(0, 0), (3, 4)])
        assert segs == [((0, 0), (3, 4))]

    def test_count_is_k_minus_one(self):
        cells = [(0, 0), (5, 0), (0, 5), (5, 5), (2, 2)]
        assert len(mst_segments(cells)) == 4

    def test_spanning(self):
        cells = [(0, 0), (5, 0), (0, 5), (5, 5), (2, 2)]
        g = nx.Graph(mst_segments(cells))
        assert set(g.nodes) == set(cells)
        assert nx.is_connected(g)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    min_size=2, max_size=9, unique=True))
    @settings(max_examples=60)
    def test_matches_networkx_mst_weight(self, cells):
        """Total MST weight equals networkx's MST on the complete graph."""
        segs = mst_segments(cells)
        ours = sum(abs(a[0] - b[0]) + abs(a[1] - b[1]) for a, b in segs)

        g = nx.Graph()
        for i, a in enumerate(cells):
            for b in cells[i + 1:]:
                g.add_edge(a, b, weight=abs(a[0] - b[0]) + abs(a[1] - b[1]))
        theirs = sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True))
        assert ours == theirs

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    min_size=2, max_size=9, unique=True))
    @settings(max_examples=30)
    def test_always_spanning_tree(self, cells):
        segs = mst_segments(cells)
        assert len(segs) == len(cells) - 1
        g = nx.Graph(segs)
        assert nx.is_connected(g)
        assert set(g.nodes) == set(cells)


class TestNetQueries:
    def test_net_gcells_and_local(self, small_flow):
        from repro.route.steiner import is_local, net_gcells

        grid = small_flow.grid
        design = small_flow.design
        locals_found = 0
        for net in design.signal_nets():
            cells = net_gcells(net, grid)
            assert len(cells) >= 1
            assert len(set(cells)) == len(cells)
            if is_local(net, grid):
                locals_found += 1
                assert len(cells) == 1
        assert locals_found > 0  # the generator creates local nets
