"""Tests for the analysis toolkit (curves, thresholds, SHAP summary, reports)."""

import numpy as np
import pytest

from repro.analysis import (
    best_f1_threshold,
    design_report,
    export_pr_points,
    export_roc_points,
    render_pr_curve,
    render_roc_curve,
    summarize_shap,
    sweep_thresholds,
    threshold_for_recall,
)
from repro.features.names import NUM_FEATURES, feature_index


@pytest.fixture()
def scored():
    rng = np.random.default_rng(0)
    y = (rng.random(800) < 0.08).astype(np.int8)
    s = y * 0.8 + rng.normal(scale=0.35, size=800)
    return y, s


class TestCurves:
    def test_pr_render(self, scored):
        y, s = scored
        text = render_pr_curve(y, s)
        assert "A_prc" in text
        assert "*" in text
        assert "recall" in text

    def test_roc_render(self, scored):
        y, s = scored
        text = render_roc_curve(y, s)
        assert "A_roc" in text
        assert "FPR" in text

    def test_pr_export_csv(self, scored):
        y, s = scored
        csv = export_pr_points(y, s)
        lines = csv.splitlines()
        assert lines[0] == "threshold,recall,precision"
        assert len(lines) > 10
        for line in lines[1:5]:
            parts = line.split(",")
            assert len(parts) == 3
            float(parts[0])

    def test_roc_export_csv(self, scored):
        y, s = scored
        lines = export_roc_points(y, s).splitlines()
        assert lines[0] == "threshold,fpr,tpr"


class TestThresholds:
    def test_sweep_monotone_tpr(self, scored):
        y, s = scored
        sweep = sweep_thresholds(y, s)
        tprs = [p.tpr for p in sweep.points]
        assert tprs == sorted(tprs), "looser FPR budgets admit more recall"
        assert all(
            p.fpr <= b + 1e-12 for p, b in zip(sweep.points, sweep.budgets)
        )

    def test_sweep_table(self, scored):
        y, s = scored
        text = sweep_thresholds(y, s).format_table()
        assert "FPR budget" in text
        assert "0.0050" in text  # the paper's budget

    def test_threshold_for_recall(self, scored):
        y, s = scored
        thr = threshold_for_recall(y, s, 0.9)
        recall = ((s >= thr) & (y == 1)).sum() / y.sum()
        assert recall >= 0.9

    def test_threshold_for_impossible_recall(self, scored):
        y, s = scored
        with pytest.raises(ValueError):
            threshold_for_recall(y, s, 1.5)

    def test_best_f1(self, scored):
        y, s = scored
        thr, f1 = best_f1_threshold(y, s)
        assert 0 < f1 <= 1
        # manual F1 at that threshold matches
        pred = s >= thr
        tp = int((pred & (y == 1)).sum())
        prec = tp / max(int(pred.sum()), 1)
        rec = tp / int(y.sum())
        manual = 2 * prec * rec / (prec + rec)
        assert manual == pytest.approx(f1, abs=1e-9)


class TestShapSummary:
    def test_summary_ranks_by_mean_abs(self):
        rng = np.random.default_rng(1)
        shap = rng.normal(scale=0.001, size=(50, NUM_FEATURES))
        idx = feature_index()
        shap[:, idx["edM5_7H"]] = 0.5  # dominant feature
        summary = summarize_shap(shap)
        assert summary.top_features(1)[0][0] == "edM5_7H"

    def test_groups_cover_all_mass(self):
        rng = np.random.default_rng(2)
        shap = np.abs(rng.normal(size=(20, NUM_FEATURES)))
        summary = summarize_shap(shap)
        groups = summary.by_group()
        assert set(groups) >= {"placement", "edge_M3", "via_V1"}
        assert sum(groups.values()) == pytest.approx(summary.mean_abs.sum())

    def test_report_text(self):
        shap = np.zeros((5, NUM_FEATURES))
        text = summarize_shap(shap).format_report()
        assert "feature family" in text

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError):
            summarize_shap(np.zeros((3, 10)))


class TestDesignReport:
    def test_full_report(self, small_flow):
        dataset = small_flow.dataset
        rng = np.random.default_rng(3)
        scores = dataset.y * 0.7 + rng.random(dataset.num_samples) * 0.2
        text = design_report(dataset, scores)
        assert dataset.name in text
        assert "top 10 predicted hotspot" in text
        if 0 < dataset.num_hotspots < dataset.num_samples:
            assert "A_prc" in text
            assert "P-R curve" in text

    def test_report_shape_mismatch(self, small_flow):
        with pytest.raises(ValueError):
            design_report(small_flow.dataset, np.zeros(3))
