"""Tests for global placement and legalisation."""

import numpy as np
import pytest

from repro.bench.generator import DesignRecipe, generate_design
from repro.layout.geometry import Point, Rect
from repro.layout.netlist import Design
from repro.layout.technology import make_ispd2015_like_technology
from repro.place.legalizer import LegalizationError, legalize
from repro.place.placer import ForceDirectedPlacer, PlacerConfig, place_design


def _check_legal(design):
    """No overlaps, all inside the die, none on blockages, on rows."""
    tech = design.technology
    boxes = [c.bbox for c in design.cells]
    for box in boxes:
        assert design.die.contains_rect(box)
        row = (box.ylo - design.die.ylo) / tech.row_height
        assert abs(row - round(row)) < 1e-6, "cell not on a row"
    for rect in design.placement_blockage_rects():
        for box in boxes:
            assert box.overlap_area(rect) == pytest.approx(0.0, abs=1e-6)
    # O(n log n) overlap sweep per row
    by_row = {}
    for box in boxes:
        by_row.setdefault(round(box.ylo, 3), []).append(box)
    for row_boxes in by_row.values():
        row_boxes.sort(key=lambda b: b.xlo)
        for a, b in zip(row_boxes, row_boxes[1:]):
            assert a.xhi <= b.xlo + 1e-6, "overlap within a row"


class TestPlaceDesign:
    def test_full_place_is_legal(self):
        recipe = DesignRecipe(
            name="pl", grid_nx=12, grid_ny=12, utilization=0.6,
            num_macros=2, macro_area_frac=0.1, seed=9,
        )
        d = generate_design(recipe)
        place_design(d)
        assert d.is_placed
        _check_legal(d)

    def test_high_utilization_still_legal(self):
        recipe = DesignRecipe(name="dense", grid_nx=10, grid_ny=10, utilization=0.8, seed=4)
        d = generate_design(recipe)
        place_design(d)
        _check_legal(d)

    def test_deterministic(self):
        recipe = DesignRecipe(name="det", grid_nx=10, grid_ny=10, seed=3)
        d1 = generate_design(recipe)
        d2 = generate_design(recipe)
        place_design(d1)
        place_design(d2)
        p1 = [c.position.as_tuple() for c in d1.cells]
        p2 = [c.position.as_tuple() for c in d2.cells]
        assert p1 == p2

    def test_placement_improves_wirelength(self):
        recipe = DesignRecipe(name="wl", grid_nx=12, grid_ny=12, seed=5)
        d_random = generate_design(recipe)
        placer = ForceDirectedPlacer(d_random, PlacerConfig(iterations=0))
        placer.place()
        hpwl_random = d_random.total_hpwl()

        d_placed = generate_design(recipe)
        place_design(d_placed)
        hpwl_placed = d_placed.total_hpwl()
        assert hpwl_placed < 0.8 * hpwl_random

    def test_empty_design_noop(self):
        tech = make_ispd2015_like_technology()
        d = Design(name="empty", technology=tech, die=Rect(0, 0, 2400, 2400))
        place_design(d)  # no cells: should not raise


class TestLegalizer:
    def _one_cell_design(self):
        tech = make_ispd2015_like_technology()
        d = Design(name="lg", technology=tech, die=Rect(0, 0, 2400, 2400))
        return d, tech

    def test_snaps_to_row(self):
        d, tech = self._one_cell_design()
        c = d.add_cell("c", 40, tech.row_height)
        c.position = Point(101.3, 77.7)
        legalize(d)
        assert c.position.y % tech.row_height == pytest.approx(0.0)

    def test_requires_global_positions(self):
        d, tech = self._one_cell_design()
        d.add_cell("c", 40, tech.row_height)
        with pytest.raises(ValueError):
            legalize(d)

    def test_avoids_macro(self):
        d, tech = self._one_cell_design()
        d.add_macro("m", Rect(0, 0, 1200, 1200))
        c = d.add_cell("c", 40, tech.row_height)
        c.position = Point(600, 600)  # dead centre of the macro
        legalize(d)
        assert c.bbox.overlap_area(Rect(0, 0, 1200, 1200)) == pytest.approx(0.0)

    def test_impossible_raises(self):
        d, tech = self._one_cell_design()
        c = d.add_cell("c", 5000, tech.row_height)  # wider than the die
        c.position = Point(0, 0)
        with pytest.raises(LegalizationError):
            legalize(d)

    def test_displacement_reported(self):
        d, tech = self._one_cell_design()
        c = d.add_cell("c", 40, tech.row_height)
        c.position = Point(100, tech.row_height * 2 + 13)
        disp = legalize(d)
        assert disp >= 0.0
        assert disp <= 2 * tech.row_height


class TestSpectralInit:
    def test_clusters_land_near_each_other(self):
        """Cells of the same generated cluster end up spatially close."""
        recipe = DesignRecipe(
            name="spec", grid_nx=14, grid_ny=14, utilization=0.55,
            cluster_locality=0.95, seed=21,
        )
        d = generate_design(recipe)
        place_design(d)
        # 2-pin net length must be far below the random-placement baseline
        lengths = [n.hpwl() for n in d.signal_nets() if n.degree == 2]
        die_span = d.die.width + d.die.height
        assert np.mean(lengths) < 0.2 * die_span
