"""Tests for the what-if intervention tool."""

import numpy as np
import pytest

from repro.analysis.whatif import apply_intervention, relief_suggestions, what_if
from repro.features.names import NUM_FEATURES, feature_index
from repro.ml.forest import RandomForestClassifier
from repro.ml.shap.tree_explainer import TreeShapExplainer


class _ThresholdModel:
    """Predicts hot iff the edM5_7H margin is negative (for crisp tests)."""

    def __init__(self):
        self.j = feature_index()["edM5_7H"]

    def predict_proba(self, X):
        p = (np.atleast_2d(X)[:, self.j] < 0).astype(float)
        return np.column_stack([1 - p, p])


class TestApplyIntervention:
    def test_plain_feature(self):
        idx = feature_index()
        x = np.zeros(NUM_FEATURES)
        out, changed = apply_intervention(x, {"pins_o": 7.0})
        assert out[idx["pins_o"]] == 7.0
        assert changed == ("pins_o",)
        assert x[idx["pins_o"]] == 0.0  # original untouched

    def test_load_updates_margin(self):
        idx = feature_index()
        x = np.zeros(NUM_FEATURES)
        x[idx["ecM5_7H"]] = 8.0
        x[idx["elM5_7H"]] = 2.0
        x[idx["edM5_7H"]] = 6.0
        out, changed = apply_intervention(x, {"elM5_7H": 10.0})
        assert out[idx["edM5_7H"]] == -2.0
        assert "edM5_7H" in changed

    def test_margin_updates_load(self):
        idx = feature_index()
        x = np.zeros(NUM_FEATURES)
        x[idx["vcV2_o"]] = 20.0
        x[idx["vlV2_o"]] = 18.0
        x[idx["vdV2_o"]] = 2.0
        out, changed = apply_intervention(x, {"vdV2_o": 10.0})
        assert out[idx["vlV2_o"]] == 10.0
        assert "vlV2_o" in changed

    def test_unknown_feature_raises(self):
        with pytest.raises(KeyError):
            apply_intervention(np.zeros(NUM_FEATURES), {"bogus": 1.0})


class TestWhatIf:
    def test_relief_flips_threshold_model(self):
        idx = feature_index()
        x = np.zeros(NUM_FEATURES)
        x[idx["ecM5_7H"]] = 8.0
        x[idx["elM5_7H"]] = 12.0
        x[idx["edM5_7H"]] = -4.0  # overflowed: model says hotspot
        model = _ThresholdModel()
        result = what_if(model, x, {"elM5_7H": 4.0})
        assert result.baseline_probability == 1.0
        assert result.new_probability == 0.0
        assert result.delta == -1.0
        assert "P 1.0000 -> 0.0000" in result.format_row()

    def test_relief_suggestions_on_real_forest(self, small_flow):
        X, y = small_flow.X, small_flow.y
        if y.sum() == 0:
            pytest.skip("no hotspots in the flow design")
        rf = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        probs = rf.predict_proba(X)[:, 1]
        row = int(np.argmax(probs))
        explainer = TreeShapExplainer(rf.trees, X.shape[1])
        shap_vals = explainer.shap_values_single(X[row])
        suggestions = relief_suggestions(rf, X[row], shap_vals, top_k=3)
        assert suggestions
        # ranked by achieved drop: first is the most helpful
        deltas = [s.delta for s in suggestions]
        assert deltas == sorted(deltas)
        # relieving the top drivers should not make things look worse
        assert deltas[0] <= 0.02
