"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.runtime import (
    CacheCorruptionError,
    CheckpointStore,
    FaultInjected,
    FaultSpec,
    FaultTolerantRunner,
    RetryPolicy,
    inject_faults,
)
from repro.runtime import faults


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(stage="x", kind="explode")

    def test_fires_bounded_times(self):
        spec = FaultSpec(stage="flow/a", times=2)
        hits = [spec.should_fire("flow/a") for _ in range(4)]
        assert hits == [True, True, False, False]

    def test_after_skips_first_matches(self):
        spec = FaultSpec(stage="flow/a", times=1, after=2)
        hits = [spec.should_fire("flow/a") for _ in range(4)]
        assert hits == [False, False, True, False]

    def test_glob_matching(self):
        spec = FaultSpec(stage="flow/*", times=10)
        assert spec.should_fire("flow/mult_1")
        assert spec.should_fire("flow/fft_b")
        assert not spec.should_fire("experiment/RF__g0")


class TestInjection:
    def test_error_fault_raises_inside_block(self):
        with inject_faults(FaultSpec(stage="s/u", times=1)) as plan:
            with pytest.raises(FaultInjected, match="injected fault @ s/u"):
                faults.fire("s/u")
            faults.fire("s/u")  # disarmed after `times` firings
        assert plan.triggered == [("s/u", "error")]

    def test_custom_exception(self):
        with inject_faults(
            FaultSpec(stage="s/u", exception=OSError, message="disk gone")
        ):
            with pytest.raises(OSError, match="disk gone"):
                faults.fire("s/u")

    def test_no_active_plan_is_noop(self):
        faults.fire("anything")  # must not raise outside inject_faults

    def test_plans_do_not_nest(self):
        with inject_faults(FaultSpec(stage="a")):
            with pytest.raises(RuntimeError, match="nest"):
                with inject_faults(FaultSpec(stage="b")):
                    pass

    def test_delay_fault_sleeps(self):
        slept = []
        with inject_faults(
            FaultSpec(stage="s/u", kind="delay", delay_s=0.3), sleep=slept.append
        ):
            faults.fire("s/u")
        assert slept == [0.3]

    def test_corrupt_fault_trips_checkpoint_checksum(self, tmp_path):
        store = CheckpointStore(tmp_path / "s")
        with inject_faults(FaultSpec(stage="checkpoint/k.bin", kind="corrupt")) as plan:
            store.save_bytes("k.bin", b"payload-bytes-here")
        assert plan.triggered == [("checkpoint/k.bin", "corrupt")]
        assert store.has("k.bin")  # looks complete...
        with pytest.raises(CacheCorruptionError, match="checksum"):
            store.load_bytes("k.bin")  # ...but is detected on load

    def test_retry_then_succeed_via_injection(self):
        calls = {"n": 0}

        def unit():
            calls["n"] += 1
            return "ok"

        with inject_faults(FaultSpec(stage="flow/u", times=2)) as plan:
            runner = FaultTolerantRunner(RetryPolicy(max_retries=2), sleep=lambda s: None)
            out = runner.run_unit("flow", "u", unit)
        assert out.ok and out.value == "ok"
        assert calls["n"] == 1  # first two attempts died before reaching fn
        assert plan.triggered == [("flow/u", "error")] * 2
        assert not runner.failures

    def test_injected_delay_trips_runner_timeout(self):
        with inject_faults(FaultSpec(stage="flow/slow", kind="delay", delay_s=1.0)):
            runner = FaultTolerantRunner(RetryPolicy(timeout_s=0.05))
            out = runner.run_unit("flow", "slow", lambda: "never")
        assert not out.ok
        assert out.failure.error_type == "StageTimeout"
